"""Ablation D — separate (the paper's protocol) vs joint multi-output
minimization.

The paper minimizes each output separately; joint minimization with
shared pseudoproducts can only lower the total (hardware) literal cost.
This ablation measures both the cost delta and the runtime overhead of
the tagged covering on the quick-mode adders.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import get_benchmark
from repro.minimize.exact import minimize_spp
from repro.minimize.multi import minimize_spp_multi
from repro.verify import assert_equivalent

NAMES = ["adr2", "adr3", "csa2", "mlp2"]


@pytest.mark.parametrize("name", NAMES)
def test_joint_minimization(benchmark, name):
    func = get_benchmark(name)
    result = benchmark.pedantic(minimize_spp_multi, args=(func,), rounds=1, iterations=1)
    for form, fo in zip(result.forms, func.outputs):
        assert_equivalent(form, fo)


@pytest.mark.parametrize("name", NAMES)
def test_separate_minimization(benchmark, name):
    func = get_benchmark(name)

    def run():
        return [
            minimize_spp(fo).num_literals for fo in func.outputs if fo.on_set
        ]

    literals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert literals


@pytest.mark.parametrize("name", NAMES)
def test_joint_never_costs_more_shared_literals(name):
    func = get_benchmark(name)
    joint = minimize_spp_multi(func)
    separate = sum(
        minimize_spp(fo).num_literals for fo in func.outputs if fo.on_set
    )
    # Joint covering has strictly more freedom; with matching covering
    # heuristics it should not lose more than solver noise (10%).
    assert joint.shared_literals <= separate * 1.1
