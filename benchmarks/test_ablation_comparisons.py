"""Ablation B — the Section 3.3 comparison-count analysis, instrumented.

The paper argues Algorithm 2 performs Σ_j |X_j|(|X_j|-1)/2 comparisons
per step against the original |X|(|X|-1)/2, and "in practice does not
perform any comparison, because every couple of pseudoproducts
considered will be unified".  Both halves are checked: the grouped
count is a small fraction of the naive count, and every grouped
comparison results in a union (no failed structure checks).
"""

from __future__ import annotations

import pytest

from repro.bench.suite import get_benchmark
from repro.minimize.eppp import generate_eppp
from repro.minimize.naive import generate_eppp_naive

CASES = [("adr3", 2), ("adr3", 3), ("dist3", 2), ("life6", 0), ("csa2", 1)]


@pytest.mark.parametrize("name,output", CASES)
def test_comparison_counts(benchmark, name, output):
    fo = get_benchmark(name)[output]
    grouped = benchmark.pedantic(generate_eppp, args=(fo,), rounds=1, iterations=1)
    naive = generate_eppp_naive(fo)
    # Same EPPP set, far fewer comparisons.
    assert set(grouped.eppps) == set(naive.eppps)
    assert grouped.total_comparisons < naive.total_comparisons / 10
    # Every grouped comparison is a successful union ("the new algorithm,
    # in practice, does not perform any comparison"): each considered
    # pair yields a pseudoproduct, either new or a duplicate insertion.
    for step in grouped.steps:
        assert step.comparisons == step.generated + step.duplicates
