"""Ablation E — three-level families compared: SP vs AND-OR-EXOR vs SPP.

The paper's conclusion plans to "compare SPP forms with other three
level forms"; this ablation runs that comparison with the library's
linear-correction EX-SOP baseline.  Expected ordering on XOR-rich
arithmetic: SPP ≤ AOX ≤ SP, with AOX capturing part of the gap (it can
peel one parity off, SPP can use EXOR factors inside every product).
"""

from __future__ import annotations

import pytest

from repro.bench.suite import get_benchmark
from repro.minimize.aox import minimize_aox
from repro.minimize.exact import minimize_spp
from repro.minimize.sp import minimize_sp
from repro.verify import verify_form

NAMES = ["adr3", "dist3", "csa2", "life6"]


def _totals(name):
    func = get_benchmark(name)
    sp = aox = spp = 0
    for fo in func.outputs:
        if not fo.on_set:
            continue
        sp += minimize_sp(fo).num_literals
        aox_result = minimize_aox(fo)
        assert verify_form(aox_result.form, fo).ok
        aox += aox_result.num_literals
        spp += minimize_spp(fo).num_literals
    return sp, aox, spp


@pytest.mark.parametrize("name", NAMES)
def test_three_level_comparison(benchmark, name):
    sp, aox, spp = benchmark.pedantic(_totals, args=(name,), rounds=1, iterations=1)
    assert spp <= aox <= sp


@pytest.mark.parametrize("name", ["adr3"])
def test_aox_alone(benchmark, name):
    func = get_benchmark(name)

    def run():
        return [
            minimize_aox(fo).num_literals for fo in func.outputs if fo.on_set
        ]

    literals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert literals
