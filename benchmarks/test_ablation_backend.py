"""Ablation A — grouping backend: partition trie vs hash index.

Both backends realize the same same-structure partition (Theorem 1), so
Algorithm 2 produces identical EPPP sets; this ablation measures the
constant-factor cost of the pointer-based trie against the flat hash
map in Python.  (In the paper's C setting the trie also buys prefix
compression; in Python the hash map dominates, which is why it is the
default backend — see DESIGN.md §6.)
"""

from __future__ import annotations

import pytest

from repro.bench.suite import get_benchmark
from repro.minimize.eppp import generate_eppp

CASES = [("adr3", 3), ("life6", 0)]


@pytest.mark.parametrize("name,output", CASES)
@pytest.mark.parametrize("backend", ["index", "trie"])
def test_backend_generation_speed(benchmark, name, output, backend):
    fo = get_benchmark(name)[output]
    result = benchmark.pedantic(
        generate_eppp, args=(fo,), kwargs={"backend": backend}, rounds=1, iterations=1
    )
    assert result.eppps


@pytest.mark.parametrize("name,output", CASES)
def test_backends_identical_results(name, output):
    fo = get_benchmark(name)[output]
    index = generate_eppp(fo, backend="index")
    trie = generate_eppp(fo, backend="trie")
    assert set(index.eppps) == set(trie.eppps)
    assert index.total_comparisons == trie.total_comparisons
