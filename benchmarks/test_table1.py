"""Table 1 — SP vs SPP minimization (per-function totals).

Paper claim: the minimal SPP form has, on average, about half the
literals of the minimal SP form; for arithmetic functions like adr4 the
gap is far larger (340 → 72).  Each benchmark here runs the full
Algorithm 2 pipeline (EPPP generation + covering) on one quick-mode
function and asserts the SP-vs-SPP shape; the rendered table is printed
by ``run_tables.py table1``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_table1_row


@pytest.mark.parametrize(
    "name", ["adr2", "adr3", "mlp2", "dist3", "csa2", "life6", "bcd7seg"]
)
def test_table1_quick_function(benchmark, bench_functions, name):
    measurement = benchmark.pedantic(
        run_table1_row, args=(name,), rounds=1, iterations=1
    )
    assert measurement.spp_literals <= measurement.sp_literals
    assert measurement.spp_products <= measurement.sp_products
    assert not measurement.truncated


def test_table1_adr4_matches_paper_exactly(benchmark, bench_functions):
    """adr4 is an exact construction: the SP side must reproduce the
    paper's numbers exactly, and the SPP side its published literal and
    product counts (340/75 → 72/14)."""
    measurement = benchmark.pedantic(
        run_table1_row, args=("adr4",), rounds=1, iterations=1
    )
    assert measurement.sp_literals == 340
    assert measurement.sp_products == 75
    assert measurement.sp_primes == 75
    assert measurement.spp_literals == 72
    assert measurement.spp_products == 14
    # The paper's halving claim, strongly exceeded on adders: 4.72x.
    assert measurement.sp_literals / measurement.spp_literals > 4


def test_table1_life_matches_paper(benchmark, bench_functions):
    """life: SP literals exactly 672 (paper), EPPP count exactly 2100
    (paper); our covering may find a slightly different upper bound for
    the SPP literals (the paper's 144 is also a heuristic bound)."""
    measurement = benchmark.pedantic(
        run_table1_row, args=("life",), rounds=1, iterations=1
    )
    assert measurement.sp_literals == 672
    assert measurement.spp_eppps == 2100
    assert measurement.spp_literals <= 144
    assert measurement.sp_literals / measurement.spp_literals > 4
