"""Table 2 — EPPP construction: naive [5] vs Algorithm 2 (partition trie).

Paper claim: grouping by structure slashes both the comparison count
(Σ_j |X_j|²/2 vs |X|²/2 per step) and the wall-clock time by orders of
magnitude (783 s → 4 s on cs8(1), timeouts → minutes elsewhere).  We
assert the same ordering on quick-mode single outputs and benchmark the
two generators separately so pytest-benchmark reports the gap.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import get_benchmark
from repro.minimize.eppp import generate_eppp
from repro.minimize.naive import generate_eppp_naive

CASES = [("adr3", 2), ("dist3", 1), ("csa2", 2), ("life6", 0)]


@pytest.mark.parametrize("name,output", CASES)
def test_algorithm2_generation(benchmark, name, output):
    fo = get_benchmark(name)[output]
    result = benchmark.pedantic(generate_eppp, args=(fo,), rounds=1, iterations=1)
    assert result.eppps


@pytest.mark.parametrize("name,output", CASES)
def test_naive_generation(benchmark, name, output):
    fo = get_benchmark(name)[output]
    result = benchmark.pedantic(
        generate_eppp_naive, args=(fo,), rounds=1, iterations=1
    )
    assert result.eppps


@pytest.mark.parametrize("name,output", CASES)
def test_grouped_comparisons_much_smaller(name, output):
    """The Section 3.3 analysis: Σ_j |X_j|²/2 ≪ |X|²/2 summed over steps."""
    fo = get_benchmark(name)[output]
    grouped = generate_eppp(fo)
    naive = generate_eppp_naive(fo)
    assert set(grouped.eppps) == set(naive.eppps)
    assert grouped.total_comparisons * 10 < naive.total_comparisons
