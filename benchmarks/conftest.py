"""Shared configuration for the benchmark suite.

``pytest benchmarks/ --benchmark-only`` runs the *quick* instances: the
same pipeline as the paper's experiments on inputs small enough for
pure Python (see DESIGN.md §3 "Scaling note").  The full paper-size
tables are produced by ``benchmarks/run_tables.py --full``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def bench_functions():
    """Build the quick-mode benchmark functions once per session."""
    from repro.bench.suite import get_benchmark

    names = ["adr2", "adr3", "mlp2", "dist3", "csa2", "life6", "adr4", "life"]
    return {name: get_benchmark(name) for name in names}
