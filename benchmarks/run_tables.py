#!/usr/bin/env python3
"""Regenerate the paper's tables and figures.

Quick mode (default) runs the scaled + cheap paper instances; ``--full``
runs every row of the published tables (hours of pure-Python CPU for
the heaviest functions; rows that blow the ``--budget`` pseudoproduct
cap are flagged, mirroring the paper's two-day-timeout stars).

Examples::

    python benchmarks/run_tables.py table1
    python benchmarks/run_tables.py table1 --full --budget 2000000
    python benchmarks/run_tables.py table2 --naive-timeout 120
    python benchmarks/run_tables.py table3
    python benchmarks/run_tables.py fig34 --function dist3 --function life6
    python benchmarks/run_tables.py all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import harness
from repro.bench.paper_data import TABLE1, TABLE2, TABLE3

FULL_TABLE2_CASES = [(row.function, row.output) for row in TABLE2]
FULL_FIG34 = ["dist", "f51m"]


def _log(message: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {message}", file=sys.stderr)


def run_table1(args: argparse.Namespace) -> None:
    if args.names:
        names = args.names
    elif args.full:
        names = [r.function for r in TABLE1]
    else:
        names = harness.QUICK_TABLE1
    rows = []
    for name in names:
        _log(f"table1: {name}")
        rows.append(
            harness.run_table1_row(name, max_pseudoproducts=args.budget)
        )
    print(harness.render_table1(rows))


def run_table2(args: argparse.Namespace) -> None:
    cases = FULL_TABLE2_CASES if args.full else harness.QUICK_TABLE2
    rows = []
    for name, output in cases:
        _log(f"table2: {name}({output})")
        rows.append(
            harness.run_table2_row(
                name,
                output,
                naive_timeout=args.naive_timeout,
                max_pseudoproducts=args.budget,
            )
        )
    print(harness.render_table2(rows))


def run_table3(args: argparse.Namespace) -> None:
    if args.names:
        names = args.names
    elif args.full:
        names = [r.function for r in TABLE3]
    else:
        names = harness.QUICK_TABLE3
    rows = []
    for name in names:
        _log(f"table3: {name}")
        rows.append(
            harness.run_table3_row(
                name,
                exact_budget=args.budget,
                heuristic_budget=args.budget,
            )
        )
    print(harness.render_table3(rows))


def run_fig34(args: argparse.Namespace) -> None:
    names = args.function or (FULL_FIG34 if args.full else harness.QUICK_FIG34)
    points = []
    for name in names:
        _log(f"fig34: sweeping {name}")
        points.extend(
            harness.run_spp_k_sweep(
                name, ks=args.k or None, heuristic_budget=args.budget
            )
        )
    print(harness.render_fig34(points))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "target", choices=["table1", "table2", "table3", "fig34", "all"]
    )
    parser.add_argument("--full", action="store_true", help="paper-size instances")
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="pseudoproduct generation cap (rows exceeding it are flagged)",
    )
    parser.add_argument(
        "--naive-timeout",
        type=float,
        default=60.0,
        help="seconds before the naive baseline is starred (table2)",
    )
    parser.add_argument(
        "--names",
        nargs="+",
        help="table1/table3: run exactly these benchmark rows",
    )
    parser.add_argument(
        "--function", action="append", help="fig34: sweep these functions"
    )
    parser.add_argument("--k", type=int, action="append", help="fig34: sweep values")
    args = parser.parse_args(argv)

    runners = {
        "table1": run_table1,
        "table2": run_table2,
        "table3": run_table3,
        "fig34": run_fig34,
    }
    if args.target == "all":
        for runner in runners.values():
            runner(args)
            print()
    else:
        runners[args.target](args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
