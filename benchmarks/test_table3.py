"""Table 3 — the SPP_0 heuristic vs the exact algorithm.

Paper claims: (i) SPP_0 lands roughly midway between SP and exact SPP
in literal count (the ``Av`` column), and (ii) it is drastically
cheaper to compute (seconds vs hours).  Quick-mode equivalents are
asserted here; exact-vs-SPP_0 times are benchmarked separately.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_table3_row
from repro.bench.suite import get_benchmark
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp

NAMES = ["adr3", "dist3", "mlp2", "csa2", "life6"]


@pytest.mark.parametrize("name", NAMES)
def test_table3_row(benchmark, name):
    measurement = benchmark.pedantic(
        run_table3_row, args=(name,), rounds=1, iterations=1
    )
    assert measurement.spp_literals <= measurement.spp0_literals


def test_spp0_between_sp_and_exact_on_adr4():
    """adr4 whole function: SPP ≤ SPP_0 ≤ SP with a real gap each side."""
    func = get_benchmark("adr4")
    sp = spp0 = spp = 0
    for fo in func.outputs:
        if not fo.on_set:
            continue
        sp += minimize_sp(fo).num_literals
        spp0 += minimize_spp_k(fo, 0).num_literals
        spp += minimize_spp(fo).num_literals
    assert spp <= spp0 <= sp
    assert spp0 < sp  # the heuristic already wins at k = 0


@pytest.mark.parametrize("name", ["adr3", "dist3"])
def test_spp0_much_faster_than_exact(name):
    """The heuristic's whole point: SPP_0 in a fraction of exact time."""
    func = get_benchmark(name)
    exact_seconds = 0.0
    spp0_seconds = 0.0
    for fo in func.outputs:
        if not fo.on_set:
            continue
        spp0_seconds += minimize_spp_k(fo, 0).seconds
        exact_seconds += minimize_spp(fo).seconds
    assert spp0_seconds < exact_seconds


@pytest.mark.parametrize("name", NAMES)
def test_spp0_benchmark(benchmark, name):
    func = get_benchmark(name)

    def run():
        return [
            minimize_spp_k(fo, 0).num_literals
            for fo in func.outputs
            if fo.on_set
        ]

    literals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(x > 0 for x in literals)
