"""Ablation C — bounded EXOR-factor width (2-SPP) vs full SPP.

The paper's conclusion motivates restricted pseudoproduct classes whose
candidate spaces stay manageable.  This ablation quantifies the trade
on quick-mode functions: the candidate count shrinks drastically with
the bound while the literal count degrades gracefully
(SP = bound 1 ≥ 2-SPP ≥ SPP)."""

from __future__ import annotations

import pytest

from repro.bench.suite import get_benchmark
from repro.minimize.bounded import minimize_spp_bounded
from repro.verify import assert_equivalent

CASES = [("adr3", 3), ("dist3", 2), ("csa2", 3)]


@pytest.mark.parametrize("name,output", CASES)
@pytest.mark.parametrize("bound", [1, 2, 99])
def test_bounded_minimization_speed(benchmark, name, output, bound):
    fo = get_benchmark(name)[output]
    result = benchmark.pedantic(
        minimize_spp_bounded, args=(fo, bound), rounds=1, iterations=1
    )
    assert_equivalent(result.form, fo)


@pytest.mark.parametrize("name,output", CASES)
def test_literals_monotone_in_bound(name, output):
    fo = get_benchmark(name)[output]
    results = {
        b: minimize_spp_bounded(fo, b, covering="exact") for b in (1, 2, 99)
    }
    # Literal counts: SP (bound 1) ≥ 2-SPP ≥ full SPP.
    assert results[1].num_literals >= results[2].num_literals
    assert results[2].num_literals >= results[99].num_literals
    # Bound-1 pseudoproducts are plain cubes: the result is an SP form.
    assert results[1].form.is_sp()
