"""Figures 3 and 4 — SPP_k literals and CPU time as functions of k.

Paper claims (Section 4): as ``k`` grows toward ``n-1``, the literal
count of ``SPP_k`` decreases slowly toward the exact SPP count while
the synthesis time grows steeply (log-scale figure 4); small ``k``
therefore gives "reasonable upper bounds" cheaply.  The sweep series is
printed by ``run_tables.py fig34``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_spp_k_sweep
from repro.bench.suite import get_benchmark
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k

SWEEPS = {"dist3": [0, 1, 2, 3, 4, 5], "life6": [0, 1, 2, 3, 4, 5]}


@pytest.mark.parametrize("name", sorted(SWEEPS))
def test_fig3_literals_decrease_to_exact(benchmark, name):
    """Figure 3 shape: #L(SPP_k) non-increasing, ending at the exact
    count for k = n-1 (with exact covering to remove solver noise)."""
    func = get_benchmark(name)

    def sweep():
        series = []
        for k in range(func.n):
            literals = sum(
                minimize_spp_k(fo, k, covering="exact").num_literals
                for fo in func.outputs
                if fo.on_set
            )
            series.append(literals)
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(a >= b for a, b in zip(series, series[1:]))
    exact = sum(
        minimize_spp(fo, covering="exact").num_literals
        for fo in func.outputs
        if fo.on_set
    )
    assert series[-1] == exact


@pytest.mark.parametrize("name", sorted(SWEEPS))
def test_fig4_time_grows_with_k(name):
    """Figure 4 shape: synthesis time at the deepest k dominates k=0 —
    the exponential cost of the descendant phase."""
    points = run_spp_k_sweep(name, ks=SWEEPS[name])
    assert points[-1].seconds > points[0].seconds
    # The literal series over the sweep is weakly decreasing overall:
    # the first point is never the unique minimum.
    assert points[-1].literals <= points[0].literals
