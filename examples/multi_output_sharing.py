#!/usr/bin/env python3
"""Joint multi-output minimization with term sharing + netlist export.

The paper minimizes each output separately; this example shows the
library's joint extension, where a pseudoproduct driving several
outputs is paid for once (the PLA sharing model), and exports the
resulting three-level network as Verilog and BLIF.

Run:  python examples/multi_output_sharing.py
"""

from repro import (
    assert_equivalent,
    minimize_spp,
    minimize_spp_multi,
    spp_to_blif,
    spp_to_verilog,
)
from repro.bench.suite import get_benchmark


def main() -> None:
    func = get_benchmark("adr3")  # 3-bit adder: 6 inputs, 4 outputs

    separate_cost = 0
    for fo in func.outputs:
        if fo.on_set:
            separate_cost += minimize_spp(fo).num_literals

    joint = minimize_spp_multi(func)
    for form, fo in zip(joint.forms, func.outputs):
        assert_equivalent(form, fo)

    print(f"adr3, {func.num_outputs} outputs")
    print(f"separate minimization : {separate_cost} literals "
          f"(every output pays for its own terms)")
    print(f"joint minimization    : {joint.shared_literals} shared literals "
          f"over {len(joint.shared_pseudoproducts)} pseudoproducts")
    print(f"output fanouts        : "
          + ", ".join(str(f.num_pseudoproducts) for f in joint.forms))

    forms = {f"s{o}": form for o, form in enumerate(joint.forms)}
    verilog = spp_to_verilog(forms, module="adder3_spp")
    print("\n--- Verilog (first lines) ---")
    print("\n".join(verilog.splitlines()[:14]))

    blif = spp_to_blif(joint.forms[3], model="carry", output_name="cout")
    print("\n--- BLIF of the carry output (first lines) ---")
    print("\n".join(blif.splitlines()[:10]))


if __name__ == "__main__":
    main()
