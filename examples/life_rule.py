#!/usr/bin/env python3
"""Conway's life rule (the paper's ``life`` benchmark, 9 inputs).

``life`` is totally symmetric in its 8 neighbour inputs, which makes it
a showcase for EXOR-based three-level logic: the paper reports the SP
form at 672 literals vs 144 for SPP (we typically find an even tighter
cover).  The script also sweeps the SPP_k heuristic to show the
quality/effort trade-off on a single hard output.

Run:  python examples/life_rule.py     (~10 s pure Python)
"""

from repro import assert_equivalent, minimize_sp, minimize_spp, minimize_spp_k
from repro.bench.suite import get_benchmark


def main() -> None:
    life = get_benchmark("life")[0]
    print(f"life: 9 inputs, on-set {len(life.on_set)} of 512 points")

    sp = minimize_sp(life)
    assert_equivalent(sp.form, life)
    print(f"SP   : {sp.num_literals} literals, {sp.num_products} products "
          f"(paper: 672 literals, 84 products)")

    exact = minimize_spp(life)
    assert_equivalent(exact.form, life)
    gen = exact.generation
    print(f"SPP  : {exact.num_literals} literals, "
          f"{exact.num_pseudoproducts} pseudoproducts "
          f"(paper: 144 literals, 18 pseudoproducts)")
    print(f"       EPPP set: {exact.num_candidates} (paper: 2100), "
          f"{gen.total_comparisons} unions over {len(gen.steps)} degrees, "
          f"{gen.seconds:.1f}s")

    print("\nSPP_k heuristic sweep (literals / seconds):")
    for k in (0, 1, 2):
        r = minimize_spp_k(life, k)
        assert_equivalent(r.form, life)
        print(f"  k={k}: {r.num_literals:>4} literals   "
              f"{r.num_candidates:>6} candidates   {r.seconds:6.2f}s")
    print(f"  exact: {exact.num_literals:>3} literals   "
          f"{exact.num_candidates:>6} candidates   {exact.seconds:6.2f}s")


if __name__ == "__main__":
    main()
