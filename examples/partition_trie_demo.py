#!/usr/bin/env python3
"""Figures 1 and 2 of the paper, live.

* Figure 1: the canonical matrix of an 8-point pseudocube in B^6, its
  canonical columns and CEX expression (Definition 1).
* Figure 2: the partition-trie path of a 5-factor CEX expression, with
  NC-nodes double-circled, and Property 1 in action (two expressions
  with the same structure sharing a leaf parent).

Run:  python examples/partition_trie_demo.py
"""

from repro import PartitionTrie, Pseudocube, cex_of
from repro.core.bitvec import from_string
from repro.core.canonical import canonical_columns, canonical_matrix, render_matrix
from repro.core.cex import CexExpression
from repro.core.exor import ExorFactor

F = ExorFactor.from_literals


def figure1() -> None:
    rows = ["010101", "010110", "011001", "011010",
            "110000", "110011", "111100", "111111"]
    pc = Pseudocube.from_points(6, [from_string(r) for r in rows])
    print("=== Figure 1: a canonical matrix in B^6 ===")
    print(render_matrix(pc))
    cols = canonical_columns(canonical_matrix(pc), 6)
    print(f"\ncanonical columns: {', '.join(f'c{j}' for j in cols)}")
    print(f"CEX(P) = {cex_of(pc)}")
    print(f"degree {pc.degree}: {len(pc)} points, {pc.num_literals} literals")


def figure2() -> None:
    print("\n=== Figure 2: a partition-trie path ===")
    cex = CexExpression(
        9, (F([0], [1]), F([4]), F([0, 2], [5]), F([3, 6]), F([2, 3], [8]))
    )
    print(f"inserting CEX: {cex}")
    trie = PartitionTrie()
    trie.insert_cex(cex)
    # A second expression with the SAME structure, different
    # complementations: it must land under the same leaf parent.
    sibling = CexExpression(
        9, (F([0, 1]), F([], [4]), F([0, 2, 5]), F([3, 6]), F([2, 3], [8]))
    )
    print(f"and a sibling : {sibling}")
    trie.insert_cex(sibling)
    print("\ntrie (double parens = NC-nodes, brackets = leaf vectors):")
    print(trie.render())
    groups = sorted(len(g) for g in trie.groups())
    print(f"\nleaf groups: {groups} — the pair shares a parent "
          "(Property 1), so Algorithm 1 can unify it without any search")


if __name__ == "__main__":
    figure1()
    figure2()
