#!/usr/bin/env python3
"""The paper's flagship comparison: the 4-bit adder ``adr4``.

Table 1 of the paper reports, for adr4 (8 inputs, 5 outputs, each
output minimized separately):

    SP : #PI = 75,   #L = 340, #P = 75
    SPP: #EPPP = 7158 (radd: 6600), #L = 72, #PP = 14

i.e. the minimal SPP form has 4.72x fewer literals.  This script
regenerates the row output by output and prints the synthesized EXOR
expressions — note how the carry chain collapses into nested
``(x_i (+) x_{i+4})`` factors.

Run:  python examples/adder_spp.py     (~25 s pure Python)
"""

from repro import assert_equivalent, cex_of, minimize_sp, minimize_spp
from repro.bench.suite import get_benchmark


def main() -> None:
    adr4 = get_benchmark("adr4")
    totals = {"pi": 0, "sp_l": 0, "sp_p": 0, "eppp": 0, "spp_l": 0, "spp_p": 0}

    for o, fo in enumerate(adr4.outputs):
        sp = minimize_sp(fo)
        spp = minimize_spp(fo)
        assert_equivalent(sp.form, fo)
        assert_equivalent(spp.form, fo)
        totals["pi"] += sp.num_primes
        totals["sp_l"] += sp.num_literals
        totals["sp_p"] += sp.num_products
        totals["eppp"] += spp.num_candidates
        totals["spp_l"] += spp.num_literals
        totals["spp_p"] += spp.num_pseudoproducts
        print(f"output s{o}: SP {sp.num_literals:>3}L/{sp.num_products:>2}P"
              f"   SPP {spp.num_literals:>3}L/{spp.num_pseudoproducts}PP"
              f"   ({spp.num_candidates} EPPPs)")
        for pc in spp.form.pseudoproducts:
            print(f"    {cex_of(pc)}")

    print()
    print(f"totals: SP #PI={totals['pi']} #L={totals['sp_l']} #P={totals['sp_p']}"
          f"  |  SPP #EPPP={totals['eppp']} #L={totals['spp_l']} #PP={totals['spp_p']}")
    print("paper : SP #PI=75 #L=340 #P=75  |  SPP #EPPP=6600-7158 #L=72 #PP=14")


if __name__ == "__main__":
    main()
