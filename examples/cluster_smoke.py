#!/usr/bin/env python3
"""End-to-end smoke test of the cluster coordinator under fire.

The contract this asserts, operator's-eye view:

1. a coordinator + 2 workers come up and report healthy;
2. mixed traffic routes across both workers and succeeds;
3. ``SIGKILL`` of one worker mid-load loses **no accepted request** —
   every in-flight and subsequent request either succeeds via failover
   to the ring successor or gets a structured 429/503 with a JSON
   error body (never a dropped connection), and the shed rate over the
   outage window stays under a bound;
4. the supervisor restarts the dead worker, re-admits it to the ring,
   and it serves again;
5. ``/metrics`` parses as Prometheus text exposition format, with the
   cluster histogram and per-worker families present.

A ``signal.alarm`` hard-kills the whole script if anything wedges.

Run:  PYTHONPATH=src python examples/cluster_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import sys
import tempfile
import threading
import time

from repro.cluster import ClusterConfig, ClusterCoordinator

PLAS = [f".i 3\n.o 1\n{format(i, '03b')} 1\n111 1\n.e\n" for i in range(8)]
KILL_WINDOW_REQUESTS = 40
MAX_SHED_RATE = 0.5  # over the outage window; normally ~0

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+$|^[a-zA-Z_:]"
    r"[a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$"
)


def body_for(pla: str) -> bytes:
    return json.dumps({"pla": pla, "max_rung": "heuristic"}).encode()


def post(host: str, port: int, body: bytes) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("POST", "/minimize", body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def get(host: str, port: int, path: str) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def check_prometheus(text: str) -> int:
    """Validate exposition format line by line; returns sample count."""
    samples = 0
    current = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            current = line.split()[2]
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[2] == current, f"TYPE outside family: {line!r}"
            assert parts[3] in ("counter", "gauge", "histogram", "summary")
            continue
        assert not line.startswith("#"), f"stray comment: {line!r}"
        assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"
        assert current and line.split("{")[0].split()[0].startswith(current), (
            f"sample outside its family: {line!r}"
        )
        samples += 1
    return samples


def main() -> None:
    signal.alarm(240)  # hard stop: a supervision bug looks like a hang
    tmp = tempfile.mkdtemp(prefix="spp-cluster-smoke-")
    coordinator = ClusterCoordinator(ClusterConfig(
        port=0,
        workers=2,
        worker_threads=2,
        worker_queue_capacity=4,
        health_interval=0.2,
        restart_backoff=0.2,
        worker_start_timeout=90.0,
        cache_dir=tmp,
    ))
    host, port = coordinator.start()
    print(f"cluster up at http://{host}:{port}")

    try:
        # 1. Probes green.
        assert get(host, port, "/healthz")[0] == 200
        assert get(host, port, "/readyz")[0] == 200

        # 2. Warm traffic routes across both workers.
        for pla in PLAS:
            status, doc = post(host, port, body_for(pla))
            assert status == 200, (status, doc)
        per_worker = {
            name: worker["requests"]
            for name, worker in coordinator.stats()["workers"].items()
        }
        assert all(count > 0 for count in per_worker.values()), (
            f"one worker starved: {per_worker}"
        )
        print(f"routing spread: {per_worker}")

        # 3. SIGKILL one worker mid-load; count outcomes concurrently.
        victim = next(iter(coordinator._workers.values()))
        outcomes: list[int] = []
        lock = threading.Lock()

        def hammer() -> None:
            for i in range(KILL_WINDOW_REQUESTS):
                status, doc = post(host, port, body_for(PLAS[i % len(PLAS)]))
                if status not in (200, 429, 503):
                    raise AssertionError(f"unstructured answer: {status}")
                if status != 200:
                    assert doc["error"]["code"], doc  # structured shed
                with lock:
                    outcomes.append(status)

        thread = threading.Thread(target=hammer)
        thread.start()
        time.sleep(0.1)  # let the load overlap the kill
        print(f"killing worker {victim.proc.name} (pid {victim.proc.pid})")
        os.kill(victim.proc.pid, signal.SIGKILL)
        thread.join(timeout=120)
        assert not thread.is_alive(), "load thread wedged"

        ok = outcomes.count(200)
        shed = len(outcomes) - ok
        shed_rate = shed / len(outcomes)
        print(f"outage window: {ok} ok, {shed} structured sheds "
              f"({shed_rate:.0%})")
        assert len(outcomes) == KILL_WINDOW_REQUESTS, "requests went missing"
        assert shed_rate <= MAX_SHED_RATE, f"shed rate {shed_rate:.0%}"

        # 4. Supervisor restarts and re-admits the victim.
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            workers = coordinator.stats()["workers"]
            victim_state = workers[victim.proc.name]
            if victim_state["restarts"] >= 1 and victim_state["status"] == "up":
                break
            time.sleep(0.2)
        else:
            raise AssertionError(f"victim never recovered: {workers}")
        print(f"worker {victim.proc.name} restarted and re-admitted")
        for pla in PLAS:
            assert post(host, port, body_for(pla))[0] == 200

        # 5. /metrics parses as Prometheus text.
        status, payload = get(host, port, "/metrics")
        assert status == 200
        text = payload.decode()
        samples = check_prometheus(text)
        assert "# TYPE repro_cluster_request_seconds histogram" in text
        assert "repro_cluster_worker_restarts_total" in text
        print(f"/metrics: {samples} samples, format OK")
    finally:
        coordinator.drain(grace=2.0)
    print("cluster smoke: all checks passed")


if __name__ == "__main__":
    sys.exit(main())
