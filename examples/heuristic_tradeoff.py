#!/usr/bin/env python3
"""Figures 3 and 4: the SPP_k quality/time trade-off.

Sweeps k for the scaled distance function dist3 (6 inputs) and prints
the two curves the paper plots: literals (fig. 3) and CPU seconds
(fig. 4, log scale in the paper).  The shape to look for: literals sink
toward the exact SPP count while time climbs steeply — "SPP_k forms
are reasonable upper bounds of the exact SPP forms for small k".

Run:  python examples/heuristic_tradeoff.py [benchmark-name]
"""

import sys

from repro import minimize_sp, minimize_spp
from repro.bench.harness import run_spp_k_sweep
from repro.bench.suite import get_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dist3"
    func = get_benchmark(name)
    actives = [f for f in func.outputs if f.on_set]

    sp_literals = sum(minimize_sp(f).num_literals for f in actives)
    exact = [minimize_spp(f) for f in actives]
    exact_literals = sum(r.num_literals for r in exact)
    exact_seconds = sum(r.seconds for r in exact)

    print(f"benchmark {name}: {func.n} inputs, {len(actives)} active outputs")
    print(f"SP form       : {sp_literals} literals")
    print(f"exact SPP form: {exact_literals} literals, {exact_seconds:.2f}s\n")

    print(f"{'k':>3}  {'#L(SPP_k)':>10}  {'seconds':>9}  curve")
    scale = max(sp_literals, 1)
    for point in run_spp_k_sweep(name):
        bar = "#" * round(40 * point.literals / scale)
        print(f"{point.k:>3}  {point.literals:>10}  {point.seconds:>9.3f}  {bar}")
    bar = "#" * round(40 * exact_literals / scale)
    print(f"{'SPP':>3}  {exact_literals:>10}  {exact_seconds:>9.3f}  {bar}")


if __name__ == "__main__":
    main()
