#!/usr/bin/env python3
"""Quickstart: minimize a small function as SP and as SPP.

The function here is a 4-variable "one-hot or all-hot" detector.  The
SP form needs one product per accepted point; the SPP form exploits
EXOR structure and is considerably smaller.

Run:  python examples/quickstart.py
"""

from repro import BoolFunc, assert_equivalent, minimize_sp, minimize_spp


def main() -> None:
    # f(x) = 1 iff exactly one input is high, or all four are.
    func = BoolFunc.from_lambda(4, lambda p: p.bit_count() == 1 or p == 0b1111)

    sp = minimize_sp(func, covering="exact")
    spp = minimize_spp(func, covering="exact")

    # Both forms implement the function exactly (raises otherwise).
    assert_equivalent(sp.form, func)
    assert_equivalent(spp.form, func)

    print("function: one-hot-or-all-hot over 4 variables")
    print(f"  on-set size      : {len(func.on_set)}")
    print()
    print(f"SP  (sum of products)      : {sp.num_literals} literals, "
          f"{sp.num_products} products from {sp.num_primes} primes")
    print(f"    {sp.form}")
    print()
    print(f"SPP (sum of pseudoproducts): {spp.num_literals} literals, "
          f"{spp.num_pseudoproducts} pseudoproducts from "
          f"{spp.num_candidates} EPPP candidates")
    print(f"    {spp.form}")
    print()
    ratio = spp.num_literals / sp.num_literals
    print(f"SPP/SP literal ratio: {ratio:.2f} "
          "(the paper reports ~0.5 on average across its benchmark suite)")


if __name__ == "__main__":
    main()
