#!/usr/bin/env python3
"""Deterministic chaos acceptance run for the resilient cluster tier.

The contract this asserts, operator's-eye view:

1. a coordinator + 2 workers come up with adaptive hedging and retry
   budgets on; every worker computes with a fixed 0.25s service time
   (injected via the fault plan, so latency is deterministic);
2. a fault-free phase establishes the baseline p99 and warms the
   per-route p95 tracker past its minimum sample mass;
3. a chaos phase — one worker ``SIGSTOP``-ped for 3s mid-load *plus*
   5% of proxy exchanges stalled 0.15s (seeded) — still satisfies:
   - **zero lost accepted requests**: every request gets a structured
     answer (200, or a JSON-bodied 429/503), never a dropped
     connection or transport error;
   - **hedged p99 <= 3x the fault-free p99**: the ~p95 hedge delay
     covers both the wedged worker and the stalled exchanges;
   - **upstream attempts <= 2x offered load**: the retry budget and
     single-hedge policy bound duplicate work;
4. requests carrying an already-expired ``X-Repro-Deadline`` are shed
   at admission with a structured 503 + Retry-After, never computed;
5. the ``SIGSTOP``-ped worker resumes and serves again with **zero
   restarts** — hedging absorbed the wedge, supervision never fired;
6. a machine-readable report lands on disk for CI artifact upload.

A ``signal.alarm`` hard-kills the whole script if anything wedges.

Run:  PYTHONPATH=src python examples/cluster_chaos.py [report.json]
"""

from __future__ import annotations

import http.client
import json
import signal
import sys
import tempfile
import threading
import time

from repro import faults
from repro.cluster import DEADLINE_HEADER, ClusterConfig, ClusterCoordinator
from repro.faults import FaultPlan, FaultRule
from repro.loadgen import ChaosAction, ChaosScenario

SERVICE_TIME = 0.25   # injected per-request compute time (seconds)
STALL_SECONDS = 0.15  # proxy stall duration; < SERVICE_TIME by design
STALL_P = 0.05        # fraction of proxy exchanges stalled
OUTAGE = 3.0          # SIGSTOP duration (seconds)
SEED = 1234
BASELINE_REQUESTS = 60
CHAOS_REQUESTS = 80
CLIENTS = 4

PLAS = [f".i 3\n.o 1\n{format(i, '03b')} 1\n111 1\n.e\n" for i in range(8)]


def body_for(i: int) -> bytes:
    return json.dumps(
        {"pla": PLAS[i % len(PLAS)], "max_rung": "heuristic"}
    ).encode()


def post(host: str, port: int, body: bytes,
         headers: dict | None = None) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("POST", "/minimize", body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def drive(host: str, port: int, total: int) -> list[tuple[int, float]]:
    """Fire ``total`` requests from CLIENTS threads; (status, latency)."""
    outcomes: list[tuple[int, float]] = []
    lock = threading.Lock()

    def worker(offset: int) -> None:
        for i in range(offset, total, CLIENTS):
            started = time.monotonic()
            status, doc = post(host, port, body_for(i))
            elapsed = time.monotonic() - started
            if status not in (200, 429, 503):
                raise AssertionError(f"unstructured answer: {status} {doc}")
            if status != 200:
                assert doc["error"]["code"], doc  # structured shed
            with lock:
                outcomes.append((status, elapsed))

    threads = [threading.Thread(target=worker, args=(n,))
               for n in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "load thread wedged"
    return outcomes


def main() -> None:
    signal.alarm(300)  # hard stop: a resilience bug looks like a hang
    report_path = sys.argv[1] if len(sys.argv) > 1 else "chaos-report.json"
    tmp = tempfile.mkdtemp(prefix="spp-cluster-chaos-")

    # Deterministic compute cost, installed BEFORE the coordinator so
    # the spawned workers inherit it through the environment.
    faults.install(FaultPlan(
        [FaultRule(site="serve.request", kind="slow",
                   arg=SERVICE_TIME, times=None)],
        seed=SEED,
    ))

    coordinator = ClusterCoordinator(ClusterConfig(
        port=0,
        workers=2,
        worker_threads=CLIENTS,     # no queueing even during the outage
        worker_queue_capacity=16,
        health_interval=30.0,       # hedging, not eviction, owns the wedge
        proxy_timeout=30.0,
        default_timeout=10.0,
        retry_budget_cap=200.0,     # measure hedging, not budget exhaustion
        retry_budget_ratio=1.0,
        cache_dir=tmp,
    ))
    host, port = coordinator.start()
    print(f"cluster up at http://{host}:{port}")

    try:
        # Phase 1: fault-free baseline; also warms the p95 tracker past
        # min_samples so the chaos phase hedges adaptively.
        outcomes = drive(host, port, BASELINE_REQUESTS)
        base_latencies = [latency for status, latency in outcomes
                          if status == 200]
        assert len(base_latencies) == BASELINE_REQUESTS, outcomes
        base_p99 = percentile(base_latencies, 0.99)
        hedging = coordinator.stats()["hedging"]
        print(f"baseline: p99={base_p99:.3f}s over {len(base_latencies)} "
              f"requests, adaptive delays={hedging['delays']}")

        # Phase 2: chaos.  Merge the seeded 5% proxy stall into the
        # coordinator-side plan and SIGSTOP one worker mid-load.
        faults.install(FaultPlan(
            [FaultRule(site="serve.request", kind="slow",
                       arg=SERVICE_TIME, times=None),
             FaultRule(site="cluster.proxy.stall", kind="slow",
                       p=STALL_P, times=None, arg=STALL_SECONDS)],
            seed=SEED,
        ))
        before = coordinator.stats()["counters"]
        victim = next(iter(coordinator._workers))
        scenario = ChaosScenario(
            {name: state.proc
             for name, state in coordinator._workers.items()},
            [ChaosAction(at=0.5, kind="sigstop", worker=victim,
                         duration=OUTAGE)],
        )
        print(f"chaos: SIGSTOP {victim} at t+0.5s for {OUTAGE}s, "
              f"{STALL_P:.0%} stalls of {STALL_SECONDS}s")
        with scenario:
            outcomes = drive(host, port, CHAOS_REQUESTS)
        assert scenario.fired, "chaos timeline never fired"
        after = coordinator.stats()["counters"]

        # Zero lost accepted requests: every request answered, and all
        # admitted (200) work completed — nothing vanished.
        assert len(outcomes) == CHAOS_REQUESTS, "requests went missing"
        ok = [latency for status, latency in outcomes if status == 200]
        shed = CHAOS_REQUESTS - len(ok)
        chaos_p99 = percentile(ok, 0.99)
        attempts = after["upstream_attempts"] - before["upstream_attempts"]
        hedges = after["hedges"] - before["hedges"]
        print(f"chaos window: {len(ok)} ok, {shed} structured sheds, "
              f"p99={chaos_p99:.3f}s, {attempts} upstream attempts, "
              f"{hedges} hedges ({after['hedge_wins']} wins total)")
        assert shed == 0, f"{shed} requests shed despite spare capacity"
        assert hedges > 0, "chaos never exercised the hedger"
        assert chaos_p99 <= 3 * base_p99, (
            f"hedged p99 {chaos_p99:.3f}s breaches 3x baseline "
            f"{base_p99:.3f}s")
        assert attempts <= 2 * CHAOS_REQUESTS, (
            f"{attempts} attempts for {CHAOS_REQUESTS} offered: "
            "amplification above 2x")

        # Expired deadlines are shed at admission, never computed.
        status, doc = post(host, port, body_for(0),
                           headers={DEADLINE_HEADER: "0"})
        assert status == 503 and doc["error"]["code"] == "deadline-exceeded"
        assert coordinator.stats()["counters"]["deadline_shed"] >= 1
        print("expired-deadline request shed at admission (503)")

        # The victim woke up, still serves, and was never restarted.
        faults.uninstall()
        for i in range(8):
            status, _ = post(host, port, body_for(i))
            assert status == 200
        workers = coordinator.stats()["workers"]
        assert workers[victim]["status"] == "up", workers[victim]
        assert workers[victim]["restarts"] == 0, (
            f"supervision fired during a hedgeable wedge: {workers[victim]}")
        print(f"worker {victim} resumed with zero restarts")

        report = {
            "schema": "repro-cluster-chaos/1",
            "service_time": SERVICE_TIME,
            "stall": {"p": STALL_P, "seconds": STALL_SECONDS},
            "outage_seconds": OUTAGE,
            "seed": SEED,
            "baseline": {"requests": BASELINE_REQUESTS, "p99": base_p99},
            "chaos": {
                "requests": CHAOS_REQUESTS,
                "ok": len(ok),
                "shed": shed,
                "p99": chaos_p99,
                "p99_ratio": chaos_p99 / base_p99 if base_p99 else None,
                "upstream_attempts": attempts,
                "hedges": hedges,
            },
            "counters": after,
        }
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {report_path}")
    finally:
        faults.uninstall()
        coordinator.drain(grace=2.0)
    print("cluster chaos: all checks passed")


if __name__ == "__main__":
    sys.exit(main())
