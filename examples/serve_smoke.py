#!/usr/bin/env python3
"""End-to-end smoke test of ``repro serve`` as a real subprocess.

Drives the service the way an operator would — through the CLI, over
HTTP, with signals — and asserts the overload and shutdown contracts:

1. the server comes up and reports healthy;
2. a 4x-capacity concurrent burst sheds the excess with 429 +
   ``Retry-After`` while ``/healthz`` stays green;
3. SIGTERM drains gracefully: exit code 0, "drained, exiting" on
   stdout, and the manifest journal replays intact afterwards.

Deterministic slowness comes from the fault-injection env plan (every
rung start stalls 0.5s), so the burst reliably overlaps.  A
``signal.alarm`` hard-kills the whole script if anything wedges.

Run:  PYTHONPATH=src python examples/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.engine.batch import Manifest
from repro.faults import ENV_VAR, FaultPlan, FaultRule

PLA = ".i 3\n.o 1\n1-- 1\n-11 1\n.e\n"
BURST = 8  # 4x the (1 worker + 1 waiting seat) admission capacity


def request(port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        data = json.loads(response.read() or b"{}")
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


def wait_healthy(port: int, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            if request(port, "GET", "/healthz")[0] == 200:
                return
        except OSError:
            time.sleep(0.05)
    raise AssertionError("server never became healthy")


def main() -> None:
    signal.alarm(150)  # hard ceiling on the whole smoke run
    import os

    with tempfile.TemporaryDirectory() as tmp:
        manifest_dir = Path(tmp) / "manifest"
        env = dict(os.environ)
        env[ENV_VAR] = FaultPlan(
            [FaultRule(site="scheduler.rung_start", kind="slow",
                       arg=0.5, times=None)]
        ).to_json()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--threads", "1", "--queue-capacity", "1",
             "--drain-grace", "5", "--manifest-dir", str(manifest_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no port in banner: {banner!r}"
            port = int(match.group(1))
            wait_healthy(port, time.monotonic() + 20)
            print(f"serve up on port {port}")

            # Seed the journal with one completed request.
            status, _, body = request(
                port, "POST", "/minimize", {"pla": PLA, "timeout": 5.0}
            )
            assert status == 200 and body["ok"], (status, body)
            assert len(Manifest(manifest_dir).replay()) == 1
            print("single request ok, journal seeded")

            # 4x-capacity burst: the excess must shed, liveness holds.
            results: list[tuple[int, dict]] = []
            lock = threading.Lock()

            def fire(i: int) -> None:
                # A distinct function per request, so the result cache
                # can't absorb the burst and every admitted request
                # really occupies its slot for the stalled rung.
                pla = f".i 4\n.o 1\n{i:03b}- 1\n-111 1\n.e\n"
                outcome = request(
                    port, "POST", "/minimize",
                    {"pla": pla, "timeout": 3.0, "label": f"burst-{i}"},
                )
                with lock:
                    results.append((outcome[0], outcome[1]))

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(BURST)
            ]
            for thread in threads:
                thread.start()
            assert request(port, "GET", "/healthz")[0] == 200
            for thread in threads:
                thread.join(timeout=30)
            shed = [r for r in results if r[0] == 429]
            assert len(results) == BURST, results
            assert len(shed) >= BURST - 2, [r[0] for r in results]
            assert all("Retry-After" in h for _, h in shed)
            assert request(port, "GET", "/healthz")[0] == 200
            print(f"burst of {BURST}: {len(shed)} shed with Retry-After, "
                  "healthz green throughout")

            # Graceful drain on SIGTERM.
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, proc.returncode
            assert "drained, exiting" in output, output
            replayed = Manifest(manifest_dir).replay()
            assert replayed, "journal lost in drain"
            print(f"SIGTERM drain clean, journal replays "
                  f"{len(replayed)} record(s)")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
    print("serve smoke: PASS")


if __name__ == "__main__":
    main()
