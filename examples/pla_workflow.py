#!/usr/bin/env python3
"""End-to-end PLA workflow: write, read, minimize, verify, compare.

Demonstrates the library as a downstream user would drive it:

1. dump a registered benchmark to ESPRESSO PLA text,
2. parse it back (round trip),
3. minimize every output with the bounded (2-SPP), heuristic and exact
   engines,
4. verify each form against the parsed function.

Run:  python examples/pla_workflow.py
"""

import io

from repro import (
    assert_equivalent,
    minimize_spp,
    minimize_spp_bounded,
    minimize_spp_k,
    parse_pla,
    write_pla,
)
from repro.bench.suite import get_benchmark


def main() -> None:
    original = get_benchmark("adr3")
    pla_text = write_pla(original)
    print(f"PLA dump of adr3: {len(pla_text.splitlines())} lines, starts:")
    print("".join(io.StringIO(pla_text).readlines()[:5]), end="")

    parsed = parse_pla(pla_text, name="adr3-roundtrip")
    assert parsed.num_outputs == original.num_outputs

    header = f"{'out':>4} {'2-SPP':>7} {'SPP_1':>7} {'exact':>7}"
    print("\nliterals per engine:")
    print(header)
    for o, fo in enumerate(parsed.outputs):
        if not fo.on_set:
            continue
        bounded = minimize_spp_bounded(fo, 2)
        heuristic = minimize_spp_k(fo, 1)
        exact = minimize_spp(fo)
        for result in (bounded, heuristic, exact):
            assert_equivalent(result.form, fo)
        print(f"{o:>4} {bounded.num_literals:>7} "
              f"{heuristic.num_literals:>7} {exact.num_literals:>7}")
    print("\nall forms verified equivalent to the parsed PLA")


if __name__ == "__main__":
    main()
