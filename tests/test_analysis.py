"""Tests for the structural analysis module."""

from repro.analysis import (
    comparison_savings,
    form_profile,
    generation_profile,
)
from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.minimize.exact import minimize_spp


class TestGenerationProfile:
    def test_profile_fields_consistent(self):
        func = BoolFunc(4, frozenset({0, 3, 5, 6, 9, 10, 12, 15}))
        profile = generation_profile(func)
        assert profile.n == 4
        assert profile.total_eppps >= 1
        assert profile.total_comparisons <= profile.total_naive_comparisons
        assert profile.peak_level_size > 0
        assert profile.savings_factor >= 1.0

    def test_single_point_profile(self):
        profile = generation_profile(BoolFunc(3, frozenset({5})))
        assert profile.total_eppps == 1
        assert profile.savings_factor == 1.0

    def test_savings_grow_with_structure(self):
        """A function with many structure classes saves a lot (§3.3)."""
        func = BoolFunc(4, frozenset(range(12)))
        assert comparison_savings(func) > 2.0

    def test_capped_profile(self):
        func = BoolFunc(4, frozenset(range(16)))
        profile = generation_profile(func, max_pseudoproducts=20)
        assert profile.total_eppps > 0


class TestStructureCensus:
    def test_census_shape(self):
        from repro.analysis import structure_census

        func = BoolFunc(4, frozenset({0, 3, 5, 6, 9, 10}))
        census = structure_census(func)
        # Degree 0: one structure class holding every point.
        size, classes = census[0]
        assert size == 6 and classes == 1
        for degree, (size, classes) in census.items():
            assert 1 <= classes <= max(size, 1)


class TestFormProfile:
    def test_sp_form_is_two_level(self):
        form = SppForm(3, (Pseudocube.from_cube(3, 0b011, 0b001),))
        profile = form_profile(form)
        assert profile.is_two_level
        assert profile.num_exor_gates == 0
        assert profile.max_factor_width == 1

    def test_xor_form_counts_gates(self):
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))  # odd parity
        form = minimize_spp(func).form
        profile = form_profile(form)
        assert not profile.is_two_level
        assert profile.max_factor_width == 3
        assert profile.degree_histogram == {2: 1}

    def test_histogram_and_fanin(self):
        pcs = (
            Pseudocube.from_point(3, 1),
            Pseudocube.from_points(3, [0b010, 0b100]),
        )
        profile = form_profile(SppForm(3, pcs))
        assert profile.degree_histogram == {0: 1, 1: 1}
        assert profile.max_product_fanin == 3
        assert profile.num_pseudoproducts == 2
