"""Tests for the structured error taxonomy and CLI exit codes."""

import pytest

from repro.boolfunc.pla import PlaError
from repro.errors import (
    EXIT_CORRUPT,
    EXIT_INTERNAL,
    EXIT_PARSE,
    EXIT_USAGE,
    CorruptRecordError,
    ParseError,
    QuarantinedJobError,
    ReproError,
    UsageError,
    exit_code_for,
)


class TestTaxonomy:
    def test_all_are_repro_errors(self):
        for cls in (UsageError, ParseError, CorruptRecordError, QuarantinedJobError):
            assert issubclass(cls, ReproError)

    def test_value_error_compat(self):
        # Pre-taxonomy call sites catch ValueError; keep them working.
        assert issubclass(ParseError, ValueError)
        assert issubclass(CorruptRecordError, ValueError)
        assert issubclass(PlaError, ParseError)

    def test_exit_codes_distinct(self):
        codes = {
            cls.exit_code
            for cls in (UsageError, ParseError, CorruptRecordError,
                        QuarantinedJobError, ReproError)
        }
        assert len(codes) == 5

    def test_exit_code_for(self):
        assert exit_code_for(ParseError("x")) == EXIT_PARSE
        assert exit_code_for(CorruptRecordError("x")) == EXIT_CORRUPT
        assert exit_code_for(RuntimeError("x")) == EXIT_INTERNAL
        assert exit_code_for(SystemExit(2)) == EXIT_USAGE


class TestParseErrorContext:
    def test_file_and_line_render(self):
        err = ParseError("bad cube", file="c.pla", line=12)
        assert str(err) == "c.pla:12: bad cube"

    def test_file_only(self):
        assert str(ParseError("missing headers", file="c.pla")) == (
            "c.pla: missing headers"
        )

    def test_line_only(self):
        assert str(ParseError("bad cube", line=3)) == "line 3: bad cube"

    def test_bare_message(self):
        assert str(ParseError("bad cube")) == "bad cube"


class TestCliMapping:
    def test_parse_error_is_clean_exit_3(self, tmp_path, capsys):
        from repro.cli import main

        pla = tmp_path / "broken.pla"
        pla.write_text(".i 2\n.o 1\n0111 1\n.e\n")  # wrong input width
        code = main(["minimize", str(pla)])
        assert code == EXIT_PARSE
        err = capsys.readouterr().err
        assert "spp-minimize: error:" in err
        assert "broken.pla:3:" in err     # clickable file:line context
        assert "Traceback" not in err

    def test_unreadable_file_is_clean_exit_3(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["minimize", str(tmp_path / "missing.pla")])
        assert code == EXIT_PARSE
        assert "cannot read PLA file" in capsys.readouterr().err
