"""Tests for the load generator: workload, driver, reports."""

from __future__ import annotations

import json

import pytest

from repro.loadgen import (
    LoadDriver,
    Sample,
    Stage,
    StageReport,
    Workload,
    write_report,
)
from repro.loadgen.driver import _percentile
from repro.serve import MinimizeService, ServeConfig


class TestWorkload:
    def test_deterministic_across_instances(self):
        a, b = Workload(seed=7), Workload(seed=7)
        assert a.distinct() == b.distinct()
        assert [a.next_body() for _ in range(20)] == [
            b.next_body() for _ in range(20)
        ]

    def test_seed_changes_pools(self):
        assert Workload(seed=1).distinct() != Workload(seed=2).distinct()

    def test_pool_sizes(self):
        workload = Workload(small_pool=5, large_pool=3)
        assert len(workload.distinct()) == 8
        described = workload.describe()
        assert described["small_pool"] == 5
        assert described["large_pool"] == 3

    def test_large_fraction_zero_draws_only_small(self):
        workload = Workload(small_pool=4, large_pool=2, large_fraction=0.0)
        larges = set(workload._large)
        assert all(
            workload.next_body() not in larges for _ in range(50)
        )

    def test_bodies_are_valid_requests(self):
        for body in Workload(small_pool=3, large_pool=2).distinct():
            payload = json.loads(body)
            assert ("pla" in payload) ^ ("benchmark" in payload)
            assert payload["max_rung"] == "heuristic"

    def test_large_fraction_validated(self):
        with pytest.raises(ValueError):
            Workload(large_fraction=1.5)

    def test_dup_rate_validated(self):
        with pytest.raises(ValueError):
            Workload(dup_rate=-0.1)

    def test_dup_bodies_are_delta_requests(self):
        workload = Workload(seed=3, small_pool=6, large_pool=0, dup_rate=0.5)
        assert workload.describe()["dup_pool"] > 0
        from repro.serve.server import jobs_from_payload

        for body in workload._dups:
            payload = json.loads(body)
            assert set(payload["delta"]) == {"toggles"}
            assert "pla" in payload["base"]
            # Dup bodies carry no max_rung cap: the warm path lives on
            # the exact rung.
            assert "max_rung" not in payload
            assert jobs_from_payload(payload)  # expands cleanly

    def test_dup_rate_one_draws_only_dups(self):
        workload = Workload(seed=3, small_pool=6, large_pool=2, dup_rate=1.0)
        dups = set(workload._dups)
        assert all(workload.next_body() in dups for _ in range(30))

    def test_dup_rate_zero_builds_no_pool(self):
        workload = Workload(seed=3, small_pool=4)
        assert workload.describe()["dup_pool"] == 0


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) is None

    def test_single(self):
        assert _percentile([3.0], 0.99) == 3.0

    def test_interpolates(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert _percentile(values, 0.5) == pytest.approx(1.5)
        assert _percentile(values, 0.0) == 0.0
        assert _percentile(values, 1.0) == 3.0


class TestStageReport:
    def test_outcome_classification(self):
        stage = Stage(duration=1.0, clients=2)
        samples = [
            Sample(0.0, 0.010, 200),
            Sample(0.1, 0.020, 200),
            Sample(0.2, 0.001, 429, "overloaded"),
            Sample(0.3, 0.500, 500, "internal"),
            Sample(0.4, 0.0, 0, "transport"),
        ]
        report = StageReport.from_samples(stage, samples, seconds=1.0)
        assert report.requests == 5
        assert report.ok == 2
        assert report.shed == 1
        assert report.failed == 1
        assert report.transport_errors == 1
        assert report.shed_rate == pytest.approx(0.2)
        assert report.throughput_rps == pytest.approx(2.0)
        # Transport errors carry no latency; percentiles cover the rest.
        assert report.p50 is not None
        doc = report.as_dict()
        assert doc["latency"]["p99"] == report.p99

    def test_open_and_closed_modes(self):
        assert Stage(1.0, clients=4).mode == "closed"
        assert Stage(1.0, clients=4, rate=10.0).mode == "open"


@pytest.fixture()
def service():
    svc = MinimizeService(ServeConfig(port=0, threads=2, queue_capacity=4))
    _, port = svc.start()
    yield svc, port
    svc.drain(grace=0.0)


class TestDriverEndToEnd:
    def test_closed_loop_run_and_report(self, service, tmp_path):
        _, port = service
        workload = Workload(seed=3, small_pool=4, large_pool=0)
        lines = []
        driver = LoadDriver("127.0.0.1", port, workload,
                            progress=lines.append)
        result = driver.run(
            [Stage(duration=0.5, clients=2)], target="unit-test"
        )
        assert result.target == "unit-test"
        assert result.warmup_requests == 4
        (stage,) = result.stages
        assert stage.ok > 0
        assert stage.transport_errors == 0
        assert stage.p50 is not None and stage.p50 < 5.0
        # Warm-up primed the cache, so the stage itself was all hits.
        assert stage.server_delta.get("cache.counters.hits", 0) > 0
        assert any("stage 1/1" in line for line in lines)

        json_path, md_path = write_report(
            tmp_path, "unit", "Unit run", {"single": result},
            notes=["a note"],
        )
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == "repro-loadtest/1"
        assert doc["runs"]["single"]["stages"][0]["ok"] == stage.ok
        markdown = md_path.read_text()
        assert "| stage | load |" in markdown
        assert "a note" in markdown

    def test_open_loop_keeps_schedule(self, service):
        _, port = service
        workload = Workload(seed=3, small_pool=4, large_pool=0)
        driver = LoadDriver("127.0.0.1", port, workload)
        result = driver.run(
            [Stage(duration=0.5, clients=8, rate=40.0)], warmup_repeats=1
        )
        (stage,) = result.stages
        # Open loop fires on schedule: ~rate×duration arrivals.
        assert stage.requests >= 15
        assert stage.ok > 0

    def test_driver_survives_unreachable_target(self):
        workload = Workload(seed=3, small_pool=2, large_pool=0)
        from repro.cluster import free_port

        driver = LoadDriver("127.0.0.1", free_port(), workload,
                            request_timeout=2.0)
        result = driver.run(
            [Stage(duration=0.3, clients=1)], warmup_repeats=1
        )
        (stage,) = result.stages
        assert stage.ok == 0
        assert stage.transport_errors == stage.requests > 0
