"""Tests for the loadtest summarizer and the chaos timeline."""

from __future__ import annotations

import copy
import math
import time

import pytest

from repro.loadgen import (
    ChaosAction,
    ChaosScenario,
    Sample,
    Stage,
    StageReport,
    mean_ci,
    proxy_stall_plan,
    render_summary_markdown,
    summarize,
)


def _stage_doc(p50=0.01, p95=0.05, p99=0.09, rps=10.0, shed=0.0):
    return {
        "stage": {"mode": "closed", "clients": 4, "duration": 10, "rate": None},
        "throughput_rps": rps,
        "shed_rate": shed,
        "latency": {"p50": p50, "p95": p95, "p99": p99},
    }


def _doc(*stages, name="run"):
    return {"schema": "repro-loadtest/1",
            "runs": {name: {"stages": list(stages)}}}


class TestMeanCI:
    def test_empty(self):
        assert mean_ci([]) == {"n": 0, "mean": None, "ci95": None}

    def test_single_value_has_no_interval(self):
        cell = mean_ci([4.2])
        assert cell["mean"] == pytest.approx(4.2)
        assert cell["ci95"] is None

    def test_known_t_interval(self):
        # n=3, mean 2, sample sd 1: half-width = t(df=2) * 1/sqrt(3).
        cell = mean_ci([1.0, 2.0, 3.0])
        assert cell["mean"] == pytest.approx(2.0)
        assert cell["ci95"] == pytest.approx(4.303 / math.sqrt(3))

    def test_identical_values_zero_width(self):
        assert mean_ci([5.0, 5.0, 5.0])["ci95"] == pytest.approx(0.0)

    def test_interval_narrows_with_repeats(self):
        wide = mean_ci([1.0, 3.0])["ci95"]
        narrow = mean_ci([1.0, 3.0] * 8)["ci95"]
        assert narrow < wide


class TestSummarize:
    def test_aggregates_repeats_per_stage(self):
        a = _doc(_stage_doc(rps=10.0))
        b = _doc(_stage_doc(rps=14.0))
        summary = summarize([a, b])
        row = summary["runs"]["run"]["stages"][0]
        assert row["repeats"] == 2
        assert row["throughput_rps"]["mean"] == pytest.approx(12.0)
        assert row["p95"]["n"] == 2

    def test_bare_loadresult_document_counts_as_one_run(self):
        bare = {"schema": "repro-loadtest/1", "stages": [_stage_doc()]}
        summary = summarize([bare, copy.deepcopy(bare)])
        assert summary["runs"]["run"]["stages"][0]["repeats"] == 2

    def test_mismatched_stage_counts_raise(self):
        with pytest.raises(ValueError, match="not repeats"):
            summarize([_doc(_stage_doc()),
                       _doc(_stage_doc(), _stage_doc())])

    def test_markdown_renders_ci(self):
        summary = summarize([_doc(_stage_doc(rps=10.0)),
                             _doc(_stage_doc(rps=14.0))])
        text = render_summary_markdown(summary)
        assert "12.0 ± " in text
        assert "4 clients closed" in text


class TestRejectedBucket:
    def test_503_is_rejected_not_failed(self):
        samples = [
            Sample(0.0, 0.01, 200),
            Sample(0.0, 0.01, 429),
            Sample(0.0, 0.01, 503, "deadline-exceeded"),
            Sample(0.0, 0.01, 500),
            Sample(0.0, 0.0, 0, "transport"),
        ]
        report = StageReport.from_samples(Stage(1.0), samples, 1.0)
        assert report.ok == 1
        assert report.shed == 1
        assert report.rejected == 1
        assert report.failed == 1
        assert report.transport_errors == 1
        assert report.as_dict()["rejected"] == 1


class _FakeProc:
    def __init__(self):
        self.events = []
        self.suspended = False

    def suspend(self):
        self.suspended = True
        self.events.append("stop")
        return True

    def resume(self):
        self.suspended = False
        self.events.append("cont")
        return True

    def kill(self):
        self.events.append("kill")


class TestChaos:
    def test_parse(self):
        action = ChaosAction.parse("w2@1.5:0.75")
        assert action == ChaosAction(at=1.5, kind="sigstop",
                                     worker="w2", duration=0.75)
        assert ChaosAction.parse("w0@3").duration == 0.0

    @pytest.mark.parametrize("bad", ["", "w0", "@3", "w0@", "w0@x:y"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ChaosAction.parse(bad)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosAction(at=0.0, kind="meteor", worker="w0")

    def test_unknown_worker_rejected(self):
        with pytest.raises(ValueError, match="unknown worker"):
            ChaosScenario({}, [ChaosAction(0.0, "sigstop", "w9")])

    def test_scenario_fires_and_resumes(self):
        proc = _FakeProc()
        scenario = ChaosScenario(
            {"w0": proc},
            [ChaosAction(at=0.0, kind="sigstop", worker="w0", duration=0.05)],
        )
        with scenario:
            deadline = time.monotonic() + 5.0
            while not proc.events and time.monotonic() < deadline:
                time.sleep(0.01)
            while (proc.suspended
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert proc.events[0] == "stop"
        assert "cont" in proc.events
        assert not proc.suspended
        assert scenario.fired

    def test_stop_resumes_leftover_suspensions(self):
        proc = _FakeProc()
        scenario = ChaosScenario(
            {"w0": proc},
            [ChaosAction(at=0.0, kind="sigstop", worker="w0", duration=60.0)],
        )
        scenario.start()
        deadline = time.monotonic() + 5.0
        while not proc.suspended and time.monotonic() < deadline:
            time.sleep(0.01)
        scenario.stop()  # aborts the 60s suspension immediately
        assert not proc.suspended

    def test_proxy_stall_plan_shape(self):
        plan = proxy_stall_plan(0.05, 0.4, seed=7)
        (rule,) = plan.rules
        assert rule.site == "cluster.proxy.stall"
        assert rule.p == 0.05 and rule.arg == 0.4
        assert plan.seed == 7
