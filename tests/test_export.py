"""Tests for BLIF and Verilog export.

Correctness is established by *simulating* the emitted netlists with a
small evaluator for each format and comparing against the SPP form on
every input assignment.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.export.blif import spp_to_blif
from repro.export.verilog import spp_to_verilog
from repro.minimize.exact import minimize_spp

from tests.conftest import pseudocubes


def _simulate_blif(text: str, assignment: dict[str, int]) -> int:
    """Tiny BLIF interpreter for single-output models with .names."""
    lines = [line for line in text.splitlines() if line and not line.startswith("#")]
    inputs: list[str] = []
    output = ""
    nets = dict(assignment)
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith(".inputs"):
            inputs = line.split()[1:]
        elif line.startswith(".outputs"):
            output = line.split()[1]
        elif line.startswith(".names"):
            signals = line.split()[1:]
            *ins, out = signals
            patterns = []
            i += 1
            while i < len(lines) and not lines[i].startswith("."):
                patterns.append(lines[i].split())
                i += 1
            value = 0
            for pattern in patterns:
                if len(pattern) == 1:  # constant-1 node: "1"
                    value = int(pattern[0])
                    continue
                bits, out_bit = pattern
                assert out_bit == "1"
                if all(
                    b == "-" or int(b) == nets[ins[j]] for j, b in enumerate(bits)
                ):
                    value = 1
                    break
            nets[out] = value
            continue
        i += 1
    assert set(inputs) <= set(assignment)
    return nets[output]


def _simulate_verilog(text: str, assignment: dict[str, int]) -> dict[str, int]:
    """Evaluate `assign out = expr;` lines with Python's eval."""
    results = {}
    for match in re.finditer(r"assign\s+(\w+)\s*=\s*([^;]+);", text):
        name, expr = match.group(1), match.group(2)
        expr = " ".join(expr.split())  # collapse line breaks
        expr = expr.replace("1'b1", "1").replace("1'b0", "0")
        value = eval(expr, {"__builtins__": {}}, dict(assignment))  # noqa: S307
        results[name] = value & 1
    return results


def _names(n):
    return [f"x{i}" for i in range(n)]


class TestBlif:
    @given(st.lists(pseudocubes(min_n=4, max_n=4), min_size=0, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_blif_simulates_to_form(self, pcs):
        form = SppForm(4, tuple(pcs))
        text = spp_to_blif(form)
        for point in range(16):
            assignment = {f"x{i}": (point >> i) & 1 for i in range(4)}
            assert _simulate_blif(text, assignment) == form.evaluate(point)

    def test_constant_one_pseudoproduct(self):
        form = SppForm(3, (Pseudocube.whole_space(3),))
        text = spp_to_blif(form)
        assignment = {f"x{i}": 0 for i in range(3)}
        assert _simulate_blif(text, assignment) == 1

    def test_empty_form_is_constant_zero(self):
        text = spp_to_blif(SppForm(2, ()))
        assert _simulate_blif(text, {"x0": 1, "x1": 1}) == 0

    def test_header_and_names(self):
        form = SppForm(2, (Pseudocube.from_point(2, 3),))
        text = spp_to_blif(form, model="m", input_names=["a", "b"], output_name="y")
        assert ".model m" in text
        assert ".inputs a b" in text
        assert ".outputs y" in text

    def test_bad_input_names(self):
        with pytest.raises(ValueError):
            spp_to_blif(SppForm(2, ()), input_names=["only_one"])

    def test_minimized_function_round_trip(self):
        func = BoolFunc.from_lambda(4, lambda p: p.bit_count() % 2 == 1)
        form = minimize_spp(func).form
        text = spp_to_blif(form)
        for point in range(16):
            assignment = {f"x{i}": (point >> i) & 1 for i in range(4)}
            assert _simulate_blif(text, assignment) == (point.bit_count() % 2)


class TestVerilog:
    @given(st.lists(pseudocubes(min_n=4, max_n=4), min_size=0, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_verilog_simulates_to_form(self, pcs):
        form = SppForm(4, tuple(pcs))
        text = spp_to_verilog({"f": form})
        for point in range(16):
            assignment = {f"x{i}": (point >> i) & 1 for i in range(4)}
            assert _simulate_verilog(text, assignment)["f"] == form.evaluate(point)

    def test_multi_output_module(self):
        a = SppForm(2, (Pseudocube.from_point(2, 0),))
        b = SppForm(2, (Pseudocube.from_points(2, [1, 2]),))
        text = spp_to_verilog({"f": a, "g": b}, module="pair")
        assert "module pair" in text
        values = _simulate_verilog(text, {"x0": 1, "x1": 0})
        assert values == {"f": 0, "g": 1}

    def test_empty_form(self):
        text = spp_to_verilog({"f": SppForm(2, ())})
        assert "1'b0" in text

    def test_mixed_spaces_rejected(self):
        with pytest.raises(ValueError):
            spp_to_verilog({"f": SppForm(2, ()), "g": SppForm(3, ())})

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError):
            spp_to_verilog({})

    def test_bad_input_names(self):
        with pytest.raises(ValueError):
            spp_to_verilog({"f": SppForm(2, ())}, input_names=["a"])
