"""Tests for the interned-basis table: canonicalisation, stable ids,
and the per-basis pivot cache."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import gf2
from repro.kernels.intern import BasisInterner


def _bases(draw_n=5):
    return st.lists(
        st.integers(0, (1 << draw_n) - 1), min_size=0, max_size=4
    ).map(gf2.rref)


class TestIntern:
    def test_returns_first_seen_object(self):
        interner = BasisInterner()
        a = (0b01, 0b10)
        b = (0b01, 0b10)
        assert interner.intern(a) is a
        assert interner.intern(b) is a
        assert len(interner) == 1

    def test_clear(self):
        interner = BasisInterner()
        interner.intern_id((1,))
        interner.pivots((1,))
        interner.clear()
        assert len(interner) == 0
        assert interner.lookup_id((1,)) is None


class TestStableIds:
    def test_ids_are_dense_in_first_seen_order(self):
        interner = BasisInterner()
        assert interner.intern_id((1,)) == 0
        assert interner.intern_id((2,)) == 1
        assert interner.intern_id((1,)) == 0
        assert interner.basis_of(0) == (1,)
        assert interner.basis_of(1) == (2,)
        assert interner.bases() == [(1,), (2,)]

    def test_lookup_id_never_inserts(self):
        interner = BasisInterner()
        assert interner.lookup_id((7,)) is None
        assert len(interner) == 0
        interner.intern((7,))
        assert interner.lookup_id((7,)) == 0

    def test_intern_and_intern_id_share_one_table(self):
        interner = BasisInterner()
        basis = (0b011, 0b100)
        canonical = interner.intern(basis)
        ident = interner.intern_id((0b011, 0b100))
        assert interner.basis_of(ident) is canonical
        assert len(interner) == 1

    @given(st.lists(_bases(), min_size=1, max_size=20))
    def test_id_order_matches_tuple_first_occurrence(self, bases):
        """Iteration orders keyed by id match orders keyed by the
        interned tuple — the property the columnar StructureIndex
        relies on for bucket-order parity."""
        interner = BasisInterner()
        first_seen = list(dict.fromkeys(bases))
        for b in bases:
            interner.intern_id(b)
        assert interner.bases() == first_seen


class TestPivotCache:
    @given(_bases())
    def test_pivots_match_reference(self, basis):
        interner = BasisInterner()
        assert interner.pivots(basis) == tuple(gf2.pivot_of(b) for b in basis)

    def test_pivots_computed_once_per_basis(self):
        interner = BasisInterner()
        basis = (0b0110, 0b1000)
        first = interner.pivots(basis)
        assert interner.pivots((0b0110, 0b1000)) is first
        assert interner.pivots_of(interner.intern_id(basis)) is first
