"""Property tests for the structure-grouped coverage kernels.

The kernels must agree bit for bit with the legacy per-point
enumeration (``pc.points()`` against a row-index dict) on arbitrary
pseudocube sets — including don't-care rows absent from the row list,
degree-0 candidates, and every specialised degree branch (m = 0..4
unrolled, m ≥ 5 doubling span).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget import Budget, Cancelled
from repro.core.pseudocube import Pseudocube
from repro.kernels import (
    BasisInterner,
    build_cube_problem,
    build_problem,
    coverage_masks,
    cube_coverage_masks,
)
from repro.minimize import covering as cov
from repro.minimize.cost import literal_cost
from repro.minimize.eppp import generate_eppp
from repro.minimize.qm import Cube, prime_implicants
from tests.conftest import pseudocubes


def reference_masks(rows, candidates):
    """The legacy construction: one dict probe per candidate point."""
    index = {row: i for i, row in enumerate(rows)}
    masks = []
    for pc in candidates:
        mask = 0
        for p in pc.points():
            pos = index.get(p)
            if pos is not None:
                mask |= 1 << pos
        masks.append(mask)
    return masks


def random_function_rows(rng, n):
    """A random on-set row list (sorted), leaving don't-care holes."""
    space = 1 << n
    size = rng.randint(1, max(1, space // 2))
    return sorted(rng.sample(range(space), size))


class TestCoverageMasks:
    @given(st.lists(pseudocubes(min_n=5, max_n=5), min_size=1, max_size=30),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_point_enumeration(self, cands, seed):
        rng = random.Random(seed)
        rows = random_function_rows(rng, 5)
        assert coverage_masks(rows, cands) == reference_masks(rows, cands)

    @given(st.lists(pseudocubes(min_n=7, max_n=7), min_size=1, max_size=12),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_high_degree_branch(self, cands, seed):
        # n = 7 admits degree 5-7 candidates: the doubling-span path.
        rng = random.Random(seed)
        rows = random_function_rows(rng, 7)
        assert coverage_masks(rows, cands) == reference_masks(rows, cands)

    def test_degree_zero_and_dont_care_rows(self):
        n = 4
        # Rows deliberately exclude points 0 and 5 (don't-cares).
        rows = [1, 2, 3, 7, 9]
        cands = [
            Pseudocube(n, 1, ()),       # present row
            Pseudocube(n, 5, ()),       # absent row: mask must be 0
            Pseudocube(n, 1, (2,)),     # {1, 3}
            Pseudocube(n, 0, (1, 6)),   # {0,1,6,7}: 0 and 6 outside rows
        ]
        assert coverage_masks(rows, cands) == reference_masks(rows, cands)
        assert coverage_masks(rows, cands)[1] == 0

    def test_empty_rows_and_empty_candidates(self):
        pc = Pseudocube(3, 0, (1,))
        assert coverage_masks([], [pc]) == [0]
        assert coverage_masks([0, 1], []) == []

    def test_shared_basis_grouping_matches_singletons(self):
        # Many candidates over one basis (the Theorem 1 group sharing).
        n = 5
        basis = (3, 4)  # pivots 0b001 and 0b100
        cands = [Pseudocube(n, a, basis)
                 for a in range(1 << n) if not (a & 5)]
        rows = list(range(1 << n))
        assert coverage_masks(rows, cands) == reference_masks(rows, cands)


class TestBuildProblem:
    def _generated(self, name="adr3"):
        from repro.bench.suite import get_benchmark

        func = get_benchmark(name)[0]
        generation = generate_eppp(func, max_pseudoproducts=50_000,
                                   on_limit="stop")
        return func, generation.eppps

    def test_identical_to_legacy_build_covering(self):
        func, cands = self._generated()
        rows = sorted(func.on_set)
        legacy = cov.build_covering(
            rows, cands, covered_rows_of=lambda pc: pc.points(),
            cost_of=literal_cost,
        )
        kernel = build_problem(rows, cands, cost_of=literal_cost)
        assert kernel.num_rows == legacy.num_rows
        assert kernel.column_masks == legacy.column_masks
        assert kernel.costs == legacy.costs
        # Payload *identity*, not just equality: covering solutions hand
        # these objects straight to SppForm.
        assert [id(p) for p in kernel.payloads] == [id(p) for p in legacy.payloads]

    def test_custom_cost_callable(self):
        func, cands = self._generated()
        rows = sorted(func.on_set)

        def cost(pc):
            return 2 * pc.num_literals + 1

        legacy = cov.build_covering(
            rows, cands, covered_rows_of=lambda pc: pc.points(), cost_of=cost
        )
        kernel = build_problem(rows, cands, cost_of=cost)
        assert kernel.costs == legacy.costs

    def test_drops_zero_coverage_candidates(self):
        n = 4
        rows = [1, 2]
        cands = [Pseudocube(n, 5, ()), Pseudocube(n, 1, ())]
        problem = build_problem(rows, cands)
        assert problem.num_columns == 1
        assert problem.payloads[0] is cands[1]


class TestCubeKernel:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_point_enumeration(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 7)
        rows = random_function_rows(rng, n)
        cubes = []
        for _ in range(rng.randint(1, 15)):
            mask = rng.randint(0, (1 << n) - 1)
            values = rng.randint(0, (1 << n) - 1) & ~mask
            cubes.append(Cube(values=values, mask=mask))
        index = {row: i for i, row in enumerate(rows)}
        expected = []
        for cube in cubes:
            m = 0
            for p in cube.points():
                pos = index.get(p)
                if pos is not None:
                    m |= 1 << pos
            expected.append(m)
        assert cube_coverage_masks(rows, cubes, n) == expected

    def test_build_cube_problem_matches_legacy(self):
        from repro.bench.suite import get_benchmark

        func = get_benchmark("adr3")[0]
        primes = prime_implicants(func)
        rows = sorted(func.on_set)
        legacy = cov.build_covering(
            rows, primes, covered_rows_of=lambda c: c.points(),
            cost_of=lambda c: max(c.num_literals(func.n), 1),
        )
        kernel = build_cube_problem(
            rows, primes, func.n,
            cost_of=lambda c: max(c.num_literals(func.n), 1),
        )
        assert kernel.column_masks == legacy.column_masks
        assert kernel.costs == legacy.costs
        assert [id(p) for p in kernel.payloads] == [id(p) for p in legacy.payloads]


class TestKernelBudget:
    def test_pre_cancelled_budget_raises(self):
        budget = Budget(tick_every=1)
        budget.cancel()
        rows = list(range(8))
        cands = [Pseudocube(3, a, ()) for a in range(8)]
        with pytest.raises(Cancelled):
            coverage_masks(rows, cands, budget=budget)
        cubes = [Cube(values=0, mask=7)]
        with pytest.raises(Cancelled):
            cube_coverage_masks(rows, cubes, 3, budget=budget)

    def test_ticks_cover_every_candidate(self):
        budget = Budget(tick_every=1)
        rows = list(range(8))
        cands = [Pseudocube(3, a, ()) for a in range(8)]
        cands += [Pseudocube(3, 0, (1,)), Pseudocube(3, 0, (2,))]
        coverage_masks(rows, cands, budget=budget)
        assert budget.ticks >= len(cands)


class TestBasisInterner:
    def test_interns_to_first_seen_object(self):
        interner = BasisInterner()
        a = tuple([1, 2, 4])
        b = tuple([1, 2, 4])
        assert a is not b
        assert interner.intern(a) is a
        assert interner.intern(b) is a
        assert len(interner) == 1
        interner.clear()
        assert len(interner) == 0
        assert interner.intern(b) is b
