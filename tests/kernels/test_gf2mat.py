"""Property tests pinning :mod:`repro.kernels.gf2mat` bit-identical to
the pure-Python :mod:`repro.core.gf2` reference.

Every function in the packed module mirrors a scalar one; these tests
draw random inputs and assert exact equality of outputs (values *and*
orders — the generation front-end relies on first-occurrence insertion
orders surviving the packed rewrite).  The suite skips itself when the
numpy kernels are unavailable (missing numpy or ``REPRO_NO_NUMPY``):
under the CI fallback-parity leg there is nothing to compare against.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gf2
from repro.kernels import gf2mat
from repro.minimize.eppp import _basis_literals

pytestmark = pytest.mark.skipif(
    not gf2mat.AVAILABLE,
    reason="numpy GF(2) kernels disabled (REPRO_NO_NUMPY or no bitwise_count)",
)


@st.composite
def vectors_and_n(draw, max_n=12, max_len=8):
    n = draw(st.integers(1, max_n))
    vs = draw(st.lists(st.integers(0, (1 << n) - 1), max_size=max_len))
    return n, vs


@st.composite
def basis_and_n(draw, max_n=12, max_len=8):
    n, vs = draw(vectors_and_n(max_n=max_n, max_len=max_len))
    return n, gf2.rref(vs)


@st.composite
def uniform_rank_batch(draw):
    """A uniform-rank batch of RREF parents with valid reduced deltas.

    Bases are built constructively (pick pivots, fill free positions
    above each pivot), so every draw is a valid RREF basis and every
    delta is nonzero and zero on the pivot positions — exactly the
    precondition of ``insert_reduced_batch``.
    """
    n = draw(st.integers(2, 12))
    rank = draw(st.integers(0, min(n - 1, 5)))
    batch = draw(st.integers(1, 6))
    parents, deltas = [], []
    for _ in range(batch):
        pivots = sorted(draw(st.sets(st.integers(0, n - 1), min_size=rank, max_size=rank)))
        free = [j for j in range(n) if j not in pivots]
        rows = []
        for p in pivots:
            v = 1 << p
            for f in free:
                if f > p and draw(st.booleans()):
                    v |= 1 << f
            rows.append(v)
        delta = 0
        for f in free:
            if draw(st.booleans()):
                delta |= 1 << f
        if delta == 0:
            delta = 1 << free[0]
        parents.append(tuple(rows))
        deltas.append(delta)
    return n, rank, parents, deltas


class TestSingleBasisParity:
    @given(vectors_and_n())
    def test_rref(self, nv):
        _, vs = nv
        assert gf2mat.rref(vs) == gf2.rref(vs)

    @given(basis_and_n(), st.integers(0, (1 << 12) - 1))
    def test_insert_vector(self, nb, v):
        n, basis = nb
        v &= (1 << n) - 1
        assert gf2mat.insert_vector(basis, v) == gf2.insert_vector(basis, v)

    @given(basis_and_n())
    def test_insert_dependent_returns_same_object(self, nb):
        """The same-object contract callers use as a dependence test."""
        _, basis = nb
        for v in basis:
            assert gf2mat.insert_vector(basis, v) is basis

    @given(basis_and_n(), st.lists(st.integers(0, (1 << 12) - 1), min_size=1, max_size=10))
    def test_reduce_vectors(self, nb, vs):
        n, basis = nb
        vs = [v & ((1 << n) - 1) for v in vs]
        got = gf2mat.reduce_vectors(basis, vs)
        assert got.tolist() == [gf2.reduce_vector(basis, v) for v in vs]

    @given(st.lists(basis_and_n(), min_size=1, max_size=5))
    def test_pivot_masks(self, nbs):
        """Mixed-rank batches zero-padded to one width: padding rows
        must contribute nothing to the masks."""
        bases = [b for _, b in nbs]
        width = max(len(b) for b in bases)
        if width == 0:
            width = 1
        mat = np.zeros((len(bases), width), dtype=np.uint64)
        for r, b in enumerate(bases):
            mat[r, : len(b)] = b
        got = gf2mat.pivot_masks(mat)
        assert got.tolist() == [gf2.pivot_mask(b) for b in bases]

    @given(st.integers(1, 12), st.lists(basis_and_n(max_n=12), min_size=1, max_size=5))
    def test_basis_literals(self, n, nbs):
        """Uniform-rank layout: truncate every basis to the batch's
        minimum rank so the matrix has no padding."""
        rank = min(len(b) for _, b in nbs)
        bases = [b[:rank] for _, b in nbs]
        mat = np.array([list(b) for b in bases], dtype=np.uint64).reshape(len(bases), rank)
        got = gf2mat.basis_literals(mat, n)
        assert got.tolist() == [_basis_literals(n, b) for b in bases]

    @given(basis_and_n(max_n=8, max_len=6), st.integers(0, 255))
    def test_span_points_gray_order(self, nb, offset):
        n, basis = nb
        offset &= (1 << n) - 1
        got = gf2mat.span_points(basis, offset)
        assert got.tolist() == list(gf2.span_points(basis, offset))

    @given(basis_and_n(max_n=10), basis_and_n(max_n=10))
    def test_intersect_spaces(self, na, nb):
        n = max(na[0], nb[0])
        assert gf2mat.intersect_spaces(na[1], nb[1], n) == gf2.intersect_spaces(
            na[1], nb[1], n
        )

    @given(vectors_and_n())
    def test_pack_unpack_roundtrip(self, nv):
        _, vs = nv
        assert gf2mat.unpack_vectors(gf2mat.pack_vectors(vs)) == list(vs)


class TestBatchKernels:
    @settings(max_examples=60)
    @given(uniform_rank_batch())
    def test_insert_reduced_batch(self, nb):
        """Row ``i`` of the batched insert equals the scalar
        ``gf2.insert_vector(parent_i, delta_i)`` exactly."""
        n, rank, parents, deltas = nb
        for b in parents:
            assert gf2.is_rref(b)
        mat = np.array([list(b) for b in parents], dtype=np.uint64).reshape(
            len(parents), rank
        )
        out = gf2mat.insert_reduced_batch(mat, np.array(deltas, dtype=np.uint64))
        assert out.shape == (len(parents), rank + 1)
        for row, basis, delta in zip(out, parents, deltas):
            assert tuple(int(v) for v in row.tolist()) == gf2.insert_vector(basis, delta)

    @given(
        st.lists(st.integers(0, 8), max_size=6),
        st.one_of(st.none(), st.integers(0, 40)),
    )
    def test_pair_split_matches_nested_loops(self, sizes, limit):
        expected = [
            (g, i, j)
            for g, size in enumerate(sizes)
            for i in range(size)
            for j in range(i + 1, size)
        ]
        if limit is not None:
            expected = expected[:limit]
        group, i, j = gf2mat.pair_split(np.array(sizes, dtype=np.int64), limit)
        assert list(zip(group.tolist(), i.tolist(), j.tolist())) == expected

    def test_pair_split_memo_returns_consistent_streams(self):
        sizes = np.array([3, 5, 2], dtype=np.int64)
        first = gf2mat.pair_split(sizes, None)
        again = gf2mat.pair_split(sizes.copy(), None)
        for a, b in zip(first, again):
            assert a.tolist() == b.tolist()


class TestUniqueHelpers:
    @given(
        st.lists(st.integers(0, 40), min_size=1, max_size=60),
        st.booleans(),
    )
    def test_unique_sorted_first(self, vals, narrow):
        """Both the radix (narrow) and quicksort (wide) branches must
        agree with ``np.unique(..., return_index=True)`` — first
        occurrence per distinct key."""
        keys = np.array(vals, dtype=np.uint64)
        maxval = 64 if narrow else (1 << 40)
        uniq, first = gf2mat.unique_sorted_first(keys, maxval)
        want_u, want_first = np.unique(keys, return_index=True)
        assert uniq.tolist() == want_u.tolist()
        assert first.tolist() == want_first.tolist()

    @given(
        st.lists(st.integers(0, 40), min_size=1, max_size=60),
        st.booleans(),
    )
    def test_unique_with_inverse(self, vals, narrow):
        keys = np.array(vals, dtype=np.uint64)
        maxval = 64 if narrow else (1 << 40)
        uniq, inv = gf2mat.unique_with_inverse(keys, maxval)
        want_u, want_inv = np.unique(keys, return_inverse=True)
        assert uniq.tolist() == want_u.tolist()
        assert inv.tolist() == want_inv.reshape(-1).tolist()
