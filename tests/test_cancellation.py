"""Cancellation responsiveness: every instrumented algorithm stops fast.

The cooperative-budget contract is that each minimization inner loop
ticks its budget often enough that a cancellation (or a tick cap) lands
within a bounded amount of further work.  These tests drive every
instrumented entry point two ways:

* a **pre-cancelled** token must surface :class:`Cancelled` within one
  ``tick_every`` window of work (here ``tick_every=1``, so immediately
  at the first tick);
* a tight **tick cap** must surface ``BudgetExceeded(reason="ticks")``,
  proving the loop actually ticks proportionally to its work (an
  uninstrumented loop would run to completion and never notice).

Plus a live-thread test: cancelling from another thread mid-run returns
within a wall-clock bound far below the job's natural runtime.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.errors import BudgetExceeded, Cancelled
from repro.minimize import covering as cov
from repro.minimize.bounded import minimize_spp_bounded
from repro.minimize.eppp import generate_eppp
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.trie.partition_trie import PartitionTrie


def _dense_func(n: int = 7) -> BoolFunc:
    """A function with enough on-points that every algorithm loops a lot."""
    return BoolFunc.from_lambda(n, lambda p: bin(p).count("1") % 3 != 0)


def _cancelled_budget() -> Budget:
    budget = Budget(tick_every=1)
    budget.cancel("test")
    return budget


def _capped_budget(ticks: int = 64) -> Budget:
    return Budget(max_ticks=ticks, tick_every=1)


ALGORITHMS = {
    "exact": lambda f, b: minimize_spp(f, budget=b),
    "bounded": lambda f, b: minimize_spp_bounded(f, 2, budget=b),
    "heuristic-k1": lambda f, b: minimize_spp_k(f, 1, budget=b),
    "sp": lambda f, b: minimize_sp(f, budget=b),
    "eppp": lambda f, b: generate_eppp(f, budget=b),
    "covering-greedy": lambda f, b: _solve_covering(f, "greedy", b),
    "covering-exact": lambda f, b: _solve_covering(f, "exact", b),
    "trie-groups": lambda f, b: _walk_trie(f, b),
}


def _solve_covering(func: BoolFunc, mode: str, budget: Budget):
    from repro.minimize.qm import prime_implicants

    primes = prime_implicants(func)
    problem = cov.build_covering(
        sorted(func.on_set),
        primes,
        covered_rows_of=lambda c: c.points(),
        cost_of=lambda c: max(c.num_literals(func.n), 1),
    )
    return cov.solve(problem, mode=mode, budget=budget)


def _walk_trie(func: BoolFunc, budget: Budget):
    from repro.core.pseudocube import Pseudocube

    # Two-point pseudocubes with varied offsets produce many distinct
    # structures, so the trie walk visits plenty of interior nodes.
    space = 1 << func.n
    trie = PartitionTrie()
    for p in sorted(func.care_set):
        offset = 1 + (p % (space - 1))
        trie.insert(Pseudocube.from_points(func.n, [p, p ^ offset]))
    return list(trie.groups(budget=budget))


class TestPreCancelled:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_raises_cancelled_immediately(self, name):
        func = _dense_func()
        with pytest.raises(Cancelled):
            ALGORITHMS[name](func, _cancelled_budget())


class TestTickCap:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_tick_cap_fires(self, name):
        # A cap far below the work of a 7-variable dense function must
        # trip — if an algorithm never ticks, it completes and fails.
        func = _dense_func()
        budget = _capped_budget(64)
        with pytest.raises(BudgetExceeded) as info:
            ALGORITHMS[name](func, budget)
        assert info.value.reason == "ticks"
        # Responsiveness bound: with tick_every=1 the overshoot past
        # the cap is at most one bulk-tick batch (one inner-loop row).
        assert budget.ticks < 64 + 2 ** func.n


class TestLiveCancellation:
    def test_cancel_mid_run_returns_quickly(self):
        # minimize_spp on 8 dense variables runs far longer than the
        # bound asserted here; a cancel from another thread must cut it
        # short.  Exercises the full exact pipeline's tick plumbing.
        func = _dense_func(8)
        budget = Budget()
        outcome: list[str] = []

        def worker():
            try:
                minimize_spp(func, budget=budget)
                outcome.append("finished")
            except Cancelled:
                outcome.append("cancelled")
            except BudgetExceeded:  # pragma: no cover — wrong flavour
                outcome.append("budget")

        thread = threading.Thread(target=worker)
        t0 = time.monotonic()
        thread.start()
        time.sleep(0.05)
        budget.cancel("mid-run")
        thread.join(timeout=5.0)
        elapsed = time.monotonic() - t0
        assert not thread.is_alive()
        assert outcome == ["cancelled"]
        assert elapsed < 5.0
