"""Tests for the degradation ladder and rung execution."""

import pytest

from repro.bench.suite import get_benchmark
from repro.engine.job import Job
from repro.engine.ladder import execute_rung, ladder_for
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.serialize import form_from_dict
from repro.verify import assert_equivalent


@pytest.fixture(scope="module")
def adr2_out1():
    return get_benchmark("adr2")[1]


class TestLadderShape:
    def test_exact_ladder(self, adr2_out1):
        names = [r.name for r in ladder_for(Job(adr2_out1, method="exact"))]
        assert names == ["exact", "bounded-2", "heuristic-k0", "sp"]

    def test_bounded_ladder(self, adr2_out1):
        names = [r.name for r in ladder_for(Job(adr2_out1, method="bounded", bound=3))]
        assert names == ["bounded-3", "heuristic-k0", "sp"]

    def test_heuristic_ladder_skips_duplicate_k0(self, adr2_out1):
        names = [r.name for r in ladder_for(Job(adr2_out1, method="heuristic", k=0))]
        assert names == ["heuristic-k0", "sp"]
        names = [r.name for r in ladder_for(Job(adr2_out1, method="heuristic", k=2))]
        assert names == ["heuristic-k2", "heuristic-k0", "sp"]

    def test_sp_ladder_is_just_sp(self, adr2_out1):
        assert [r.name for r in ladder_for(Job(adr2_out1, method="sp"))] == ["sp"]

    def test_exact_budget_propagates_to_rung(self, adr2_out1):
        rung = ladder_for(Job(adr2_out1, method="exact", max_pseudoproducts=99))[0]
        assert rung.params["max_pseudoproducts"] == 99
        # And an uncapped job still gets a memory-safety default cap.
        rung = ladder_for(Job(adr2_out1, method="exact"))[0]
        assert rung.params["max_pseudoproducts"] is not None


class TestExecuteRung:
    def test_exact_rung_matches_direct_minimize(self, adr2_out1):
        job = Job(adr2_out1, method="exact", label="adr2[1]")
        record = execute_rung(job, ladder_for(job)[0])
        assert record["rung"] == "exact"
        assert record["literals"] == minimize_spp(adr2_out1).num_literals
        assert record["job"]["hash"] == job.content_hash
        assert not record["truncated"]

    def test_heuristic_rung_matches_direct(self, adr2_out1):
        job = Job(adr2_out1, method="heuristic", k=1)
        record = execute_rung(job, ladder_for(job)[0])
        assert record["rung"] == "heuristic-k1"
        assert record["literals"] == minimize_spp_k(adr2_out1, 1).num_literals

    def test_sp_rung_records_primes(self, adr2_out1):
        job = Job(adr2_out1, method="sp")
        record = execute_rung(job, ladder_for(job)[0])
        sp = minimize_sp(adr2_out1)
        assert record["literals"] == sp.num_literals
        assert record["extras"]["num_primes"] == sp.num_primes
        assert record["optimal"] is False

    def test_form_round_trips_and_verifies(self, adr2_out1):
        job = Job(adr2_out1, method="exact")
        record = execute_rung(job, ladder_for(job)[0])
        form = form_from_dict(record["form"])
        assert_equivalent(form, adr2_out1)

    def test_truncated_generation_is_flagged_non_optimal(self):
        fo = get_benchmark("adr3")[2]
        job = Job(fo, method="exact", max_pseudoproducts=50)
        record = execute_rung(job, ladder_for(job)[0])
        assert record["truncated"]
        assert record["optimal"] is False
        # Still a verified cover.
        assert_equivalent(form_from_dict(record["form"]), fo)
