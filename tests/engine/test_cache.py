"""Tests for the two-tier result cache."""

from repro.boolfunc.function import BoolFunc
from repro.engine.cache import ResultCache
from repro.engine.job import _SOLVER_VERSION
from repro.integrity import VERIFIED_FULL, make_certificate
from repro.minimize.exact import minimize_spp
from repro.serialize import form_to_dict


def _record(i):
    return {"kind": "engine_record", "literals": i}


_FUNC = BoolFunc(3, frozenset({0, 3, 5, 6}))
_FORM = minimize_spp(_FUNC).form


def _verified_record(salt=_SOLVER_VERSION):
    cert = make_certificate(
        _FUNC, _FORM, solver_salt=salt, verified=VERIFIED_FULL
    )
    return {
        "kind": "engine_record",
        "literals": _FORM.num_literals,
        "form": form_to_dict(_FORM),
        "integrity": cert,
    }


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, _record(1))
        assert cache.get("a" * 64) == _record(1)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", _record(1))
        cache.put("k2", _record(2))
        cache.get("k1")  # k1 becomes most-recent; k2 is now the LRU
        cache.put("k3", _record(3))
        assert cache.stats.evictions == 1
        assert "k2" not in cache
        assert "k1" in cache and "k3" in cache

    def test_len_tracks_entries(self):
        cache = ResultCache(max_entries=8)
        for i in range(5):
            cache.put(f"k{i}", _record(i))
        assert len(cache) == 5


class TestEvictionAccounting:
    def test_overwrite_same_key_does_not_evict(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", _record(1))
        cache.put("k1", _record(2))
        assert cache.stats.evictions == 0
        assert len(cache) == 1
        assert cache.get("k1") == _record(2)

    def test_eviction_count_matches_overflow(self):
        cache = ResultCache(max_entries=3)
        for i in range(10):
            cache.put(f"k{i}", _record(i))
        assert len(cache) == 3
        assert cache.stats.stores == 10
        assert cache.stats.evictions == 7  # exactly the overflow

    def test_disk_promotion_can_evict_and_is_counted(self, tmp_path):
        cache = ResultCache(max_entries=1, cache_dir=tmp_path)
        cache.put("k1" * 32, _record(1))
        cache.put("k2" * 32, _record(2))  # evicts k1 from memory
        cache.get("k1" * 32)  # disk hit, promoted: evicts k2
        assert cache.stats.evictions == 2
        assert len(cache) == 1


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(cache_dir=tmp_path)
        first.put("ab" * 32, _record(7))
        assert first.path_for("ab" * 32).is_file()

        second = ResultCache(cache_dir=tmp_path)
        assert second.get("ab" * 32) == _record(7)
        assert second.stats.disk_hits == 1
        assert second.stats.total_hits == 1
        # Promoted into the LRU: the next get is a memory hit.
        assert second.get("ab" * 32) == _record(7)
        assert second.stats.hits == 1

    def test_eviction_does_not_remove_disk_entry(self, tmp_path):
        cache = ResultCache(max_entries=1, cache_dir=tmp_path)
        cache.put("k1" * 32, _record(1))
        cache.put("k2" * 32, _record(2))  # evicts k1 from memory
        assert cache.stats.evictions == 1
        assert cache.get("k1" * 32) == _record(1)  # served from disk
        assert cache.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        path = cache.path_for("cd" * 32)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="ascii")
        assert cache.get("cd" * 32) is None
        assert cache.stats.misses == 1

    def test_two_level_fanout_layout(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "fe" * 32
        cache.put(key, _record(1))
        assert (tmp_path / "objects" / "fe" / f"{key}.json").is_file()


class TestQuarantine:
    def test_undecodable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "cd" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="ascii")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # moved aside, not left to fail again
        assert [p.name for p in cache.quarantine_dir.iterdir()] == [path.name]
        assert "1 corrupt quarantined" in cache.stats.summary()

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "ef" * 32
        cache.put(key, _record(5))
        path = cache.path_for(key)
        # Flip the payload underneath the checksum envelope.
        path.write_text(
            path.read_text(encoding="ascii").replace(
                '"literals":5', '"literals":6'
            ),
            encoding="ascii",
        )
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt == 1

    def test_recompute_overwrites_after_quarantine(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "ab" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="ascii")
        assert cache.get(key) is None
        cache.put(key, _record(1))  # the recompute lands cleanly
        assert ResultCache(cache_dir=tmp_path).get(key) == _record(1)


class TestDiskPruning:
    def _fill(self, cache, count, start=0):
        import os
        import time

        for i in range(start, start + count):
            key = format(i, "x").rjust(64, "0")
            cache.put(key, _record(i))
            # Distinct mtimes so "oldest" is well-defined even on
            # coarse-timestamp filesystems.
            stamp = time.time() - (1000 - i)
            os.utime(cache.path_for(key), (stamp, stamp))

    def test_prune_disk_enforces_cap_oldest_first(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path, max_disk_entries=4)
        self._fill(cache, 10)
        removed = cache.prune_disk()
        assert removed == 6
        assert cache.stats.disk_evictions == 6
        survivors = sorted(p.stem for p in cache.disk_entries())
        expected = sorted(format(i, "x").rjust(64, "0") for i in range(6, 10))
        assert survivors == expected
        # Survivors still load cleanly from a fresh process's view.
        fresh = ResultCache(max_entries=1, cache_dir=tmp_path)
        assert fresh.get(expected[-1]) == _record(9)

    def test_prune_noop_under_cap(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path, max_disk_entries=100)
        self._fill(cache, 5)
        assert cache.prune_disk() == 0
        assert len(cache.disk_entries()) == 5

    def test_put_triggers_periodic_prune(self, tmp_path, monkeypatch):
        monkeypatch.setattr(ResultCache, "_PRUNE_EVERY", 8)
        cache = ResultCache(cache_dir=tmp_path, max_disk_entries=3)
        self._fill(cache, 8)  # 8th store crosses the cadence
        assert len(cache.disk_entries()) <= 3
        assert cache.stats.disk_evictions >= 5

    def test_prune_skips_when_lock_busy(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path, max_disk_entries=2)
        self._fill(cache, 6)
        holder = cache.maintenance_lock()
        holder.acquire()
        try:
            assert cache.prune_disk() == 0  # best-effort: skipped, not stuck
            assert len(cache.disk_entries()) == 6
        finally:
            holder.release()
        assert cache.prune_disk() == 4

    def test_shared_dir_between_instances(self, tmp_path):
        """Two caches over one dir: stores visible, prunes coordinated."""
        writer = ResultCache(cache_dir=tmp_path, max_disk_entries=4)
        reader = ResultCache(max_entries=1, cache_dir=tmp_path,
                             max_disk_entries=4)
        self._fill(writer, 6)
        key = format(5, "x").rjust(64, "0")
        assert reader.get(key) == _record(5)
        assert reader.stats.disk_hits == 1
        writer.prune_disk()
        assert len(reader.disk_entries()) == 4

    def test_invalid_cap_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            ResultCache(cache_dir=tmp_path, max_disk_entries=0)


class TestVerifyOnRead:
    KEY = "ab" * 32

    def _disk_cache(self, tmp_path, record, **kwargs):
        """A cache whose memory tier is cold but whose disk holds ``record``."""
        writer = ResultCache(cache_dir=tmp_path)
        writer.put(self.KEY, record)
        return ResultCache(cache_dir=tmp_path, **kwargs)

    def test_sampled_audit_cadence(self, tmp_path):
        cache = self._disk_cache(tmp_path, _verified_record(), audit_rate=2,
                                 max_entries=1)
        for _ in range(4):
            assert cache.get(self.KEY, func=_FUNC) is not None
            cache.put("ff" * 32, _record(0))  # evict KEY from memory
        assert cache.stats.audited == 2  # every 2nd disk load

    def test_audit_disabled_at_rate_zero(self, tmp_path):
        cache = self._disk_cache(tmp_path, _verified_record(), audit_rate=0)
        assert cache.get(self.KEY, func=_FUNC) is not None
        assert cache.stats.audited == 0

    def test_stale_salt_always_audited(self, tmp_path):
        record = _verified_record(salt="some-older-solver")
        cache = self._disk_cache(tmp_path, record, audit_rate=0)
        got = cache.get(self.KEY, func=_FUNC)
        assert got is not None  # still a valid cover: audited, kept
        assert cache.stats.audited == 1
        assert cache.stats.audit_mismatches == 0

    def test_previous_generation_salt_is_stale(self, tmp_path):
        """Records written by earlier builds (salts ``mincov-2`` and
        ``genkernels-3``) must be treated as salt-stale under
        ``delta-4``: always re-audited on read, never served on the
        producer's word alone."""
        assert _SOLVER_VERSION == "delta-4"
        for stale_salt in ("mincov-2", "genkernels-3"):
            cache_dir = tmp_path / stale_salt
            record = _verified_record(salt=stale_salt)
            cache = self._disk_cache(cache_dir, record, audit_rate=0)
            got = cache.get(self.KEY, func=_FUNC)
            assert got is not None  # the form still covers: audited, kept
            assert cache.stats.audited == 1
            # The envelope keeps the producer's salt (provenance is never
            # rewritten), so every *disk* read of an old-build record
            # stays forced through the audit.
            assert got["integrity"]["solver_salt"] == stale_salt
            fresh = ResultCache(cache_dir=cache_dir, audit_rate=0)
            assert fresh.get(self.KEY, func=_FUNC) is not None
            assert fresh.stats.audited == 1

    def test_missing_envelope_always_audited(self, tmp_path):
        record = _verified_record()
        del record["integrity"]
        cache = self._disk_cache(tmp_path, record, audit_rate=0)
        assert cache.get(self.KEY, func=_FUNC) is not None
        assert cache.stats.audited == 1

    def test_no_func_no_audit(self, tmp_path):
        cache = self._disk_cache(tmp_path, _verified_record(), audit_rate=1)
        assert cache.get(self.KEY) is not None
        assert cache.stats.audited == 0

    def test_mismatch_quarantines_and_misses(self, tmp_path):
        record = _verified_record()
        record["literals"] += 1  # lie about the cost
        cache = self._disk_cache(tmp_path, record, audit_rate=1)
        assert cache.get(self.KEY, func=_FUNC) is None
        assert cache.stats.audit_mismatches == 1
        assert cache.stats.corrupt == 1
        assert list(cache.quarantine_dir.iterdir())

    def test_quarantine_key_purges_both_tiers(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(self.KEY, _verified_record())
        cache.quarantine_key(self.KEY)
        assert cache.get(self.KEY) is None
        assert list(cache.quarantine_dir.iterdir())

    def test_audit_counters_in_summary(self, tmp_path):
        record = _verified_record()
        record["literals"] += 1
        cache = self._disk_cache(tmp_path, record, audit_rate=1)
        cache.get(self.KEY, func=_FUNC)
        assert "audit" in cache.stats.summary()
