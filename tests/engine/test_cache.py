"""Tests for the two-tier result cache."""

from repro.engine.cache import ResultCache


def _record(i):
    return {"kind": "engine_record", "literals": i}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, _record(1))
        assert cache.get("a" * 64) == _record(1)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", _record(1))
        cache.put("k2", _record(2))
        cache.get("k1")  # k1 becomes most-recent; k2 is now the LRU
        cache.put("k3", _record(3))
        assert cache.stats.evictions == 1
        assert "k2" not in cache
        assert "k1" in cache and "k3" in cache

    def test_len_tracks_entries(self):
        cache = ResultCache(max_entries=8)
        for i in range(5):
            cache.put(f"k{i}", _record(i))
        assert len(cache) == 5


class TestEvictionAccounting:
    def test_overwrite_same_key_does_not_evict(self):
        cache = ResultCache(max_entries=2)
        cache.put("k1", _record(1))
        cache.put("k1", _record(2))
        assert cache.stats.evictions == 0
        assert len(cache) == 1
        assert cache.get("k1") == _record(2)

    def test_eviction_count_matches_overflow(self):
        cache = ResultCache(max_entries=3)
        for i in range(10):
            cache.put(f"k{i}", _record(i))
        assert len(cache) == 3
        assert cache.stats.stores == 10
        assert cache.stats.evictions == 7  # exactly the overflow

    def test_disk_promotion_can_evict_and_is_counted(self, tmp_path):
        cache = ResultCache(max_entries=1, cache_dir=tmp_path)
        cache.put("k1" * 32, _record(1))
        cache.put("k2" * 32, _record(2))  # evicts k1 from memory
        cache.get("k1" * 32)  # disk hit, promoted: evicts k2
        assert cache.stats.evictions == 2
        assert len(cache) == 1


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(cache_dir=tmp_path)
        first.put("ab" * 32, _record(7))
        assert first.path_for("ab" * 32).is_file()

        second = ResultCache(cache_dir=tmp_path)
        assert second.get("ab" * 32) == _record(7)
        assert second.stats.disk_hits == 1
        assert second.stats.total_hits == 1
        # Promoted into the LRU: the next get is a memory hit.
        assert second.get("ab" * 32) == _record(7)
        assert second.stats.hits == 1

    def test_eviction_does_not_remove_disk_entry(self, tmp_path):
        cache = ResultCache(max_entries=1, cache_dir=tmp_path)
        cache.put("k1" * 32, _record(1))
        cache.put("k2" * 32, _record(2))  # evicts k1 from memory
        assert cache.stats.evictions == 1
        assert cache.get("k1" * 32) == _record(1)  # served from disk
        assert cache.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        path = cache.path_for("cd" * 32)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="ascii")
        assert cache.get("cd" * 32) is None
        assert cache.stats.misses == 1

    def test_two_level_fanout_layout(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "fe" * 32
        cache.put(key, _record(1))
        assert (tmp_path / "objects" / "fe" / f"{key}.json").is_file()


class TestQuarantine:
    def test_undecodable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "cd" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="ascii")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # moved aside, not left to fail again
        assert [p.name for p in cache.quarantine_dir.iterdir()] == [path.name]
        assert "1 corrupt quarantined" in cache.stats.summary()

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "ef" * 32
        cache.put(key, _record(5))
        path = cache.path_for(key)
        # Flip the payload underneath the checksum envelope.
        path.write_text(
            path.read_text(encoding="ascii").replace(
                '"literals":5', '"literals":6'
            ),
            encoding="ascii",
        )
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt == 1

    def test_recompute_overwrites_after_quarantine(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        key = "ab" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="ascii")
        assert cache.get(key) is None
        cache.put(key, _record(1))  # the recompute lands cleanly
        assert ResultCache(cache_dir=tmp_path).get(key) == _record(1)
