"""Tests for the batch scheduler: parallelism, deadlines, degradation."""

import os

import pytest

from repro.bench.suite import get_benchmark
from repro.engine import (
    DeadlineExceeded,
    Job,
    Manifest,
    ResultCache,
    parallel_map,
    run_batch,
)
from repro.engine.scheduler import _deadline
from repro.minimize.exact import minimize_spp


def _jobs(*names, method="exact"):
    jobs = []
    for name in names:
        func = get_benchmark(name)
        for o, fo in enumerate(func.outputs):
            if fo.on_set:
                jobs.append(Job(fo, method=method, label=f"{name}[{o}]"))
    return jobs


class TestDeadlineContext:
    def test_no_deadline_is_noop(self):
        with _deadline(None):
            pass
        with _deadline(0):
            pass

    def test_deadline_fires(self):
        with pytest.raises(DeadlineExceeded):
            with _deadline(0.02):
                while True:
                    pass

    def test_deadline_cleared_after_exit(self):
        import time

        with _deadline(0.05):
            pass
        time.sleep(0.08)  # would raise if the timer leaked

    def test_noop_off_main_thread(self):
        # SIGALRM handlers can only be installed from the main thread;
        # elsewhere the context must degrade to a no-op, not blow up.
        # Off-main-thread deadline *enforcement* is the cooperative
        # budget's job now — see TestBudgetIntegration below.
        import threading
        import time

        failures = []

        def body():
            try:
                with _deadline(0.01):
                    time.sleep(0.05)  # would exceed the deadline
            except BaseException as exc:  # noqa: BLE001 — recording, not hiding
                failures.append(exc)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert failures == []


class TestInlineBatch:
    def test_matches_sequential_minimize(self):
        jobs = _jobs("adr2", "adr3")
        assert len(jobs) >= 4
        result = run_batch(jobs, workers=0)
        assert result.ok
        for outcome in result:
            assert outcome.rung == "exact"
            assert not outcome.degraded
            assert outcome.literals == minimize_spp(outcome.job.func).num_literals

    def test_outcomes_preserve_job_order(self):
        jobs = _jobs("adr2")
        result = run_batch(jobs, workers=0)
        assert [o.job.label for o in result] == [j.label for j in jobs]

    def test_duplicate_jobs_computed_once(self):
        job = _jobs("adr2")[0]
        twin = Job(job.func, method=job.method, label="twin")
        cache = ResultCache()
        result = run_batch([job, twin], workers=0, cache=cache)
        assert result.ok
        sources = [o.source for o in result]
        assert sources == ["computed", "cache"]
        assert result.outcomes[0].literals == result.outcomes[1].literals

    def test_followers_are_handed_the_record_directly(self):
        # The follower gets the resolved record, not a cache.get():
        # distinct keys miss once each on the initial lookup and nothing
        # else touches the stats (a re-fetch used to add phantom hits).
        job = _jobs("adr2")[0]
        twin = Job(job.func, method=job.method, label="twin")
        cache = ResultCache()
        result = run_batch([job, twin], workers=0, cache=cache)
        assert result.ok
        assert [o.source for o in result] == ["computed", "cache"]
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_follower_survives_eviction_of_the_record(self):
        # With an LRU too small to retain the record, a follower that
        # re-fetched through the cache would spuriously fail; handing
        # the record over directly is immune to the eviction race.
        jobs = _jobs("adr2")[:2]
        twin = Job(jobs[0].func, method=jobs[0].method, label="twin")
        cache = ResultCache(max_entries=1)
        result = run_batch([*jobs, twin], workers=0, cache=cache)
        assert result.ok
        assert result.outcomes[2].source == "cache"
        assert result.outcomes[2].literals == result.outcomes[0].literals


class TestPooledBatch:
    def test_pooled_matches_sequential(self):
        jobs = _jobs("adr2", "adr3")
        result = run_batch(jobs, workers=4)
        assert result.ok
        for outcome in result:
            assert outcome.literals == minimize_spp(outcome.job.func).num_literals

    def test_progress_callback_sees_every_job(self):
        seen = []
        result = run_batch(_jobs("adr2"), workers=2, progress=lambda o: seen.append(o))
        assert len(seen) == len(result)


class TestCacheIntegration:
    def test_second_batch_hits_cache_per_job(self, tmp_path):
        jobs = _jobs("adr2", "adr3")
        cache = ResultCache(cache_dir=tmp_path)
        first = run_batch(jobs, workers=0, cache=cache)
        assert first.ok and all(o.source == "computed" for o in first)

        fresh = ResultCache(cache_dir=tmp_path)  # cold memory, warm disk
        second = run_batch(jobs, workers=0, cache=fresh)
        assert all(o.source == "cache" for o in second)
        assert fresh.stats.total_hits >= len(jobs)  # >= 1 hit per job
        assert [o.literals for o in second] == [o.literals for o in first]


# An alarm that fires while the interpreter is inside a frame whose
# exceptions are discarded (e.g. hypothesis's gc callback) is reported
# as "unraisable"; the deadline still lands via the timer's re-fire
# interval, so the stray report is expected noise here.
@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
class TestDegradation:
    def test_tiny_deadline_walks_the_ladder(self):
        life = get_benchmark("life")[0]
        result = run_batch(
            [Job(life, method="exact", label="life[0]")], workers=0, timeout=0.02
        )
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.degraded
        assert outcome.rung != "exact"
        assert outcome.record["optimal"] is False
        rungs_tried = [a["rung"] for a in outcome.attempts]
        assert rungs_tried[0] == "exact"
        assert all(a["status"] == "timeout" for a in outcome.attempts)

    def test_degraded_record_lands_in_manifest(self, tmp_path):
        life = get_benchmark("life")[0]
        manifest = Manifest(tmp_path)
        result = run_batch(
            [Job(life, method="exact", label="life[0]")],
            workers=0,
            timeout=0.02,
            manifest=manifest,
        )
        stored = manifest.load(result.outcomes[0].job.content_hash)
        assert stored is not None
        assert stored["rung"] == result.outcomes[0].rung
        assert stored["degraded"] is True
        assert stored["attempts"]

    def test_generous_deadline_stays_on_top_rung(self):
        result = run_batch(_jobs("adr2"), workers=0, timeout=60.0)
        assert all(o.rung == "exact" for o in result)


class TestResume:
    def test_resume_skips_completed_hashes(self, tmp_path):
        jobs = _jobs("adr2")
        manifest = Manifest(tmp_path)
        first = run_batch(jobs, workers=0, manifest=manifest)
        assert first.ok
        assert manifest.completed_keys() == {j.content_hash for j in jobs}

        resumed = run_batch(jobs, workers=0, manifest=manifest, resume=True)
        assert all(o.source == "manifest" for o in resumed)
        assert [o.literals for o in resumed] == [o.literals for o in first]

    def test_partial_manifest_computes_only_the_rest(self, tmp_path):
        jobs = _jobs("adr2")
        manifest = Manifest(tmp_path)
        run_batch(jobs[:1], workers=0, manifest=manifest)

        resumed = run_batch(jobs, workers=0, manifest=manifest, resume=True)
        assert resumed.outcomes[0].source == "manifest"
        assert all(o.source == "computed" for o in resumed.outcomes[1:])

    def test_without_resume_manifest_is_write_only(self, tmp_path):
        jobs = _jobs("adr2")[:1]
        manifest = Manifest(tmp_path)
        run_batch(jobs, workers=0, manifest=manifest)
        again = run_batch(jobs, workers=0, manifest=manifest, resume=False)
        assert again.outcomes[0].source == "computed"


class TestBudgetIntegration:
    def test_deadline_enforced_off_main_thread(self):
        # The regression the budget work exists for: _deadline/SIGALRM
        # is a silent no-op off the main thread, so an inline run from
        # a worker thread (a `repro serve` request handler) used to run
        # a worst-case exact job to completion.  With a cooperative
        # 200ms budget it must come back in well under a second with a
        # structured cancelled/budget outcome.
        import threading
        import time

        from repro.boolfunc.function import BoolFunc
        from repro.budget import Budget

        hard = BoolFunc.from_lambda(8, lambda p: bin(p).count("1") % 3 != 0)
        job = Job(hard, method="exact", label="hard")
        results = []

        def body():
            budget = Budget(seconds=0.2)
            results.append(run_batch([job], workers=0, budget=budget))

        thread = threading.Thread(target=body)
        t0 = time.monotonic()
        thread.start()
        thread.join(timeout=10.0)
        elapsed = time.monotonic() - t0
        assert not thread.is_alive()
        assert elapsed < 1.0
        outcome = results[0].outcomes[0]
        assert not outcome.ok
        assert outcome.source == "cancelled"
        assert outcome.attempts  # the rung attempt or termination is logged

    def test_expired_budget_cancels_every_job_inline(self):
        from repro.budget import Budget

        budget = Budget(seconds=0.0001)
        while not budget.expired():
            pass
        result = run_batch(_jobs("adr2", "adr3"), workers=0, budget=budget)
        assert not result.ok
        assert all(o.source == "cancelled" for o in result)
        assert result.counts()["cancelled"] == len(result)

    def test_cancel_token_terminates_with_reason(self):
        from repro.budget import Budget

        budget = Budget()
        budget.cancel("client hung up")
        result = run_batch(_jobs("adr2"), workers=0, budget=budget)
        assert all(o.source == "cancelled" for o in result)
        messages = [a.get("message", "") for o in result for a in o.attempts]
        assert any("client hung up" in m for m in messages)

    def test_pooled_budget_terminates_coarsely(self):
        from repro.budget import Budget

        budget = Budget()
        budget.cancel("drain")
        result = run_batch(_jobs("adr2", "adr3"), workers=2, budget=budget)
        assert all(o.source == "cancelled" for o in result)

    def test_generous_budget_changes_nothing(self):
        from repro.budget import Budget

        with_budget = run_batch(
            _jobs("adr2"), workers=0, budget=Budget(seconds=120)
        )
        without = run_batch(_jobs("adr2"), workers=0)
        assert with_budget.ok and without.ok
        assert [o.literals for o in with_budget] == [o.literals for o in without]


class TestRungGate:
    def test_gated_rung_is_skipped_and_recorded(self):
        gated = {"exact"}
        result = run_batch(
            _jobs("adr2")[:1],
            workers=0,
            rung_gate=lambda job, rung: rung.name not in gated,
        )
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.rung == "bounded-2"
        assert outcome.degraded
        assert outcome.attempts[0] == {
            "rung": "exact", "status": "skipped", "seconds": 0.0,
        }

    def test_last_rung_is_never_gated(self):
        result = run_batch(
            _jobs("adr2")[:1], workers=0, rung_gate=lambda job, rung: False
        )
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.rung == "sp"
        skipped = [a for a in outcome.attempts if a["status"] == "skipped"]
        assert len(skipped) == 3  # exact, bounded-2, heuristic-k0

    def test_gate_applies_in_pooled_mode(self):
        result = run_batch(
            _jobs("adr2"),
            workers=2,
            rung_gate=lambda job, rung: rung.method != "exact",
        )
        assert result.ok
        assert all(o.rung != "exact" for o in result)


class TestParallelMap:
    def test_inline_and_pooled_agree(self):
        items = [(2,), (3,), (4,)]
        inline = parallel_map(_square, items, workers=1, star=True)
        pooled = parallel_map(_square, items, workers=2, star=True)
        assert inline == pooled == [4, 9, 16]

    def test_preserves_order(self):
        items = [(i,) for i in range(8)]
        assert parallel_map(_square, items, workers=4, star=True) == [
            i * i for i in range(8)
        ]

    def test_survives_worker_crash(self):
        # Item 3 kills its pool worker (BrokenProcessPool); the lost
        # items must be recomputed inline and come back in order.
        items = [(i,) for i in range(6)]
        result = parallel_map(_crash_in_worker, items, workers=2, star=True)
        assert result == [i * i for i in range(6)]


def _square(x):
    return x * x


_PARENT_PID = os.getpid()


def _crash_in_worker(x):
    # Deterministic poison item: dies hard, but only inside a pool
    # worker — the inline retry in the parent process must succeed.
    if x == 3 and os.getpid() != _PARENT_PID:
        os._exit(1)
    return x * x
