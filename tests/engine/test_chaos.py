"""Chaos tests: real batches under injected faults.

Every test here runs the actual engine — pools, cache, manifest — while
a :class:`repro.faults.FaultPlan` provokes worker crashes, slow rungs,
corrupt disk records, truncated journal tails, or a hard kill of the
whole scheduler.  The invariants under test:

* a batch always terminates, and every job's outcome is either a
  **verified** cover or an explicit ``failed``/``quarantined`` record
  with its attempt log;
* a poison job (crashes every rung) is quarantined at its crash cap and
  cannot wedge the batch in an endless pool-rebuild loop;
* all persistence is atomic: a ``kill -9`` at any injected point never
  leaves an unreadable cache object or manifest, and ``resume`` after a
  mid-batch kill reproduces an uninterrupted run's records.

Set ``REPRO_CHAOS_DIR`` to persist the cache/manifest/quarantine dirs
(CI uploads them as artifacts on failure).
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import faults
from repro.bench.suite import get_benchmark
from repro.engine import Job, Manifest, ResultCache, run_batch
from repro.engine.batch import SOURCE_QUARANTINED
from repro.faults import ENV_VAR, FaultPlan, FaultRule
from repro.serialize import form_from_dict, load_json_file
from repro.verify import verify_form

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning"
)


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.uninstall()


@pytest.fixture
def chaos_dir(tmp_path):
    """Working dir for cache/manifest state; CI points this at an
    uploadable location via REPRO_CHAOS_DIR."""
    root = os.environ.get("REPRO_CHAOS_DIR")
    if root:
        path = Path(root) / tmp_path.name
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


def _jobs(*names):
    jobs = []
    for name in names:
        func = get_benchmark(name)
        for o, fo in enumerate(func.outputs):
            if fo.on_set:
                jobs.append(Job(fo, method="exact", label=f"{name}[{o}]"))
    return jobs


def _assert_verified(outcome):
    form = form_from_dict(outcome.record["form"])
    assert verify_form(form, outcome.job.func), outcome.job.display_label


def _assert_explicit(outcome):
    """Chaos invariant: verified cover, or explicit failure + attempts."""
    if outcome.ok:
        _assert_verified(outcome)
    else:
        assert outcome.source in ("failed", "quarantined")
        assert outcome.attempts, outcome.job.display_label


class TestCrashRecovery:
    def test_transient_worker_crashes_are_retried_at_the_same_rung(
        self, chaos_dir
    ):
        # The first two executions of adr2[0]'s rung kill the worker
        # (counted globally across pool rebuilds); the third succeeds.
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="crash",
                           match="adr2[0]", times=2)],
                counter_dir=str(chaos_dir / "counters"),
            )
        )
        result = run_batch(
            _jobs("adr2"), workers=2, crash_cap=3, retry_backoff=0.0
        )
        assert result.ok
        for outcome in result:
            _assert_verified(outcome)
        victim = next(o for o in result if o.job.label == "adr2[0]")
        crash_attempts = [a for a in victim.attempts if a["status"] == "crash"]
        assert crash_attempts
        # Survived at full fidelity: the crash did not cost it a rung.
        assert victim.rung == "exact"
        assert not victim.degraded

    def test_poison_job_is_quarantined_and_peers_complete(self, chaos_dir):
        # One output crashes its worker on every rung, forever.
        jobs = _jobs("adr2")
        poison = Job(jobs[0].func, method="exact", label="poison[0]")
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="crash",
                           match="poison", times=None)],
                counter_dir=str(chaos_dir / "counters"),
            )
        )
        result = run_batch(
            [poison, *jobs[1:]], workers=2, crash_cap=2, retry_backoff=0.0
        )
        assert len(result) == len(jobs)
        bad = result.outcomes[0]
        assert bad.source == SOURCE_QUARANTINED
        assert not bad.ok
        assert sum(1 for a in bad.attempts if a["status"] == "crash") >= 2
        assert "quarantined" in bad.attempts[-1]["message"]
        for outcome in result.outcomes[1:]:
            assert outcome.ok
            _assert_verified(outcome)
        assert result.counts()["quarantined"] == 1
        assert "quarantined" in result.summary()

    def test_inline_faults_degrade_not_crash(self):
        # memory/error/slow faults inline walk the ladder like real ones.
        faults.install(
            FaultPlan(
                [
                    FaultRule(site="scheduler.rung_start", kind="memory",
                              match="adr2[0]"),
                    FaultRule(site="scheduler.rung_start", kind="error",
                              match="adr2[1]"),
                ]
            )
        )
        result = run_batch(_jobs("adr2"), workers=0)
        assert result.ok
        by_label = {o.job.label: o for o in result}
        assert by_label["adr2[0]"].attempts[0]["status"] == "memory"
        assert by_label["adr2[1]"].attempts[0]["status"] == "error"
        for outcome in result:
            _assert_verified(outcome)


class TestCancellationUnderFaults:
    def test_slow_worker_is_cancelled_mid_rung(self):
        # An injected stall (an "unkillable" rung in pre-budget builds:
        # SIGALRM can't land off the main thread, and an inline sleep
        # ignored the ladder's timeout entirely) is cut short by a
        # cancel: the fault's sleep slices check the attempt budget, so
        # the batch returns in far less than the injected 30 seconds.
        import threading
        import time

        from repro.budget import Budget

        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="slow",
                           arg=30.0, times=None)]
            )
        )
        budget = Budget()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                run_batch(_jobs("adr2")[:2], workers=0, budget=budget)
            )
        )
        t0 = time.monotonic()
        thread.start()
        time.sleep(0.1)           # let it get stuck inside the stall
        budget.cancel("operator gave up")
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert time.monotonic() - t0 < 5.0
        result = results[0]
        assert not result.ok
        assert all(o.source == "cancelled" for o in result)
        stalled = result.outcomes[0]
        assert any(
            a["status"] == "cancelled" and "operator gave up" in a.get("message", "")
            for a in stalled.attempts
        )

    def test_slow_rung_times_out_inline_and_degrades(self):
        # Same stall, but bounded by the per-attempt timeout instead of
        # a cancel: the rung degrades and the ladder still answers.
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="slow",
                           arg=30.0, times=1)]
            )
        )
        result = run_batch(_jobs("adr2")[:1], workers=0, timeout=0.1)
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.degraded
        assert outcome.attempts[0]["status"] == "timeout"
        assert outcome.attempts[0]["seconds"] < 5.0
        _assert_verified(outcome)


class TestCorruptionRecovery:
    def test_corrupt_cache_write_is_quarantined_and_recomputed(self, chaos_dir):
        cache_dir = chaos_dir / "cache"
        faults.install(
            FaultPlan([FaultRule(site="cache.put", kind="corrupt", times=1)])
        )
        first = run_batch(
            _jobs("adr2"), workers=0, cache=ResultCache(cache_dir=cache_dir)
        )
        assert first.ok
        faults.uninstall()

        fresh = ResultCache(cache_dir=cache_dir)  # cold memory, warm disk
        second = run_batch(_jobs("adr2"), workers=0, cache=fresh)
        assert second.ok
        assert fresh.stats.corrupt == 1          # one record failed its load
        assert len(list((cache_dir / "quarantine").iterdir())) == 1
        assert [o.literals for o in second] == [o.literals for o in first]
        # Exactly one job recomputed; the rest served from intact disk.
        assert sum(1 for o in second if o.source == "computed") == 1

    def test_checksum_valid_corrupt_payload_is_audited_and_recomputed(
        self, chaos_dir
    ):
        # corrupt_payload mutates the record *semantically* (drops a
        # pseudoproduct) and re-wraps a fresh, valid checksum: the
        # checksum layer is blind to it.  Only verify-on-read auditing
        # can catch it.
        cache_dir = chaos_dir / "cache"
        faults.install(
            FaultPlan([FaultRule(site="cache.disk.corrupt_payload",
                                 kind="corrupt_payload", times=1)])
        )
        first = run_batch(
            _jobs("adr2"), workers=0, cache=ResultCache(cache_dir=cache_dir)
        )
        assert first.ok
        faults.uninstall()

        fresh = ResultCache(cache_dir=cache_dir, audit_rate=1)
        second = run_batch(_jobs("adr2"), workers=0, cache=fresh)
        assert second.ok
        assert fresh.stats.audit_mismatches == 1
        assert fresh.stats.audited >= 1
        assert fresh.stats.corrupt == 1          # quarantined on audit
        assert len(list((cache_dir / "quarantine").iterdir())) == 1
        assert [o.literals for o in second] == [o.literals for o in first]
        # The tampered record was recomputed; peers served from disk.
        assert sum(1 for o in second if o.source == "computed") == 1
        for outcome in second:
            _assert_verified(outcome)

    def test_corrupt_payload_invisible_without_auditing(self, chaos_dir):
        # Control: with auditing disabled the tampered record sails
        # through (its checksum is valid) — proving the detection in
        # the test above comes from the audit layer, not the checksum.
        cache_dir = chaos_dir / "cache"
        faults.install(
            FaultPlan([FaultRule(site="cache.disk.corrupt_payload",
                                 kind="corrupt_payload", times=1)])
        )
        first = run_batch(
            _jobs("adr2"), workers=0, cache=ResultCache(cache_dir=cache_dir)
        )
        assert first.ok
        faults.uninstall()

        blind = ResultCache(cache_dir=cache_dir, audit_rate=0)
        second = run_batch(_jobs("adr2"), workers=0, cache=blind)
        assert blind.stats.audit_mismatches == 0
        assert blind.stats.corrupt == 0
        assert all(o.source == "cache" for o in second)

    def test_truncated_journal_tail_is_tolerated(self, chaos_dir):
        manifest_dir = chaos_dir / "manifest"
        faults.install(
            FaultPlan(
                [FaultRule(site="manifest.journal", kind="truncate", times=1)]
            )
        )
        jobs = _jobs("adr2")
        first = run_batch(jobs, workers=0, manifest=Manifest(manifest_dir))
        assert first.ok
        faults.uninstall()

        manifest = Manifest(manifest_dir)
        replayed = manifest.replay()
        assert manifest.journal_skipped == 1     # the torn line was dropped
        assert len(replayed) == len(jobs) - 1
        resumed = run_batch(jobs, workers=0, manifest=manifest, resume=True)
        assert resumed.ok
        assert all(o.source == "manifest" for o in resumed)  # job files intact

    def test_corrupt_job_file_falls_back_to_journal(self, chaos_dir):
        manifest_dir = chaos_dir / "manifest"
        jobs = _jobs("adr2")[:1]
        first = run_batch(jobs, workers=0, manifest=Manifest(manifest_dir))
        assert first.ok
        key = jobs[0].content_hash
        manifest = Manifest(manifest_dir)
        manifest.path_for(key).write_text("{torn", encoding="ascii")

        record = manifest.load(key)
        assert record is not None                # journal served the record
        assert record["literals"] == first.outcomes[0].literals
        assert manifest.corrupt_records == 1
        assert (manifest.quarantine_dir / f"{key}.json").is_file()


class TestChaosStorm:
    def test_every_job_terminates_with_verified_or_explicit_record(
        self, chaos_dir
    ):
        faults.install(
            FaultPlan(
                [
                    FaultRule(site="scheduler.rung_start", kind="crash",
                              p=0.25, times=None),
                    FaultRule(site="scheduler.rung_start", kind="slow",
                              arg=0.05, p=0.2, times=None),
                    FaultRule(site="cache.put", kind="corrupt", times=2),
                    FaultRule(site="manifest.journal", kind="truncate",
                              times=1),
                ],
                seed=20260805,
                counter_dir=str(chaos_dir / "counters"),
            )
        )
        cache_dir = chaos_dir / "cache"
        manifest_dir = chaos_dir / "manifest"
        jobs = _jobs("adr2", "adr3")
        result = run_batch(
            jobs,
            workers=2,
            timeout=10.0,
            cache=ResultCache(cache_dir=cache_dir),
            manifest=Manifest(manifest_dir),
            crash_cap=2,
            retry_backoff=0.0,
        )
        assert len(result) == len(jobs)
        for outcome in result:
            _assert_explicit(outcome)

        # The survivors' persisted state is clean: a faultless resume
        # terminates and never trips over what the storm left behind.
        faults.uninstall()
        resumed = run_batch(
            jobs,
            workers=0,
            cache=ResultCache(cache_dir=cache_dir),
            manifest=Manifest(manifest_dir),
            resume=True,
        )
        assert resumed.ok
        for outcome in resumed:
            _assert_verified(outcome)


_KILL_SCRIPT = textwrap.dedent(
    """
    from repro.bench.suite import get_benchmark
    from repro.engine import Job, Manifest, ResultCache, run_batch

    func = get_benchmark("adr3")
    jobs = [
        Job(fo, method="exact", label="adr3[%d]" % o)
        for o, fo in enumerate(func.outputs)
        if fo.on_set
    ]
    run_batch(
        jobs,
        workers=0,
        cache=ResultCache(cache_dir="__CACHE__"),
        manifest=Manifest("__MANIFEST__"),
        resume=True,
    )
    """
)


class TestKillAndResume:
    """``kill -9`` (via an injected ``os._exit``) at every dangerous
    persistence point; the next run must read clean state and ``resume``
    must converge on the uninterrupted run's records."""

    @pytest.mark.parametrize(
        "kill_site", ["batch.job_done", "manifest.store", "cache.put"]
    )
    def test_resume_after_kill_matches_uninterrupted_run(
        self, chaos_dir, kill_site
    ):
        cache_dir = str(chaos_dir / f"cache-{kill_site}")
        manifest_dir = str(chaos_dir / f"manifest-{kill_site}")
        plan = FaultPlan(
            [FaultRule(site=kill_site, kind="crash", after=1, times=1)]
        )
        env = dict(os.environ)
        env[ENV_VAR] = plan.to_json()
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        script = _KILL_SCRIPT.replace("__CACHE__", cache_dir).replace(
            "__MANIFEST__", manifest_dir
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            cwd=Path(__file__).resolve().parents[2],
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == 86, proc.stderr.decode()

        # Atomicity: everything the killed run left behind is readable.
        objects = list(Path(cache_dir).glob("objects/*/*.json"))
        for path in objects:
            load_json_file(path)                 # raises if torn/corrupt
        manifest = Manifest(manifest_dir)
        manifest.replay()                        # never raises
        for key in manifest.completed_keys():
            assert manifest.load(key) is not None
        assert manifest.journal_skipped == 0
        assert manifest.corrupt_records == 0
        # It did die mid-batch: at least one job survived, not all four.
        done = len(manifest.completed_keys())
        assert 1 <= done < 4

        # Resume converges on exactly what an uninterrupted run produces.
        func = get_benchmark("adr3")
        jobs = [
            Job(fo, method="exact", label=f"adr3[{o}]")
            for o, fo in enumerate(func.outputs)
            if fo.on_set
        ]
        resumed = run_batch(
            jobs,
            workers=0,
            cache=ResultCache(cache_dir=cache_dir),
            manifest=manifest,
            resume=True,
        )
        assert resumed.ok
        assert sum(1 for o in resumed if o.source == "manifest") == done
        baseline = run_batch(jobs, workers=0)
        for got, want in zip(resumed, baseline):
            assert got.job.content_hash == want.job.content_hash
            assert got.literals == want.literals
            assert got.record["rung"] == want.record["rung"]
            assert got.record["form"] == want.record["form"]
