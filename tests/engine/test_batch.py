"""Tests for BatchResult and the on-disk manifest."""

from repro.bench.suite import get_benchmark
from repro.engine import Job, Manifest, run_batch
from repro.engine.batch import BatchResult, JobOutcome
from repro.serialize import load_json_file


def _job():
    return Job(get_benchmark("adr2")[1], label="adr2[1]")


class TestManifest:
    def test_load_missing_is_none(self, tmp_path):
        assert Manifest(tmp_path).load("0" * 64) is None

    def test_store_load_round_trip(self, tmp_path):
        manifest = Manifest(tmp_path)
        record = {"rung": "exact", "literals": 7}
        manifest.store("a" * 64, record)
        assert manifest.load("a" * 64) == record
        assert manifest.completed_keys() == {"a" * 64}

    def test_corrupt_record_recomputed(self, tmp_path):
        manifest = Manifest(tmp_path)
        path = manifest.path_for("b" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("oops", encoding="ascii")
        assert manifest.load("b" * 64) is None

    def test_write_summary(self, tmp_path):
        manifest = Manifest(tmp_path)
        result = run_batch([_job()], workers=0, manifest=manifest)
        manifest.write_summary(result)
        summary = load_json_file(tmp_path / "manifest.json")
        assert summary["kind"] == "engine_manifest"
        assert summary["jobs"][0]["label"] == "adr2[1]"
        assert summary["jobs"][0]["rung"] == "exact"
        assert summary["counts"]["computed"] == 1


class TestBatchResult:
    def test_summary_and_counts(self):
        job = _job()
        ok = JobOutcome(job, {"rung": "sp", "degraded": True, "literals": 3}, "computed")
        bad = JobOutcome(job, None, "failed")
        result = BatchResult([ok, bad], seconds=1.5)
        assert not result.ok
        counts = result.counts()
        assert counts["computed"] == 1 and counts["failed"] == 1
        assert counts["degraded"] == 1
        assert "2 jobs" in result.summary()
        assert result.by_source("failed") == [bad]

    def test_outcome_properties(self):
        outcome = JobOutcome(_job(), None, "failed")
        assert not outcome.ok
        assert outcome.rung is None and outcome.literals is None
        assert outcome.degraded is False
