"""Tests for BatchResult and the on-disk manifest."""

import json

from repro.bench.suite import get_benchmark
from repro.engine import Job, Manifest, run_batch
from repro.engine.batch import BatchResult, JobOutcome
from repro.serialize import load_json_file


def _job():
    return Job(get_benchmark("adr2")[1], label="adr2[1]")


class TestManifest:
    def test_load_missing_is_none(self, tmp_path):
        assert Manifest(tmp_path).load("0" * 64) is None

    def test_store_load_round_trip(self, tmp_path):
        manifest = Manifest(tmp_path)
        record = {"rung": "exact", "literals": 7}
        manifest.store("a" * 64, record)
        assert manifest.load("a" * 64) == record
        assert manifest.completed_keys() == {"a" * 64}

    def test_corrupt_record_recomputed(self, tmp_path):
        manifest = Manifest(tmp_path)
        path = manifest.path_for("b" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("oops", encoding="ascii")
        assert manifest.load("b" * 64) is None

    def test_corrupt_record_is_quarantined_for_forensics(self, tmp_path):
        manifest = Manifest(tmp_path)
        path = manifest.path_for("c" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="ascii")
        assert manifest.load("c" * 64) is None
        assert manifest.corrupt_records == 1
        assert not path.exists()
        assert (manifest.quarantine_dir / path.name).is_file()

    def test_write_summary(self, tmp_path):
        manifest = Manifest(tmp_path)
        result = run_batch([_job()], workers=0, manifest=manifest)
        manifest.write_summary(result)
        summary = load_json_file(tmp_path / "manifest.json")
        assert summary["kind"] == "engine_manifest"
        assert summary["jobs"][0]["label"] == "adr2[1]"
        assert summary["jobs"][0]["rung"] == "exact"
        assert summary["counts"]["computed"] == 1


class TestJournal:
    def test_store_appends_a_checksummed_line(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.store("a" * 64, {"rung": "exact", "literals": 7})
        lines = manifest.journal_path.read_text(encoding="ascii").splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["key"] == "a" * 64
        assert event["record"]["literals"] == 7
        assert len(event["sha256"]) == 64

    def test_replay_round_trip_across_instances(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.store("a" * 64, {"rung": "exact", "literals": 7})
        manifest.store("b" * 64, {"rung": "sp", "literals": 9})
        fresh = Manifest(tmp_path)
        replayed = fresh.replay()
        assert set(replayed) == {"a" * 64, "b" * 64}
        assert replayed["b" * 64]["rung"] == "sp"
        assert fresh.journal_skipped == 0

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.store("a" * 64, {"rung": "exact", "literals": 7})
        manifest.store("b" * 64, {"rung": "sp", "literals": 9})
        raw = manifest.journal_path.read_bytes()
        manifest.journal_path.write_bytes(raw[: len(raw) - 20])  # torn tail
        fresh = Manifest(tmp_path)
        assert set(fresh.replay()) == {"a" * 64}
        assert fresh.journal_skipped == 1

    def test_interior_checksum_mismatch_is_skipped(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.store("a" * 64, {"rung": "exact", "literals": 7})
        manifest.store("b" * 64, {"rung": "sp", "literals": 9})
        text = manifest.journal_path.read_text(encoding="ascii")
        manifest.journal_path.write_text(
            text.replace('"literals":7', '"literals":8'), encoding="ascii"
        )
        fresh = Manifest(tmp_path)
        assert set(fresh.replay()) == {"b" * 64}
        assert fresh.journal_skipped == 1

    def test_journal_backs_up_a_lost_job_file(self, tmp_path):
        manifest = Manifest(tmp_path)
        manifest.store("a" * 64, {"rung": "exact", "literals": 7})
        manifest.path_for("a" * 64).unlink()
        fresh = Manifest(tmp_path)
        assert fresh.load("a" * 64) == {"rung": "exact", "literals": 7}
        assert fresh.completed_keys() == {"a" * 64}


class TestBatchResult:
    def test_summary_and_counts(self):
        job = _job()
        ok = JobOutcome(job, {"rung": "sp", "degraded": True, "literals": 3}, "computed")
        bad = JobOutcome(job, None, "failed")
        result = BatchResult([ok, bad], seconds=1.5)
        assert not result.ok
        counts = result.counts()
        assert counts["computed"] == 1 and counts["failed"] == 1
        assert counts["degraded"] == 1
        assert "2 jobs" in result.summary()
        assert result.by_source("failed") == [bad]

    def test_outcome_properties(self):
        outcome = JobOutcome(_job(), None, "failed")
        assert not outcome.ok
        assert outcome.rung is None and outcome.literals is None
        assert outcome.degraded is False
