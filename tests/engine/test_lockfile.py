"""Tests for the cross-process advisory file lock."""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from repro.engine.lockfile import FileLock, LockTimeout


class TestFileLock:
    def test_acquire_release(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire()
        assert (tmp_path / "x.lock").exists()
        lock.release()
        assert not (tmp_path / "x.lock").exists()

    def test_context_manager(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            assert path.exists()
        assert not path.exists()

    def test_mutual_exclusion(self, tmp_path):
        path = tmp_path / "x.lock"
        first = FileLock(path)
        second = FileLock(path, stale_after=3600.0)
        assert first.try_acquire()
        assert not second.try_acquire()
        first.release()
        assert second.try_acquire()
        second.release()

    def test_acquire_times_out(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        waiter = FileLock(path, stale_after=3600.0)
        holder.acquire()
        started = time.monotonic()
        with pytest.raises(LockTimeout):
            waiter.acquire(timeout=0.2)
        assert time.monotonic() - started < 5.0
        holder.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire()
        lock.release()
        lock.release()  # must not raise

    def test_stale_lock_broken(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("99999 0")
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = FileLock(path, stale_after=1.0)
        assert lock.try_acquire()
        lock.release()

    def test_fresh_foreign_lock_respected(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text(f"{os.getpid()} {time.time()}")
        lock = FileLock(path, stale_after=3600.0)
        assert not lock.try_acquire()

    def test_lock_records_pid(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            recorded = int(path.read_text().split()[0])
            assert recorded == os.getpid()

    def test_cross_process_exclusion(self, tmp_path):
        """A lock held by another OS process blocks try_acquire here."""
        path = tmp_path / "x.lock"
        script = (
            "import sys, time\n"
            "from repro.engine.lockfile import FileLock\n"
            f"lock = FileLock({str(path)!r})\n"
            "assert lock.try_acquire()\n"
            "print('locked', flush=True)\n"
            "time.sleep(30)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "locked"
            mine = FileLock(path, stale_after=3600.0)
            assert not mine.try_acquire()
        finally:
            proc.kill()
            proc.wait()
        # Holder died without releasing: fresh lockfiles are respected
        # until stale_after, then broken.
        aggressive = FileLock(path, stale_after=0.0)
        time.sleep(0.01)
        assert aggressive.try_acquire()
        aggressive.release()
