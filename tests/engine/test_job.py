"""Tests for the Job model and its content hash."""

import pytest

from repro.boolfunc.function import BoolFunc
from repro.engine.job import Job, job_from_dict, job_to_dict


def _func(on=(1, 2, 4), dc=(), n=3):
    return BoolFunc(n, frozenset(on), frozenset(dc))


class TestContentHash:
    def test_is_hex_sha256(self):
        h = Job(_func()).content_hash
        assert len(h) == 64
        int(h, 16)  # parses as hex

    def test_same_function_same_options_same_hash(self):
        assert Job(_func()).content_hash == Job(_func()).content_hash

    def test_label_does_not_participate(self):
        assert Job(_func(), label="a").content_hash == Job(_func(), label="b").content_hash

    def test_on_set_construction_order_is_canonical(self):
        a = BoolFunc(3, frozenset([4, 1, 2]))
        b = BoolFunc(3, frozenset([1, 2, 4]))
        assert Job(a).content_hash == Job(b).content_hash

    def test_different_on_set_different_hash(self):
        assert Job(_func(on=(1, 2))).content_hash != Job(_func(on=(1, 3))).content_hash

    def test_dc_set_participates(self):
        assert Job(_func(dc=())).content_hash != Job(_func(dc=(5,))).content_hash

    def test_method_participates(self):
        assert Job(_func(), method="exact").content_hash != Job(
            _func(), method="sp"
        ).content_hash

    def test_irrelevant_params_are_normalized_away(self):
        # k is a heuristic knob: exact jobs hash identically regardless.
        assert Job(_func(), method="exact", k=0).content_hash == Job(
            _func(), method="exact", k=3
        ).content_hash
        # bound is a bounded knob: sp jobs ignore it too.
        assert Job(_func(), method="sp", bound=2).content_hash == Job(
            _func(), method="sp", bound=4
        ).content_hash

    def test_relevant_params_participate(self):
        assert Job(_func(), method="heuristic", k=0).content_hash != Job(
            _func(), method="heuristic", k=1
        ).content_hash
        assert Job(_func(), method="bounded", bound=2).content_hash != Job(
            _func(), method="bounded", bound=3
        ).content_hash
        assert Job(_func(), covering="greedy").content_hash != Job(
            _func(), covering="exact"
        ).content_hash

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Job(_func(), method="quantum")


class TestRoundTrip:
    def test_job_dict_round_trip(self):
        job = Job(_func(), method="heuristic", k=2, covering="exact", label="x[1]")
        data = job_to_dict(job)
        assert data["hash"] == job.content_hash
        rebuilt = job_from_dict(job.func, data)
        assert rebuilt.content_hash == job.content_hash
        assert rebuilt.k == 2 and rebuilt.covering == "exact"

    def test_display_label_fallback(self):
        assert Job(_func(), label="adr2[1]").display_label == "adr2[1]"
        assert "n=3" in Job(_func()).display_label
