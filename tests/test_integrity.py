"""Unit tests for result certificates (:mod:`repro.integrity`)."""

import pytest

from repro.boolfunc.function import BoolFunc
from repro.core.spp_form import SppForm
from repro.errors import EXIT_INTEGRITY, IntegrityError
from repro.integrity import (
    CERTIFICATE_VERSION,
    VERIFIED_FULL,
    VERIFIED_NONE,
    VERIFIED_SAMPLED,
    check_certificate,
    form_hash,
    make_certificate,
    recompute_cost,
    spec_hash,
)
from repro.minimize.exact import minimize_spp
from repro.serialize import form_to_dict
from repro.verify import verify_form


@pytest.fixture
def pair():
    """A small function and its verified exact form."""
    func = BoolFunc.from_truth_table("0110100110010110")  # 4-var parity
    form = minimize_spp(func).form
    assert verify_form(form, func)
    return func, form


def _record(func, form, **cert_overrides):
    cert = make_certificate(
        func, form, solver_salt="salt-1", verified=VERIFIED_FULL
    )
    cert.update(cert_overrides)
    return {
        "literals": recompute_cost(form),
        "form": form_to_dict(form),
        "integrity": cert,
    }


class TestHashes:
    def test_hashes_are_stable_and_discriminating(self, pair):
        func, form = pair
        assert spec_hash(func) == spec_hash(func)
        assert form_hash(form) == form_hash(form)
        other = BoolFunc(func.n, frozenset({0}))
        assert spec_hash(other) != spec_hash(func)
        assert form_hash(SppForm(form.n, ())) != form_hash(form)

    def test_recompute_cost_matches_closed_form(self, pair):
        _, form = pair
        # Two independent cost paths: CEX factor-by-factor vs the
        # closed-form pseudocube literal count.
        assert recompute_cost(form) == form.num_literals

    def test_recompute_cost_of_empty_form_is_zero(self):
        assert recompute_cost(SppForm(3, ())) == 0


class TestMakeCertificate:
    def test_envelope_shape(self, pair):
        func, form = pair
        cert = make_certificate(
            func, form, solver_salt="s", claimed_cost=form.num_literals,
            verified=VERIFIED_FULL, verify_ms=1.25,
        )
        assert cert["version"] == CERTIFICATE_VERSION
        assert cert["spec_hash"] == spec_hash(func)
        assert cert["form_hash"] == form_hash(form)
        assert cert["cost_recomputed"] == form.num_literals
        assert cert["solver_salt"] == "s"
        assert cert["verified"] == VERIFIED_FULL
        assert cert["verify_ms"] == 1.25

    def test_wrong_claimed_cost_raises_at_stamping_time(self, pair):
        func, form = pair
        with pytest.raises(IntegrityError) as exc:
            make_certificate(
                func, form, solver_salt="s",
                claimed_cost=form.num_literals + 1,
            )
        assert exc.value.exit_code == EXIT_INTEGRITY
        assert exc.value.detail["cost_recomputed"] == form.num_literals

    def test_unknown_verified_level_rejected(self, pair):
        func, form = pair
        with pytest.raises(ValueError):
            make_certificate(func, form, solver_salt="s", verified="maybe")


class TestCheckCertificate:
    def test_clean_record_passes_and_refreshes(self, pair):
        func, form = pair
        record = _record(func, form)
        refreshed = check_certificate(record, func, form)
        assert refreshed["verified"] == VERIFIED_FULL

    def test_semantic_audit_raises_none_to_sampled(self, pair):
        func, form = pair
        record = _record(func, form, verified=VERIFIED_NONE)
        refreshed = check_certificate(record, func, form)
        assert refreshed["verified"] == VERIFIED_SAMPLED

    def test_record_without_envelope_is_audited_semantically(self, pair):
        func, form = pair
        record = {"literals": form.num_literals, "form": form_to_dict(form)}
        refreshed = check_certificate(record, func, form)
        assert refreshed["verified"] == VERIFIED_SAMPLED

    def test_wrong_literal_claim_is_caught(self, pair):
        func, form = pair
        record = _record(func, form)
        record["literals"] += 1
        with pytest.raises(IntegrityError, match="literals"):
            check_certificate(record, func, form)

    def test_spec_hash_mismatch_is_caught(self, pair):
        func, form = pair
        record = _record(func, form)
        other = BoolFunc(func.n, frozenset({1, 2}))
        with pytest.raises(IntegrityError, match="spec_hash"):
            check_certificate(record, other, form)

    def test_mutated_form_is_caught_by_form_hash(self, pair):
        func, form = pair
        record = _record(func, form)
        mutated = SppForm(form.n, form.pseudoproducts[:-1])
        record["literals"] = mutated.num_literals
        with pytest.raises(IntegrityError, match="form_hash"):
            check_certificate(record, func, mutated)

    def test_wrong_cover_is_caught_semantically(self, pair):
        func, form = pair
        # No envelope, literal claim consistent — only the semantic
        # re-verification can notice the cover is wrong.
        mutated = SppForm(form.n, form.pseudoproducts[:-1])
        record = {
            "literals": mutated.num_literals,
            "form": form_to_dict(mutated),
        }
        with pytest.raises(IntegrityError, match="not equivalent") as exc:
            check_certificate(record, func, mutated)
        assert exc.value.report is not None
        assert not exc.value.report.ok

    def test_semantic_false_skips_pointwise_check(self, pair):
        func, form = pair
        mutated = SppForm(form.n, form.pseudoproducts[:-1])
        record = {
            "literals": mutated.num_literals,
            "form": form_to_dict(mutated),
        }
        refreshed = check_certificate(record, func, mutated, semantic=False)
        assert refreshed["verified"] == VERIFIED_NONE
