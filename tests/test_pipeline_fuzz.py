"""Wider-space fuzzing of the full pipeline (n = 5, 6).

Slower than the n≤4 property tests but still seconds: every engine must
verify on random medium-width functions, including incompletely
specified ones, and the engines' cost relationships must hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BoolFunc,
    minimize_aox,
    minimize_sp,
    minimize_spp,
    minimize_spp_bounded,
    minimize_spp_k,
)
from repro.minimize.eppp import generate_eppp
from repro.minimize.naive import generate_eppp_naive
from repro.verify import assert_equivalent, verify_form


def _func(n, on, dc):
    on = frozenset(on)
    return BoolFunc(n, on, frozenset(dc) - on)


funcs5 = st.builds(
    _func,
    st.just(5),
    st.sets(st.integers(0, 31), min_size=1, max_size=20),
    st.sets(st.integers(0, 31), max_size=6),
)
funcs6 = st.builds(
    _func,
    st.just(6),
    st.sets(st.integers(0, 63), min_size=1, max_size=24),
    st.sets(st.integers(0, 63), max_size=8),
)


class TestFiveVariables:
    @given(funcs5)
    @settings(max_examples=15, deadline=None)
    def test_all_engines_verify(self, func):
        for form in (
            minimize_spp(func).form,
            minimize_sp(func).form,
            minimize_spp_k(func, 1).form,
            minimize_spp_bounded(func, 2).form,
        ):
            assert_equivalent(form, func)
        assert verify_form(minimize_aox(func).form, func).ok

    @given(funcs5)
    @settings(max_examples=10, deadline=None)
    def test_naive_agrees_at_width_five(self, func):
        grouped = generate_eppp(func)
        naive = generate_eppp_naive(func)
        assert set(grouped.eppps) == set(naive.eppps)


class TestSixVariables:
    @given(funcs6)
    @settings(max_examples=8, deadline=None)
    def test_exact_and_heuristic_verify(self, func):
        exact = minimize_spp(func)
        spp0 = minimize_spp_k(func, 0)
        assert_equivalent(exact.form, func)
        assert_equivalent(spp0.form, func)

    @given(funcs6)
    @settings(max_examples=8, deadline=None)
    def test_cost_relations(self, func):
        sp = minimize_sp(func, covering="exact")
        spp = minimize_spp(func, covering="exact")
        two = minimize_spp_bounded(func, 2, covering="exact")
        # The cost chain is only guaranteed when every covering was
        # solved to proved optimality; a node-capped search falls back
        # to its greedy incumbent, which may order arbitrarily.
        if sp.covering_optimal and spp.covering_optimal and two.covering_optimal:
            assert spp.num_literals <= two.num_literals <= sp.num_literals
