"""Wider-space fuzzing of the full pipeline (n = 5, 6).

Slower than the n≤4 property tests but still seconds: every engine must
verify on random medium-width functions, including incompletely
specified ones, and the engines' cost relationships must hold.

The hypothesis-driven classes here feed the same checks the standing
fuzz harness (:mod:`repro.fuzz`) runs in CI — ``TestHarnessCorpus``
routes hypothesis draws straight through :func:`repro.fuzz.run_trial`,
and ``TestMetamorphicProperties`` spells the metamorphic invariants
out as independent properties (with counterexample shrinking courtesy
of hypothesis instead of the harness's own ddmin).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BoolFunc,
    minimize_aox,
    minimize_sp,
    minimize_spp,
    minimize_spp_bounded,
    minimize_spp_k,
)
from repro.fuzz import run_fuzz, run_trial
from repro.minimize.eppp import generate_eppp
from repro.minimize.naive import generate_eppp_naive
from repro.verify import assert_equivalent, verify_form


def _func(n, on, dc):
    on = frozenset(on)
    return BoolFunc(n, on, frozenset(dc) - on)


funcs5 = st.builds(
    _func,
    st.just(5),
    st.sets(st.integers(0, 31), min_size=1, max_size=20),
    st.sets(st.integers(0, 31), max_size=6),
)
funcs6 = st.builds(
    _func,
    st.just(6),
    st.sets(st.integers(0, 63), min_size=1, max_size=24),
    st.sets(st.integers(0, 63), max_size=8),
)


class TestFiveVariables:
    @given(funcs5)
    @settings(max_examples=15, deadline=None)
    def test_all_engines_verify(self, func):
        for form in (
            minimize_spp(func).form,
            minimize_sp(func).form,
            minimize_spp_k(func, 1).form,
            minimize_spp_bounded(func, 2).form,
        ):
            assert_equivalent(form, func)
        assert verify_form(minimize_aox(func).form, func).ok

    @given(funcs5)
    @settings(max_examples=10, deadline=None)
    def test_naive_agrees_at_width_five(self, func):
        grouped = generate_eppp(func)
        naive = generate_eppp_naive(func)
        assert set(grouped.eppps) == set(naive.eppps)


class TestSixVariables:
    @given(funcs6)
    @settings(max_examples=8, deadline=None)
    def test_exact_and_heuristic_verify(self, func):
        exact = minimize_spp(func)
        spp0 = minimize_spp_k(func, 0)
        assert_equivalent(exact.form, func)
        assert_equivalent(spp0.form, func)

    @given(funcs6)
    @settings(max_examples=8, deadline=None)
    def test_cost_relations(self, func):
        sp = minimize_sp(func, covering="exact")
        spp = minimize_spp(func, covering="exact")
        two = minimize_spp_bounded(func, 2, covering="exact")
        # The cost chain is only guaranteed when every covering was
        # solved to proved optimality; a node-capped search falls back
        # to its greedy incumbent, which may order arbitrarily.
        if sp.covering_optimal and spp.covering_optimal and two.covering_optimal:
            assert spp.num_literals <= two.num_literals <= sp.num_literals


def _translate(func, mask):
    return BoolFunc(
        func.n,
        frozenset(p ^ mask for p in func.on_set),
        frozenset(p ^ mask for p in func.dc_set),
    )


def _permute(func, perm):
    def move(points):
        return frozenset(
            sum(1 << perm[i] for i in range(func.n) if (p >> i) & 1)
            for p in points
        )

    return BoolFunc(func.n, move(func.on_set), move(func.dc_set))


class TestMetamorphicProperties:
    """Invariants of minimization under spec transformations.

    Negation (translating the space by a mask) maps pseudocubes to
    pseudocubes of identical literal count, so the proved-optimal SPP
    cost is invariant.  Variable *permutation* is only asserted to
    commute semantically, plus exact-SP cost invariance: the optimal
    SPP cost is empirically NOT permutation-invariant (pseudocube
    literal counts depend on the coordinate frame; observed 17 vs 18
    literals on a 5-variable function, both proved optimal).
    """

    @given(funcs5, st.integers(1, 31))
    @settings(max_examples=10, deadline=None)
    def test_negation_preserves_optimal_spp_cost(self, func, mask):
        base = minimize_spp(func, covering="exact")
        moved = minimize_spp(_translate(func, mask), covering="exact")
        assert_equivalent(moved.form, _translate(func, mask))
        if base.covering_optimal and moved.covering_optimal:
            assert base.num_literals == moved.num_literals

    @given(funcs5, st.permutations(list(range(5))))
    @settings(max_examples=10, deadline=None)
    def test_permutation_commutes_semantically(self, func, perm):
        permuted = _permute(func, perm)
        assert_equivalent(minimize_spp(permuted).form, permuted)
        sp = minimize_sp(func, covering="exact")
        p_sp = minimize_sp(permuted, covering="exact")
        if sp.covering_optimal and p_sp.covering_optimal:
            assert sp.num_literals == p_sp.num_literals

    @given(funcs5, st.integers(0, 4), st.integers(0, 1))
    @settings(max_examples=10, deadline=None)
    def test_cofactor_minimization_verifies(self, func, variable, value):
        restricted = func.cofactor(variable, value)
        if restricted.on_set:
            assert_equivalent(minimize_spp(restricted).form, restricted)


class TestHarnessCorpus:
    """The standing fuzz harness, fed by hypothesis and by its own
    seeded corpus — healthy engines must produce zero findings."""

    @given(funcs5)
    @settings(max_examples=6, deadline=None)
    def test_run_trial_is_clean_on_healthy_engines(self, func):
        assert run_trial(func, seed=0) == []

    def test_seeded_corpus_is_green(self, tmp_path):
        report = run_fuzz(seed=2026, budget=10.0, max_trials=6,
                          n_min=3, n_max=5, out_dir=tmp_path)
        assert report.ok, [f["failures"][0] for f in report.failures]
        assert report.trials >= 1
        # No artifacts dumped on a green run.
        assert not list(tmp_path.glob("seed*/*.json"))
