"""Tests for the differential/metamorphic fuzz subsystem.

The harness itself is safety equipment, so these tests exercise both
directions: a clean corpus produces no findings, and a planted solver
bug is detected, shrunk, written as a replayable artifact, and turned
into the integrity exit code by the CLI.
"""

import json
import random
from pathlib import Path

import pytest

from repro.boolfunc.function import BoolFunc
from repro.cli import main
from repro.errors import EXIT_INTEGRITY
from repro.fuzz import (
    CHECKS,
    FAMILIES,
    draw_function,
    replay_artifact,
    run_fuzz,
    run_trial,
    shrink_function,
)
from repro.fuzz.harness import PLANT_BUGS, _oracle_mismatches
from repro.minimize.exact import minimize_spp

SMALL = dict(n_min=3, n_max=4)  # keep trials fast; width is not under test


class TestGenerators:
    def test_families_produce_valid_functions(self):
        rng = random.Random(0)
        for name, gen in FAMILIES.items():
            for n in (3, 4, 5):
                func = gen(rng, n)
                assert isinstance(func, BoolFunc)
                assert func.n == n
                assert func.on_set, name

    def test_draw_is_deterministic_per_seed(self):
        a = [draw_function(random.Random(5), **SMALL) for _ in range(10)]
        b = [draw_function(random.Random(5), **SMALL) for _ in range(10)]
        assert a == b

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz families"):
            draw_function(random.Random(0), families=["bogus"])

    def test_dc_heavy_has_dont_cares(self):
        rng = random.Random(1)
        assert any(FAMILIES["dc-heavy"](rng, 5).dc_set for _ in range(5))

    def test_near_dup_family_registered_with_dc_mass(self):
        assert "near-dup" in FAMILIES
        rng = random.Random(1)
        assert any(FAMILIES["near-dup"](rng, 5).dc_set for _ in range(5))

    def test_delta_warm_check_registered(self):
        assert "delta-warm" in CHECKS

    def test_delta_warm_check_runs_clean(self):
        func = BoolFunc(4, frozenset({0, 1, 3, 6, 9, 12}), frozenset({5, 10}))
        assert run_trial(func, seed=2, checks=("delta-warm",)) == []


class TestRunTrial:
    def test_clean_function_has_no_findings(self):
        func = BoolFunc.from_truth_table("01101001")  # 3-var parity
        assert run_trial(func, seed=1) == []

    def test_planted_bug_is_a_differential_finding(self):
        func = BoolFunc(3, frozenset({0, 3, 5, 6}))
        failures = run_trial(func, seed=1, plant_bug="drop-cover")
        assert any(f.check == "differential" for f in failures)
        diff = next(f for f in failures if f.check == "differential")
        assert diff.rung == "heuristic-k0"
        assert diff.detail["counterexamples"]

    def test_checks_filter_restricts_work(self):
        func = BoolFunc(3, frozenset({1, 2, 4}))
        failures = run_trial(
            func, seed=1, plant_bug="drop-cover", checks=("cost-sanity",)
        )
        # The planted bug only mutates the differential check's input.
        assert failures == []

    def test_drop_cover_mutator_uncovers_an_on_point(self):
        func = BoolFunc(3, frozenset({0, 3, 5, 6}))
        form = minimize_spp(func).form
        mutated = PLANT_BUGS["drop-cover"](form, func)
        assert _oracle_mismatches(mutated, func)


class TestShrinking:
    def test_shrinks_to_a_minimal_failing_on_set(self):
        # Failure predicate: function still contains on-point 5.
        func = BoolFunc(4, frozenset({1, 3, 5, 9, 12}), frozenset({2, 6}))
        shrunk = shrink_function(func, lambda f: 5 in f.on_set)
        assert shrunk.on_set == frozenset({5})
        assert shrunk.dc_set == frozenset()

    def test_never_empties_the_on_set(self):
        func = BoolFunc(3, frozenset({1, 2}))
        shrunk = shrink_function(func, lambda f: True)
        assert shrunk.on_set


class TestCampaign:
    def test_clean_campaign_is_green_and_deterministic(self, tmp_path):
        kwargs = dict(seed=99, budget=10.0, max_trials=8,
                      out_dir=tmp_path, **SMALL)
        first = run_fuzz(**kwargs)
        assert first.ok
        assert first.trials == 8
        assert sum(first.family_counts.values()) == 8
        second = run_fuzz(**kwargs)
        assert second.family_counts == first.family_counts

    def test_planted_bug_yields_shrunk_replayable_artifact(self, tmp_path):
        report = run_fuzz(
            seed=7, budget=30.0, max_trials=10, max_failures=1,
            plant_bug="drop-cover", out_dir=tmp_path, **SMALL,
        )
        assert not report.ok
        artifact = report.failures[0]
        data = json.loads(Path(artifact["path"]).read_text())
        assert data["plant_bug"] == "drop-cover"
        assert data["failures"][0]["check"] == "differential"
        # Shrinking made progress and the shrunk function still fails.
        assert data["shrunk_on_points"] <= len(data["func"]["on"])
        assert data["shrunk_failures"]
        replayed = replay_artifact(artifact["path"])
        assert any(f.check == "differential" for f in replayed)

    def test_unknown_plant_bug_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown plant bug"):
            run_fuzz(seed=0, budget=1.0, plant_bug="nope", out_dir=tmp_path)


class TestCli:
    def test_fuzz_green_exits_zero(self, tmp_path, capsys):
        code = main(["fuzz", "--seed", "99", "--budget", "10", "--trials", "4",
                     "--n-min", "3", "--n-max", "4",
                     "--out", str(tmp_path)])
        assert code == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_planted_bug_exits_with_integrity_code(self, tmp_path, capsys):
        code = main(["fuzz", "--seed", "7", "--budget", "30", "--trials", "10",
                     "--n-min", "3", "--n-max", "4",
                     "--plant-bug", "drop-cover", "--out", str(tmp_path)])
        assert code == EXIT_INTEGRITY
        err = capsys.readouterr().err
        assert "failing trial" in err

    def test_replay_of_artifact(self, tmp_path, capsys):
        report = run_fuzz(
            seed=7, budget=30.0, max_trials=10, max_failures=1,
            plant_bug="drop-cover", out_dir=tmp_path, **SMALL,
        )
        path = report.failures[0]["path"]
        assert main(["fuzz", "--replay", path]) == EXIT_INTEGRITY
        # A clean artifact (no planted bug on replayed func) replays green:
        data = json.loads(open(path).read())
        data["plant_bug"] = None
        clean = tmp_path / "clean.json"
        clean.write_text(json.dumps(data))
        assert main(["fuzz", "--replay", str(clean)]) == 0
        assert "replay clean" in capsys.readouterr().out

    def test_all_check_names_documented(self):
        assert set(CHECKS) == {
            "differential", "cost-sanity", "metamorphic-permutation",
            "metamorphic-negation", "metamorphic-cofactor", "delta-warm",
        }
