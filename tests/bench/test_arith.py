"""Tests for the arithmetic benchmark constructions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bench import arith


def _word(func, point):
    """Read the multi-output value at a point as an integer."""
    value = 0
    for o, f in enumerate(func.outputs):
        if f.evaluate(point) == 1:
            value |= 1 << o
    return value


class TestAdders:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_adr4_adds(self, a, b):
        func = arith.adr4()
        assert _word(func, a | (b << 4)) == a + b

    def test_radd_equals_adr4(self):
        adr = arith.adr4()
        rad = arith.radd()
        assert [f.on_set for f in adr.outputs] == [f.on_set for f in rad.outputs]

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_add6(self, a, b):
        func = arith.add6()
        assert _word(func, a | (b << 6)) == a + b

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_addm4(self, a, b, cin):
        func = arith.addm4()
        word = _word(func, a | (b << 4) | (cin << 8))
        assert word & 0x1F == a + b + cin
        assert word >> 5 == (a - b) % 8


class TestMultiplier:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_mlp4(self, a, b):
        func = arith.mlp4()
        assert _word(func, a | (b << 4)) == a * b


class TestDistRoot:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_dist(self, a, b):
        func = arith.dist()
        word = _word(func, a | (b << 4))
        assert word & 0xF == abs(a - b)
        assert word >> 4 == (1 if a < b else 0)

    @given(st.integers(0, 255))
    def test_root(self, x):
        func = arith.root()
        word = _word(func, x)
        r = word & 0xF
        assert r * r <= x < (r + 1) * (r + 1)
        assert (word >> 4) == (1 if r * r == x else 0)


class TestLife:
    def test_life_rule_cases(self):
        func = arith.life()
        f = func[0]
        # Dead centre, 3 neighbours → born.
        assert f.evaluate(0b000000111 << 1) == 1
        # Alive centre, 2 neighbours → survives.
        assert f.evaluate(1 | (0b11 << 1)) == 1
        # Alive centre, 1 neighbour → dies.
        assert f.evaluate(1 | (0b1 << 1)) == 0
        # Alive centre, 4 neighbours → dies.
        assert f.evaluate(1 | (0b1111 << 1)) == 0

    def test_life_on_set_size(self):
        """|on| = C(8,3)·2 + C(8,2) = 112 + 28 = 140."""
        assert len(arith.life()[0].on_set) == 140

    def test_scaled_life_signature(self):
        assert arith.life_rule(5).n == 6


class TestSevenSegment:
    def test_digit_patterns(self):
        func = arith.seven_segment()
        # Digit 1 lights segments b, c only.
        assert _word(func, 1) == 0b0000110
        # Digit 8 lights everything.
        assert _word(func, 8) == 0b1111111

    def test_non_bcd_inputs_are_dont_care(self):
        func = arith.seven_segment()
        for point in range(10, 16):
            for f in func.outputs:
                assert f.evaluate(point) is None

    def test_dc_exploited_by_minimizer(self):
        """The classic result: segment covers use the dc inputs to
        shrink — each segment needs at most 4 products."""
        from repro.minimize.exact import minimize_spp
        from repro.verify import assert_equivalent

        func = arith.seven_segment()
        for fo in func.outputs:
            result = minimize_spp(fo, covering="exact")
            assert_equivalent(result.form, fo)
            assert result.num_pseudoproducts <= 4


class TestCsaAlu:
    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7))
    def test_csa_columns(self, a, b, c):
        func = arith.csa(3)
        word = _word(func, a | (b << 3) | (c << 6))
        assert word & 0x7 == a ^ b ^ c
        assert (word >> 3) == (a & b) | (a & c) | (b & c)

    @given(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7))
    def test_cs8_three_operand_sum(self, a, b, c):
        func = arith.cs8()
        assert _word(func, a | (b << 3) | (c << 6)) == a + b + c

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_f51m_addsub(self, a, b):
        func = arith.f51m()
        word = _word(func, a | (b << 4))
        assert word & 0x1F == a + b
        assert word >> 5 == (a - b) % 8

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 7), st.integers(0, 1))
    def test_alu_add_op(self, a, b, op, cin):
        func = arith.alu()
        word = _word(func, a | (b << 4) | (op << 8) | (cin << 11))
        result = word & 0xF
        if op == 0:
            assert result == (a + b + cin) & 0xF
            assert (word >> 4) & 1 == ((a + b + cin) >> 4) & 1
        if op == 4:
            assert result == a ^ b
        assert (word >> 5) & 1 == (1 if result == 0 else 0)
