"""Engine-routed table runners agree with the sequential reference."""

import math

import pytest

from repro.bench import harness


class TestTable1:
    def test_matches_sequential_row(self):
        seq = harness.run_table1_row("adr2")
        eng = harness.run_table1_rows(["adr2"], workers=0)[0]
        assert (seq.sp_primes, seq.sp_literals, seq.sp_products) == (
            eng.sp_primes, eng.sp_literals, eng.sp_products
        )
        assert (seq.spp_eppps, seq.spp_literals, seq.spp_products) == (
            eng.spp_eppps, eng.spp_literals, eng.spp_products
        )
        assert not eng.truncated

    def test_multiple_rows_keep_order(self):
        rows = harness.run_table1_rows(["adr2", "csa2"], workers=0)
        assert [m.function for m in rows] == ["adr2", "csa2"]

    def test_budget_cap_marks_truncated(self):
        eng = harness.run_table1_rows(["adr3"], max_pseudoproducts=50, workers=0)[0]
        assert eng.truncated
        assert eng.spp_literals > 0

    def test_renders(self):
        rows = harness.run_table1_rows(["adr2"], workers=0)
        assert "adr2" in harness.render_table1(rows)


class TestTable2:
    def test_parallel_rows_match_sequential(self):
        seq = harness.run_table2_row("adr2", 1, naive_timeout=None)
        eng = harness.run_table2_rows([("adr2", 1)], naive_timeout=None, workers=2)[0]
        assert eng.function == "adr2" and eng.output == 1
        assert eng.literals == seq.literals
        assert eng.comparisons_alg2 == seq.comparisons_alg2
        assert eng.comparisons_naive == seq.comparisons_naive


class TestTable3:
    def test_matches_sequential_row(self):
        seq = harness.run_table3_row("adr2")
        eng = harness.run_table3_rows(["adr2"], workers=0)[0]
        assert seq.spp0_literals == eng.spp0_literals
        assert seq.spp_literals == eng.spp_literals
        assert seq.average == pytest.approx(eng.average)

    def test_exact_budget_stars(self):
        eng = harness.run_table3_rows(["adr3"], exact_budget=10, workers=0)[0]
        assert eng.spp_literals is None
        assert eng.spp_seconds is None
        assert math.isnan(eng.average)
        assert "*" in harness.render_table3([eng])


class TestFig34:
    def test_matches_sequential_sweep(self):
        seq = harness.run_spp_k_sweep("adr2", ks=[0, 1])
        eng = harness.run_fig34_sweeps(["adr2"], ks=[0, 1], workers=0)
        assert [(p.function, p.k, p.literals) for p in seq] == [
            (p.function, p.k, p.literals) for p in eng
        ]

    def test_cache_reuses_shared_k0_work(self):
        from repro.engine import ResultCache

        cache = ResultCache()
        harness.run_fig34_sweeps(["adr2"], ks=[0], workers=0, cache=cache)
        assert cache.stats.total_hits == 0
        harness.run_fig34_sweeps(["adr2"], ks=[0], workers=0, cache=cache)
        assert cache.stats.total_hits >= 1
