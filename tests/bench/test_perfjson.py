"""The BENCH_*.json perf-report schema: validation, comparison,
round-trips, the pinned suite, and the ``bench`` CLI subcommand."""

import json

import pytest

from repro.bench import perfjson
from repro.bench.perfjson import (
    BenchEntry,
    compare_reports,
    environment_fingerprint,
    load_report,
    make_report,
    run_perf_suite,
    validate_report,
    write_report,
)
from repro.cli import main


def entry(name, best=0.01, mean=0.02, group="g"):
    return BenchEntry(name, group, best, mean, 3, {})


class TestSchema:
    def test_fingerprint_has_required_keys(self):
        env = environment_fingerprint()
        assert isinstance(env["python"], str)
        assert env["implementation"]
        assert env["platform"]
        assert env["cpu_count"] >= 1
        # git_sha is best-effort: a 40-hex string inside a checkout.
        if env["git_sha"] is not None:
            assert len(env["git_sha"]) == 40

    def test_make_and_validate(self):
        report = make_report("t", [entry("a"), entry("b")])
        validate_report(report)
        assert report["schema"] == perfjson.SCHEMA
        assert report["tag"] == "t"
        assert len(report["entries"]) == 2

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        report = make_report("t", [entry("a")])
        write_report(path, report)
        assert load_report(path) == report

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("schema"),
            lambda d: d.update(schema="other/9"),
            lambda d: d.update(tag=""),
            lambda d: d.pop("environment"),
            lambda d: d["environment"].pop("cpu_count"),
            lambda d: d.update(entries={}),
            lambda d: d["entries"].append(d["entries"][0]),  # duplicate name
            lambda d: d["entries"][0].update(best=-1.0),
            lambda d: d["entries"][0].update(repeats=0),
            lambda d: d["entries"][0].update(name=""),
        ],
    )
    def test_validate_rejects(self, mutate):
        report = make_report("t", [entry("a")])
        mutate(report)
        with pytest.raises(ValueError):
            validate_report(report)

    def test_write_refuses_invalid(self, tmp_path):
        report = make_report("t", [entry("a")])
        report["entries"][0]["best"] = -1
        with pytest.raises(ValueError):
            write_report(str(tmp_path / "x.json"), report)


class TestCompare:
    def test_flags_regressions_beyond_threshold(self):
        base = make_report("base", [entry("a", best=0.010),
                                    entry("b", best=0.010)])
        cur = make_report("cur", [entry("a", best=0.024),
                                  entry("b", best=0.026)])
        rows = compare_reports(cur, base, max_regression=2.5)
        by_name = {r["name"]: r for r in rows}
        assert not by_name["a"]["regressed"]
        assert by_name["b"]["regressed"]
        assert by_name["b"]["ratio"] == pytest.approx(2.6)

    def test_ignores_entries_present_in_only_one_report(self):
        base = make_report("base", [entry("a"), entry("old")])
        cur = make_report("cur", [entry("a"), entry("new")])
        rows = compare_reports(cur, base)
        assert [r["name"] for r in rows] == ["a"]

    def test_zero_baseline(self):
        base = make_report("base", [entry("a", best=0.0)])
        cur = make_report("cur", [entry("a", best=0.001)])
        (row,) = compare_reports(cur, base)
        assert row["regressed"]


class TestSuite:
    def test_only_filter_runs_a_subset(self):
        entries = run_perf_suite(repeats=1, only="gen/adr3")
        assert [e.name for e in entries] == ["gen/adr3[2]"]
        assert entries[0].best > 0
        assert entries[0].mean >= entries[0].best

    def test_covering_entries_record_sizes(self):
        entries = run_perf_suite(repeats=1, only="covering_build/adr4[3]")
        (e,) = entries
        assert e.meta["rows"] > 0
        assert e.meta["candidates"] > 0

    def test_profile_dir_gets_one_dump_per_entry(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        entries = run_perf_suite(
            repeats=1, only="gen/", profile_dir=str(profile_dir)
        )
        dumps = sorted(p.name for p in profile_dir.iterdir())
        assert dumps == sorted(
            e.name.replace("/", "_").replace("[", "").replace("]", "") + ".txt"
            for e in entries
        )
        text = (profile_dir / dumps[0]).read_text()
        assert "cumulative" in text  # sorted by cumulative time
        assert "generate_eppp" in text  # the entry under profile shows up


class TestCli:
    def test_bench_writes_schema_valid_report(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_smoke.json")
        assert main(["bench", "--json", path, "--repeats", "1",
                     "--only", "gen/adr3"]) == 0
        report = load_report(path)
        assert report["tag"] == "smoke"
        assert [e["name"] for e in report["entries"]] == ["gen/adr3[2]"]

    def test_bench_profile_flag_writes_dumps(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # --profile writes under ./results/
        path = str(tmp_path / "BENCH_smoke.json")
        assert main(["bench", "--json", path, "--repeats", "1",
                     "--only", "gen/adr3", "--profile"]) == 0
        dumps = list((tmp_path / "results" / "profile_smoke").iterdir())
        assert [p.name for p in dumps] == ["gen_adr32.txt"]
        assert "cProfile" in capsys.readouterr().out

    def test_bench_baseline_regression_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fast = make_report("baseline",
                           [entry("gen/adr3[2]", best=1e-9, group="gen")])
        write_report(str(baseline), fast)
        path = str(tmp_path / "BENCH_x.json")
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--json", path, "--repeats", "1",
                  "--only", "gen/adr3", "--baseline", str(baseline)])
        assert exc.value.code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_baseline_pass(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        slow = make_report("baseline",
                           [entry("gen/adr3[2]", best=1e9, group="gen")])
        write_report(str(baseline), slow)
        path = str(tmp_path / "BENCH_x.json")
        assert main(["bench", "--json", path, "--repeats", "1",
                     "--only", "gen/adr3", "--baseline", str(baseline)]) == 0

    def test_tables_perf_json(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_tables.json")
        assert main(["tables", "table1", "--quick", "--perf-json", path]) == 0
        report = load_report(path)
        assert report["tag"] == "tables-table1"
        names = [e["name"] for e in report["entries"]]
        assert any(n.startswith("tables/table1/") and n.endswith("/spp")
                   for n in names)
        # The SPP rows must surface the mincov reduction report.
        spp = [e for e in report["entries"] if e["name"].endswith("/spp")]
        reductions = [e["meta"]["reduction"] for e in spp
                      if "reduction" in e["meta"]]
        assert reductions
        for stats in reductions:
            assert stats["rows"] >= stats["core_rows"] >= 0
            assert stats["columns"] >= stats["core_columns"] >= 0

    def test_committed_artifacts_are_valid_and_fast(self):
        # The committed before/after pair must stay schema-valid, and
        # the kernel build must hold its >= 2x win on every pinned
        # covering_build entry.
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        before = load_report(str(bench_dir / "BENCH_prekernel.json"))
        after = load_report(str(bench_dir / "BENCH_kernels.json"))
        validate_report(load_report(str(bench_dir / "baseline.json")))
        rows = compare_reports(after, before, max_regression=1.0)
        builds = [r for r in rows if r["name"].startswith("covering_build/")]
        assert len(builds) == 3
        for row in builds:
            assert row["ratio"] <= 0.5, row
        e2e = [r for r in rows if r["name"].startswith("e2e/")]
        assert len(e2e) == 3

    def test_committed_genkernels_artifacts_show_generation_speedup(self):
        # The generation-kernel record (BENCH_mincov is its before):
        # every gen entry >= 2x faster than the committed before, every
        # gen entry carries a same-process paired fallback speedup
        # >= 2.5x (the noise-immune statistic), and no e2e entry
        # regressed.
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        before = load_report(str(bench_dir / "BENCH_mincov.json"))
        after = load_report(str(bench_dir / "BENCH_genkernels.json"))
        rows = compare_reports(after, before, max_regression=1.0)
        gens = [r for r in rows if r["name"].startswith("gen/")]
        assert len(gens) == 3
        for row in gens:
            assert row["ratio"] <= 0.5, row
        amap = {e["name"]: e for e in after["entries"]}
        for row in gens:
            meta = amap[row["name"]]["meta"]
            assert meta["fallback_best"] > 0
            assert meta["speedup"] >= 2.5, (row["name"], meta["speedup"])
        e2e = [r for r in rows if r["name"].startswith("e2e/")]
        assert len(e2e) == 3
        for row in e2e:
            assert row["ratio"] <= 1.0, row

    def test_committed_delta_artifacts_show_warm_speedup(self):
        # The incremental re-minimization record: every delta entry
        # carries a same-process paired cold-solve speedup >= 5x with
        # the bit-identical-cover claim checked (the bench raises on
        # any warm/cold mismatch, so identical_cover is load-bearing)
        # and at least one counted warm hit.
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        report = load_report(str(bench_dir / "BENCH_delta.json"))
        deltas = [e for e in report["entries"]
                  if e["name"].startswith("delta/")]
        assert len(deltas) == 3
        for entry in deltas:
            meta = entry["meta"]
            assert meta["identical_cover"] is True, entry["name"]
            assert meta["warm_hits"] >= 1, entry["name"]
            assert meta["cold_best"] > 0, entry["name"]
            assert meta["speedup_mean"] >= 5.0, (
                entry["name"], meta["speedup_mean"])

    def test_committed_mincov_artifacts_show_covering_speedup(self):
        # The mincov before/after pair: >= 1.5x mean improvement on at
        # least two covering_solve entries, with the cover costs
        # unchanged from the pre-mincov greedy (pinned values) and the
        # reduction report present in the after entries.
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        before = load_report(str(bench_dir / "BENCH_premincov.json"))
        after = load_report(str(bench_dir / "BENCH_mincov.json"))
        bmap = {e["name"]: e for e in before["entries"]}
        amap = {e["name"]: e for e in after["entries"]}
        solves = [n for n in bmap if n.startswith("covering_solve/")]
        assert len(solves) == 3
        wins = sum(
            1 for n in solves if bmap[n]["mean"] / amap[n]["mean"] >= 1.5
        )
        assert wins >= 2
        expected_costs = {
            "covering_solve/adr4[3]": 27,
            "covering_solve/adr4[4]": 20,
            "covering_solve/life[0]": 131,
        }
        for name, cost in expected_costs.items():
            assert amap[name]["meta"]["cost"] == cost
            assert "reduction" in amap[name]["meta"]
