"""Tests for the experiment harness (tables/figures machinery)."""

from repro.bench import harness
from repro.bench.paper_data import FIG34_TEXT_POINTS, TABLE1, TABLE3


class TestTable1:
    def test_row_on_scaled_adder(self):
        m = harness.run_table1_row("adr2")
        assert m.function == "adr2"
        assert m.sp_literals > m.spp_literals  # the paper's headline claim
        assert m.spp_eppps > 0
        assert not m.truncated

    def test_budget_cap_marks_truncated(self):
        m = harness.run_table1_row("adr3", max_pseudoproducts=50)
        assert m.truncated
        assert m.spp_literals > 0  # still a verified cover

    def test_render_includes_paper_columns(self):
        m = harness.run_table1_row("adr2")
        text = harness.render_table1([m])
        assert "paper L(SP)" in text
        assert "adr2" in text


class TestTable2:
    def test_row_and_speed_ordering(self):
        m = harness.run_table2_row("adr2", 1, naive_timeout=None)
        assert m.comparisons_alg2 <= m.comparisons_naive
        assert m.literals > 0
        text = harness.render_table2([m])
        assert "adr2(1)" in text

    def test_timeout_stars_naive(self):
        m = harness.run_table2_row("adr3", 3, naive_timeout=0.0)
        assert m.seconds_naive is None
        assert "*" in harness.render_table2([m])


class TestTable3:
    def test_row_ordering(self):
        m = harness.run_table3_row("adr2")
        assert m.spp_literals <= m.spp0_literals
        assert "adr2" in harness.render_table3([m])

    def test_exact_budget_stars(self):
        m = harness.run_table3_row("adr3", exact_budget=10)
        assert m.spp_literals is None
        assert "*" in harness.render_table3([m])


class TestSweep:
    def test_sweep_shape(self):
        points = harness.run_spp_k_sweep("adr2", ks=[0, 1, 2])
        assert [p.k for p in points] == [0, 1, 2]
        assert all(p.literals > 0 for p in points)
        assert "SPP_k" in harness.render_fig34(points)


class TestPaperData:
    def test_table1_halving_claim(self):
        """The stored paper numbers themselves satisfy the 'SPP ≈ half
        of SP on average' claim (sanity of transcription)."""
        ratios = [r.spp_literals / r.sp_literals for r in TABLE1]
        assert 0.4 < sum(ratios) / len(ratios) < 0.75

    def test_table3_midpoint_transcription(self):
        """Av matches (|SP|+|SPP|)/2 for the rows present in Table 1."""
        sp = {r.function: r.sp_literals for r in TABLE1}
        spp = {r.function: r.spp_literals for r in TABLE1}
        for row in TABLE3:
            if row.average is None or row.function not in sp:
                continue
            if row.function == "mlp4":
                continue  # the paper's own Av for mlp4 is inconsistent
            midpoint = (sp[row.function] + spp[row.function]) / 2
            assert abs(row.average - midpoint) <= 1

    def test_fig34_exact_matches_table1(self):
        assert FIG34_TEXT_POINTS["dist"]["spp_k"][7][0] == 422
