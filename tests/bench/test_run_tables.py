"""Tests for the run_tables.py harness script."""

import importlib.util
import pathlib
import sys

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "run_tables.py"


@pytest.fixture(scope="module")
def run_tables():
    spec = importlib.util.spec_from_file_location("run_tables", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules["run_tables"] = module
    spec.loader.exec_module(module)
    return module


class TestScript:
    def test_table1_with_names(self, run_tables, capsys):
        assert run_tables.main(["table1", "--names", "adr2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "adr2" in out

    def test_table3_with_names(self, run_tables, capsys):
        assert run_tables.main(["table3", "--names", "adr2", "--budget", "100000"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_fig34_selected_k(self, run_tables, capsys):
        assert run_tables.main(
            ["fig34", "--function", "adr2", "--k", "0", "--k", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "SPP_k" in out

    def test_bad_target_rejected(self, run_tables):
        with pytest.raises(SystemExit):
            run_tables.main(["table9"])
