"""Tests for the benchmark registry and generators."""

import pytest

from repro.bench.prng import SplitMix64
from repro.bench.rom import linear_rom, random_rom
from repro.bench.suite import BENCHMARKS, benchmark_names, get_benchmark
from repro.bench.surrogate import arithmetic_mix


class TestRegistry:
    def test_every_spec_signature_is_respected(self):
        # Building validates signature; do it for the cheap entries.
        for name in ["adr2", "adr3", "mlp2", "dist3", "life6", "csa2", "adr4"]:
            func = get_benchmark(name)
            spec = BENCHMARKS[name]
            assert func.n == spec.n_inputs
            assert func.num_outputs == spec.n_outputs

    def test_paper_functions_registered(self):
        from repro.bench.paper_data import TABLE1, TABLE2, TABLE3

        for row in TABLE1:
            assert row.function in BENCHMARKS
        for row in TABLE2:
            assert row.function in BENCHMARKS
        for row in TABLE3:
            assert row.function in BENCHMARKS

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("does-not-exist")

    def test_benchmark_names_filter(self):
        assert "adr2" in benchmark_names()
        assert "adr2" not in benchmark_names(include_scaled=False)
        assert "adr4" in benchmark_names(include_scaled=False)

    def test_caching(self):
        assert get_benchmark("adr2") is get_benchmark("adr2")


class TestDeterminism:
    def test_prng_sequence_is_fixed(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(8)] == [b.next_u64() for _ in range(8)]
        # Known-answer check (SplitMix64 reference, seed 1234567).
        assert SplitMix64(1234567).next_u64() == 6457827717110365317

    def test_rom_deterministic(self):
        a = random_rom("x", 4, 3, seed=7)
        b = random_rom("x", 4, 3, seed=7)
        c = random_rom("x", 4, 3, seed=8)
        assert [f.on_set for f in a.outputs] == [f.on_set for f in b.outputs]
        assert [f.on_set for f in a.outputs] != [f.on_set for f in c.outputs]

    def test_surrogate_deterministic(self):
        a = arithmetic_mix("y", 5, 2, seed=1)
        b = arithmetic_mix("y", 5, 2, seed=1)
        assert [f.on_set for f in a.outputs] == [f.on_set for f in b.outputs]

    def test_linear_rom_outputs_are_affine(self):
        m = linear_rom("z", 4, 5, seed=3)
        for f in m.outputs:
            # An affine function's on-set is a coset or its complement,
            # i.e. |on| is 0, 8 or 16 for n=4 (support nonzero → 8).
            assert len(f.on_set) == 8


class TestPrng:
    def test_below_bounds(self):
        rng = SplitMix64(1)
        for _ in range(100):
            assert 0 <= rng.below(7) < 7

    def test_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).below(0)

    def test_nonzero_mask(self):
        rng = SplitMix64(1)
        for _ in range(20):
            assert rng.nonzero_mask(5) != 0
