"""Tests for the partition trie (Section 3.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.cex import cex_of
from repro.core.exor import ExorFactor
from repro.core.cex import CexExpression
from repro.core.pseudocube import Pseudocube
from repro.core.structure import structure_of
from repro.trie.partition_trie import PartitionTrie, _path_of_structure

from tests.conftest import pseudocubes

F = ExorFactor.from_literals


class TestPath:
    def test_figure2_path(self):
        """(x0⊕x̄1)·x4·(x0⊕x2⊕x̄5)·(x3⊕x6)·(x2⊕x3⊕x8): each factor is
        its NC-node followed by its C-nodes in increasing order."""
        cex = CexExpression(
            9,
            (F([0], [1]), F([4]), F([0, 2], [5]), F([3, 6]), F([2, 3], [8])),
        )
        path = _path_of_structure(cex.structure())
        assert path == [
            ("NC", 1), ("C", 0),
            ("NC", 4),
            ("NC", 5), ("C", 0), ("C", 2),
            ("NC", 6), ("C", 3),
            ("NC", 8), ("C", 2), ("C", 3),
        ]


class TestInsertSearch:
    def test_insert_and_contains(self):
        trie = PartitionTrie()
        pc = Pseudocube.from_points(3, [0b011, 0b100])
        assert trie.insert(pc)
        assert pc in trie
        assert len(trie) == 1

    def test_duplicate_insert_returns_false(self):
        trie = PartitionTrie()
        pc = Pseudocube.from_point(3, 5)
        assert trie.insert(pc)
        assert not trie.insert(pc)
        assert len(trie) == 1

    def test_search_absent(self):
        trie = PartitionTrie()
        assert Pseudocube.from_point(3, 5) not in trie

    def test_insert_cex(self):
        trie = PartitionTrie()
        pc = Pseudocube.from_points(3, [0b011, 0b100])
        assert trie.insert_cex(cex_of(pc))
        assert pc in trie

    @given(st.lists(pseudocubes(min_n=4, max_n=4), max_size=12))
    def test_size_counts_distinct(self, pcs):
        trie = PartitionTrie()
        for pc in pcs:
            trie.insert(pc)
        assert len(trie) == len(set(pcs))
        assert sorted(map(hash, trie.items())) == sorted(map(hash, set(pcs)))


class TestGrouping:
    def test_property1_same_parent_same_structure(self):
        """Leaves with the same parent represent expressions with the
        same structure (Property 1)."""
        trie = PartitionTrie()
        pcs = [
            Pseudocube.from_points(3, [0b000, 0b011]),
            Pseudocube.from_points(3, [0b100, 0b111]),  # same structure
            Pseudocube.from_points(3, [0b000, 0b101]),  # different
            Pseudocube.from_point(3, 0b010),
        ]
        for pc in pcs:
            trie.insert(pc)
        groups = list(trie.groups())
        by_size = sorted(len(g) for g in groups)
        assert by_size == [1, 1, 2]
        for group in groups:
            structures = {structure_of(pc) for pc in group}
            assert len(structures) == 1

    @given(st.lists(pseudocubes(min_n=5, max_n=5), max_size=20))
    def test_groups_partition_by_structure(self, pcs):
        trie = PartitionTrie()
        for pc in pcs:
            trie.insert(pc)
        seen = []
        structures_seen = set()
        for group in trie.groups():
            assert group, "empty group yielded"
            structures = {pc.basis for pc in group}
            assert len(structures) == 1
            key = structures.pop()
            assert key not in structures_seen, "structure split across groups"
            structures_seen.add(key)
            seen.extend(group)
        assert len(seen) == len(set(pcs))


class TestFingerprint:
    def test_empty_trie_fingerprint_is_stable(self):
        assert PartitionTrie().fingerprint == PartitionTrie().fingerprint

    def test_insert_changes_fingerprint(self):
        trie = PartitionTrie()
        before = trie.fingerprint
        trie.insert(Pseudocube.from_point(3, 5))
        assert trie.fingerprint != before

    def test_duplicate_insert_keeps_fingerprint(self):
        trie = PartitionTrie()
        pc = Pseudocube.from_points(3, [0b011, 0b100])
        trie.insert(pc)
        fp = trie.fingerprint
        trie.insert(pc)
        assert trie.fingerprint == fp

    @given(st.lists(pseudocubes(min_n=4, max_n=4), min_size=1, max_size=10))
    def test_fingerprint_is_insertion_order_independent(self, pcs):
        forward, backward = PartitionTrie(), PartitionTrie()
        for pc in pcs:
            forward.insert(pc)
        for pc in reversed(pcs):
            backward.insert(pc)
        assert forward.fingerprint == backward.fingerprint

    def test_mutating_onset_changes_fingerprint(self):
        """The delta layer's staleness guard: the candidate tries of a
        function and of a one-point edit of it must fingerprint
        differently, so a context built before the edit is detectably
        stale."""
        from repro.boolfunc.function import BoolFunc
        from repro.minimize.eppp import generate_eppp

        base = BoolFunc(3, frozenset({0, 3, 5, 6}))
        edited = BoolFunc(3, frozenset({0, 3, 5, 6, 7}))
        fps = []
        for func in (base, edited):
            trie = PartitionTrie()
            for pc in generate_eppp(func).eppps:
                trie.insert(pc)
            fps.append(trie.fingerprint)
        assert fps[0] != fps[1]


class TestRender:
    def test_render_marks_node_kinds(self):
        trie = PartitionTrie()
        trie.insert(Pseudocube.from_points(3, [0b000, 0b011]))
        text = trie.render()
        assert "(root)" in text
        assert "((" in text  # an NC-node
        assert "[" in text  # a leaf vector
