"""Tests for trie node plumbing."""

from repro.trie.nodes import C_NODE, NC_NODE, Leaf, TrieNode


class TestTrieNode:
    def test_ensure_child_creates_once(self):
        root = TrieNode()
        a = root.ensure_child(NC_NODE, 3)
        b = root.ensure_child(NC_NODE, 3)
        assert a is b
        assert a.kind == NC_NODE and a.label == 3

    def test_child_lookup(self):
        root = TrieNode()
        root.ensure_child(C_NODE, 1)
        assert root.child(C_NODE, 1) is not None
        assert root.child(C_NODE, 2) is None
        assert root.child(NC_NODE, 1) is None

    def test_ordered_children_nc_before_c(self):
        """Paper ordering: NC-nodes by label, then C-nodes by label."""
        root = TrieNode()
        root.ensure_child(C_NODE, 0)
        root.ensure_child(NC_NODE, 5)
        root.ensure_child(NC_NODE, 2)
        root.ensure_child(C_NODE, 7)
        kinds = [(c.kind, c.label) for c in root.ordered_children()]
        assert kinds == [(NC_NODE, 2), (NC_NODE, 5), (C_NODE, 0), (C_NODE, 7)]

    def test_leaf_parent_flag(self):
        node = TrieNode()
        assert not node.is_leaf_parent
        node.leaves[(0, 1)] = Leaf((0, 1), "payload")
        assert node.is_leaf_parent
