"""Tests for the dict-backed structure index, including agreement with
the partition trie."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pseudocube import Pseudocube
from repro.trie.index import StructureIndex
from repro.trie.partition_trie import PartitionTrie

from tests.conftest import pseudocubes


class TestBasics:
    def test_insert_contains_len(self):
        index = StructureIndex()
        pc = Pseudocube.from_point(4, 9)
        assert not index
        assert index.insert(pc)
        assert pc in index
        assert not index.insert(pc)
        assert len(index) == 1
        assert bool(index)

    def test_groups_by_structure(self):
        index = StructureIndex()
        a = Pseudocube.from_points(3, [0b000, 0b011])
        b = Pseudocube.from_points(3, [0b100, 0b111])
        c = Pseudocube.from_points(3, [0b000, 0b101])
        for pc in (a, b, c):
            index.insert(pc)
        groups = sorted((len(g) for g in index.groups()))
        assert groups == [1, 2]


class TestColumnarViews:
    def test_group_bases_in_iteration_order(self):
        index = StructureIndex()
        a = Pseudocube.from_points(3, [0b000, 0b011])
        b = Pseudocube.from_points(3, [0b100, 0b111])  # same structure as a
        c = Pseudocube.from_points(3, [0b000, 0b101])
        for pc in (a, b, c):
            index.insert(pc)
        assert index.group_bases() == [a.basis, c.basis]

    def test_packed_arrays_roundtrip(self):
        pytest.importorskip("numpy")
        from repro.kernels import gf2mat

        if not gf2mat.AVAILABLE:
            pytest.skip("numpy kernels disabled")
        index = StructureIndex()
        pcs = [
            Pseudocube.from_points(3, [0b000, 0b011]),
            Pseudocube.from_points(3, [0b100, 0b111]),
            Pseudocube.from_points(3, [0b000, 0b101]),
        ]
        for pc in pcs:
            index.insert(pc)
        anchors, sizes, rows = index.packed_arrays()
        assert anchors.tolist() == [pcs[0].anchor, pcs[1].anchor, pcs[2].anchor]
        assert sizes.tolist() == [2, 1]
        assert [gf2mat.unpack_basis(r) for r in rows] == index.group_bases()

    def test_packed_arrays_none_on_mixed_rank(self):
        pytest.importorskip("numpy")
        from repro.kernels import gf2mat

        if not gf2mat.AVAILABLE:
            pytest.skip("numpy kernels disabled")
        index = StructureIndex()
        index.insert(Pseudocube.from_point(3, 1))  # rank 0
        index.insert(Pseudocube.from_points(3, [0b000, 0b011]))  # rank 1
        assert index.packed_arrays() is None

    def test_packed_arrays_none_when_empty(self):
        assert StructureIndex().packed_arrays() is None


class TestAgreementWithTrie:
    @given(st.lists(pseudocubes(min_n=5, max_n=5), max_size=25))
    def test_same_partition_as_trie(self, pcs):
        """The hash index and the partition trie induce exactly the same
        same-structure partition (the property Algorithm 2 relies on)."""
        index = StructureIndex()
        trie = PartitionTrie()
        for pc in pcs:
            assert index.insert(pc) == trie.insert(pc)
        index_groups = {frozenset(g) for g in index.groups()}
        trie_groups = {frozenset(g) for g in trie.groups()}
        assert index_groups == trie_groups
