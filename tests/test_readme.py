"""The README's code examples must actually run and print what they
claim."""

from repro import BoolFunc, assert_equivalent, minimize_sp, minimize_spp


class TestQuickstart:
    def test_readme_quickstart_block(self):
        f = BoolFunc.from_lambda(4, lambda p: p.bit_count() == 1 or p == 0b1111)

        sp = minimize_sp(f)
        spp = minimize_spp(f)

        assert_equivalent(spp.form, f)
        assert sp.num_literals == 20
        assert spp.num_literals == 12

    def test_package_docstring_example(self):
        f = BoolFunc.from_lambda(4, lambda p: bin(p).count("1") % 2 == 1)
        spp = minimize_spp(f)
        sp = minimize_sp(f)
        assert spp.num_literals < sp.num_literals
        assert_equivalent(spp.form, f)
