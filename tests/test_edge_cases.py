"""Edge cases across the whole pipeline: tiny spaces, constants,
degenerate shapes."""

import pytest

from repro import (
    BoolFunc,
    minimize_sp,
    minimize_spp,
    minimize_spp_bounded,
    minimize_spp_k,
)
from repro.boolfunc.function import MultiBoolFunc
from repro.core.cex import cex_of
from repro.core.pseudocube import Pseudocube
from repro.minimize.multi import minimize_spp_multi
from repro.minimize.naive import generate_eppp_naive
from repro.minimize.eppp import generate_eppp
from repro.verify import assert_equivalent


class TestOneVariable:
    def test_identity(self):
        func = BoolFunc(1, frozenset({1}))
        for result in (minimize_spp(func), minimize_sp(func),
                       minimize_spp_k(func, 0), minimize_spp_bounded(func, 1)):
            assert_equivalent(result.form, func)
            assert result.num_literals == 1

    def test_negation(self):
        func = BoolFunc(1, frozenset({0}))
        result = minimize_spp(func)
        assert_equivalent(result.form, func)
        assert str(result.form) == "x0'"

    def test_constant_one(self):
        func = BoolFunc(1, frozenset({0, 1}))
        result = minimize_spp(func)
        assert result.num_literals == 0  # CEX of B^1 is the constant 1
        assert_equivalent(result.form, func)


class TestConstants:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_constant_zero_everywhere(self, n):
        func = BoolFunc(n, frozenset())
        assert minimize_spp(func).form.num_pseudoproducts == 0
        assert minimize_sp(func).form.num_pseudoproducts == 0
        assert minimize_spp_k(func, 0).form.num_pseudoproducts == 0

    @pytest.mark.parametrize("n", [2, 4])
    def test_tautology_everywhere(self, n):
        func = BoolFunc(n, frozenset(range(1 << n)))
        for result in (minimize_spp(func), minimize_spp_k(func, 0)):
            assert_equivalent(result.form, func)

    def test_all_dont_care(self):
        """on empty, dc everything: nothing to cover."""
        func = BoolFunc(3, frozenset(), frozenset(range(8)))
        assert minimize_spp(func).form.num_pseudoproducts == 0


class TestDegenerate:
    def test_two_point_space(self):
        """n=1 naive and grouped generation agree."""
        func = BoolFunc(1, frozenset({0, 1}))
        a = generate_eppp(func)
        b = generate_eppp_naive(func)
        assert set(a.eppps) == set(b.eppps)

    def test_single_output_multibool(self):
        func = MultiBoolFunc(2, (BoolFunc(2, frozenset({1, 2})),))
        result = minimize_spp_multi(func)
        assert_equivalent(result.forms[0], func[0])

    def test_cex_of_point_in_one_var_space(self):
        pc = Pseudocube.from_point(1, 0)
        assert str(cex_of(pc)) == "x0'"

    def test_minimize_function_equal_to_single_minterm(self):
        func = BoolFunc(5, frozenset({17}))
        result = minimize_spp(func)
        assert result.num_literals == 5
        assert_equivalent(result.form, func)

    def test_dc_only_difference(self):
        """Same on-set, different dc: covers may differ but both verify."""
        plain = BoolFunc(3, frozenset({1, 2}))
        with_dc = BoolFunc(3, frozenset({1, 2}), frozenset({4, 7}))
        r1 = minimize_spp(plain, covering="exact")
        r2 = minimize_spp(with_dc, covering="exact")
        assert_equivalent(r1.form, plain)
        assert_equivalent(r2.form, with_dc)
        assert r2.num_literals <= r1.num_literals
