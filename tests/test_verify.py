"""Tests for semantic verification."""

import pytest

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.verify import assert_equivalent, equivalent, verify_form


def _minterm_form(n, points):
    return SppForm(n, tuple(Pseudocube.from_point(n, p) for p in points))


class TestVerifyForm:
    def test_exact_match(self):
        func = BoolFunc(3, frozenset({1, 5}))
        report = verify_form(_minterm_form(3, [1, 5]), func)
        assert report
        assert report.ok

    def test_missing_point(self):
        func = BoolFunc(3, frozenset({1, 5}))
        report = verify_form(_minterm_form(3, [1]), func)
        assert not report
        assert report.uncovered_on_points == (5,)

    def test_spurious_point(self):
        func = BoolFunc(3, frozenset({1}))
        report = verify_form(_minterm_form(3, [1, 2]), func)
        assert not report
        assert report.covered_off_points == (2,)

    def test_dc_points_may_fall_either_way(self):
        func = BoolFunc(3, frozenset({1}), frozenset({2}))
        assert verify_form(_minterm_form(3, [1]), func).ok
        assert verify_form(_minterm_form(3, [1, 2]), func).ok

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            verify_form(_minterm_form(2, [1]), BoolFunc(3, frozenset()))


class TestAssertEquivalent:
    def test_passes_silently(self):
        func = BoolFunc(2, frozenset({3}))
        assert_equivalent(_minterm_form(2, [3]), func)

    def test_raises_with_counterexample(self):
        func = BoolFunc(2, frozenset({3}))
        with pytest.raises(AssertionError, match="misses"):
            assert_equivalent(SppForm(2, ()), func)
        with pytest.raises(AssertionError, match="covers"):
            assert_equivalent(_minterm_form(2, [0, 3]), func)


class TestEquivalent:
    def test_forms(self):
        a = _minterm_form(2, [1, 2])
        b = SppForm(2, (Pseudocube.from_points(2, [1, 2]),))
        assert equivalent(a, b)
        assert not equivalent(a, _minterm_form(2, [1]))
        assert not equivalent(a, _minterm_form(3, [1, 2]))
