"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import itertools

from hypothesis import strategies as st

from repro.core import gf2
from repro.core.pseudocube import Pseudocube


@st.composite
def pseudocubes(draw, min_n: int = 2, max_n: int = 7, max_degree: int | None = None):
    """A random pseudocube in canonical affine form."""
    n = draw(st.integers(min_n, max_n))
    cap = n if max_degree is None else min(max_degree, n)
    m = draw(st.integers(0, cap))
    vectors = draw(
        st.lists(st.integers(1, (1 << n) - 1), min_size=m, max_size=3 * m + 1)
    )
    basis = gf2.rref(vectors)[:m]
    # Re-reduce in case truncation broke full reduction (it cannot —
    # dropping trailing vectors of an RREF keeps it an RREF — but be
    # explicit about the invariant).
    anchor = gf2.reduce_vector(basis, draw(st.integers(0, (1 << n) - 1)))
    return Pseudocube(n, anchor, basis)


@st.composite
def pseudocube_pairs_same_structure(draw, min_n: int = 2, max_n: int = 6):
    """Two distinct pseudocubes with equal structure (Theorem 1 inputs)."""
    pc = draw(pseudocubes(min_n=min_n, max_n=max_n))
    if pc.degree == pc.n:  # whole space has a single coset; shrink it
        pc = Pseudocube(pc.n, pc.anchor, pc.basis[:-1])
    # A different anchor in a different coset of the same direction space.
    alpha = draw(st.integers(1, (1 << pc.n) - 1))
    other_anchor = gf2.reduce_vector(pc.basis, pc.anchor ^ alpha)
    if other_anchor == pc.anchor:
        other_anchor = _different_coset_anchor(pc)
    other = Pseudocube(pc.n, other_anchor, pc.basis)
    return pc, other


def _different_coset_anchor(pc: Pseudocube) -> int:
    """Any anchor in a coset of pc.basis different from pc's."""
    for alpha in range(1, 1 << pc.n):
        anchor = gf2.reduce_vector(pc.basis, pc.anchor ^ alpha)
        if anchor != pc.anchor:
            return anchor
    raise AssertionError("pseudocube covers the whole space")


def all_pseudocubes(n: int):
    """Exhaustively enumerate every pseudocube of B^n (for small n).

    Iterates over all (dimension, basis, anchor) canonical forms by
    brute force over point sets — only usable for n <= 4.
    """
    space = list(range(1 << n))
    seen = set()
    for size_log in range(n + 1):
        size = 1 << size_log
        for points in itertools.combinations(space, size):
            try:
                pc = Pseudocube.from_points(n, points)
            except ValueError:
                continue
            if pc not in seen:
                seen.add(pc)
                yield pc
