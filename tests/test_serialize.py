"""Tests for JSON serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.core.spp_form import SppForm
from repro.errors import CorruptRecordError
from repro.minimize.exact import minimize_spp
from repro.serialize import (
    checksum_of,
    dump_json_file,
    dumps,
    form_from_dict,
    form_to_dict,
    func_from_dict,
    func_to_dict,
    load_json_file,
    loads,
    unwrap_checksum,
    wrap_checksum,
)

from tests.conftest import pseudocubes


class TestForms:
    @given(st.lists(pseudocubes(min_n=4, max_n=4), max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, pcs):
        form = SppForm(4, tuple(pcs))
        restored = loads(dumps(form))
        assert restored == form

    def test_roundtrip_of_minimized_form(self):
        func = BoolFunc(4, frozenset({1, 2, 4, 8, 15}))
        form = minimize_spp(func).form
        assert form_from_dict(form_to_dict(form)) == form

    def test_validation_rejects_corrupt_basis(self):
        func = BoolFunc(3, frozenset({1, 2}))
        data = form_to_dict(minimize_spp(func).form)
        data["pseudoproducts"][0]["basis"] = ["6", "6"]  # not RREF
        with pytest.raises(ValueError):
            form_from_dict(data)

    def test_kind_mismatch(self):
        func = BoolFunc(3, frozenset({1}))
        with pytest.raises(ValueError):
            form_from_dict(func_to_dict(func))


class TestFunctions:
    @given(
        st.sets(st.integers(0, 15), max_size=16),
        st.sets(st.integers(0, 15), max_size=4),
    )
    def test_roundtrip_boolfunc(self, on, dc):
        func = BoolFunc(4, frozenset(on) - frozenset(dc), frozenset(dc) - frozenset(on))
        assert loads(dumps(func)) == func

    def test_roundtrip_multiboolfunc(self):
        func = MultiBoolFunc(
            3,
            (BoolFunc(3, frozenset({1})), BoolFunc(3, frozenset({2}), frozenset({3}))),
            name="pair",
        )
        restored = loads(dumps(func))
        assert restored.name == "pair"
        assert restored.outputs == func.outputs

    def test_version_check(self):
        data = func_to_dict(BoolFunc(2, frozenset()))
        data["version"] = 99
        with pytest.raises(ValueError):
            func_from_dict(data)


class TestChecksumEnvelope:
    def test_wrap_unwrap_round_trip(self):
        obj = {"rung": "exact", "literals": 7}
        env = wrap_checksum(obj)
        assert env["kind"] == "checked_record"
        assert env["sha256"] == checksum_of(obj)
        assert unwrap_checksum(env) == obj

    def test_mismatch_raises_corrupt_record(self):
        env = wrap_checksum({"literals": 7})
        env["payload"]["literals"] = 8
        with pytest.raises(CorruptRecordError):
            unwrap_checksum(env, path="x.json")

    def test_legacy_record_passes_through(self):
        # Pre-envelope records (plain dicts) must stay readable.
        assert unwrap_checksum({"literals": 7}) == {"literals": 7}

    def test_checksum_is_key_order_independent(self):
        assert checksum_of({"a": 1, "b": 2}) == checksum_of({"b": 2, "a": 1})


class TestJsonFiles:
    def test_checksummed_file_round_trip(self, tmp_path):
        path = tmp_path / "rec.json"
        dump_json_file(path, {"literals": 7}, checksum=True, fsync=True)
        assert '"checked_record"' in path.read_text(encoding="ascii")
        assert load_json_file(path) == {"literals": 7}

    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        dump_json_file(tmp_path / "rec.json", {"a": 1}, fsync=True)
        assert [p.name for p in tmp_path.iterdir()] == ["rec.json"]

    def test_undecodable_file_raises_corrupt_record(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text("{torn", encoding="ascii")
        with pytest.raises(CorruptRecordError) as exc_info:
            load_json_file(path)
        assert exc_info.value.path == str(path)
        # Pre-taxonomy callers catch ValueError; this must still be one.
        with pytest.raises(ValueError):
            load_json_file(path)
