"""Tests for JSON serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.core.spp_form import SppForm
from repro.minimize.exact import minimize_spp
from repro.serialize import (
    dumps,
    form_from_dict,
    form_to_dict,
    func_from_dict,
    func_to_dict,
    loads,
)

from tests.conftest import pseudocubes


class TestForms:
    @given(st.lists(pseudocubes(min_n=4, max_n=4), max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, pcs):
        form = SppForm(4, tuple(pcs))
        restored = loads(dumps(form))
        assert restored == form

    def test_roundtrip_of_minimized_form(self):
        func = BoolFunc(4, frozenset({1, 2, 4, 8, 15}))
        form = minimize_spp(func).form
        assert form_from_dict(form_to_dict(form)) == form

    def test_validation_rejects_corrupt_basis(self):
        func = BoolFunc(3, frozenset({1, 2}))
        data = form_to_dict(minimize_spp(func).form)
        data["pseudoproducts"][0]["basis"] = ["6", "6"]  # not RREF
        with pytest.raises(ValueError):
            form_from_dict(data)

    def test_kind_mismatch(self):
        func = BoolFunc(3, frozenset({1}))
        with pytest.raises(ValueError):
            form_from_dict(func_to_dict(func))


class TestFunctions:
    @given(
        st.sets(st.integers(0, 15), max_size=16),
        st.sets(st.integers(0, 15), max_size=4),
    )
    def test_roundtrip_boolfunc(self, on, dc):
        func = BoolFunc(4, frozenset(on) - frozenset(dc), frozenset(dc) - frozenset(on))
        assert loads(dumps(func)) == func

    def test_roundtrip_multiboolfunc(self):
        func = MultiBoolFunc(
            3,
            (BoolFunc(3, frozenset({1})), BoolFunc(3, frozenset({2}), frozenset({3}))),
            name="pair",
        )
        restored = loads(dumps(func))
        assert restored.name == "pair"
        assert restored.outputs == func.outputs

    def test_version_check(self):
        data = func_to_dict(BoolFunc(2, frozenset()))
        data["version"] = 99
        with pytest.raises(ValueError):
            func_from_dict(data)
