"""Tests for the deterministic fault-injection plans."""

import os

import pytest

from repro import faults
from repro.faults import ENV_VAR, FaultPlan, FaultRule


class TestRuleMatching:
    def test_exact_site(self):
        rule = FaultRule(site="cache.put", kind="error")
        assert rule.matches("cache.put", {})
        assert not rule.matches("cache.get", {})

    def test_glob_site(self):
        rule = FaultRule(site="manifest.*", kind="error")
        assert rule.matches("manifest.store", {})
        assert rule.matches("manifest.journal", {})
        assert not rule.matches("cache.put", {})

    def test_label_substring_match(self):
        rule = FaultRule(site="s", kind="error", match="poison")
        assert rule.matches("s", {"label": "poison[0]"})
        assert not rule.matches("s", {"label": "healthy[0]"})
        assert not rule.matches("s", {})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="explode")

    def test_probability_range_checked(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="error", p=1.5)


class TestWindows:
    def test_fires_once_by_default(self):
        plan = FaultPlan([FaultRule(site="s", kind="error")])
        with pytest.raises(RuntimeError):
            plan.maybe_fire("s")
        plan.maybe_fire("s")  # window exhausted: no-op

    def test_after_skips_initial_hits(self):
        plan = FaultPlan([FaultRule(site="s", kind="error", after=2, times=1)])
        plan.maybe_fire("s")
        plan.maybe_fire("s")
        with pytest.raises(RuntimeError):
            plan.maybe_fire("s")
        plan.maybe_fire("s")

    def test_unbounded_window(self):
        plan = FaultPlan([FaultRule(site="s", kind="memory", times=None)])
        for _ in range(5):
            with pytest.raises(MemoryError):
                plan.maybe_fire("s")

    def test_probability_is_seed_deterministic(self):
        def decisions(seed):
            plan = FaultPlan(
                [FaultRule(site="s", kind="error", p=0.5, times=None)], seed=seed
            )
            out = []
            for _ in range(32):
                try:
                    plan.maybe_fire("s")
                    out.append(False)
                except RuntimeError:
                    out.append(True)
            return out

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)  # astronomically unlikely to tie
        assert 4 < sum(decisions(7)) < 28    # roughly half fire


class TestGlobalCounters:
    def test_counter_dir_sequences_across_instances(self, tmp_path):
        # Two plan instances (≈ two processes) share one hit sequence.
        def make():
            return FaultPlan(
                [FaultRule(site="s", kind="error", after=1, times=1)],
                counter_dir=str(tmp_path),
            )

        make().maybe_fire("s")          # hit 1: skipped by after=1
        with pytest.raises(RuntimeError):
            make().maybe_fire("s")      # hit 2: fires, from a fresh instance
        make().maybe_fire("s")          # hit 3: window exhausted


class TestMangle:
    def test_truncate_halves_text(self):
        plan = FaultPlan([FaultRule(site="w", kind="truncate")])
        assert plan.mangle("w", "0123456789") == "01234"

    def test_corrupt_breaks_json(self):
        import json

        plan = FaultPlan([FaultRule(site="w", kind="corrupt")])
        mangled = plan.mangle("w", json.dumps({"a": 1}))
        with pytest.raises(ValueError):
            json.loads(mangled)

    def test_non_matching_site_passthrough(self):
        plan = FaultPlan([FaultRule(site="w", kind="corrupt")])
        assert plan.mangle("elsewhere", "text") == "text"


class TestEnvPropagation:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultRule(site="s", kind="slow", arg=0.25, p=0.5, times=None)],
            seed=42,
            counter_dir="/tmp/counters",
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.rules == plan.rules
        assert restored.seed == 42
        assert restored.counter_dir == "/tmp/counters"

    def test_install_and_active(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert faults.active() is None
        plan = FaultPlan([FaultRule(site="s", kind="error")], seed=3)
        faults.install(plan)
        try:
            assert os.environ[ENV_VAR] == plan.to_json()
            assert faults.active().seed == 3
        finally:
            faults.uninstall()
        assert faults.active() is None

    def test_module_hooks_are_noops_without_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        faults.maybe_fire("anything")
        assert faults.mangle("anything", "text") == "text"

    def test_from_env_missing_is_none(self):
        assert FaultPlan.from_env({}) is None
