"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_minimize_defaults(self):
        args = build_parser().parse_args(["minimize", "adr2"])
        assert args.method == "exact"
        assert args.covering == "greedy"


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "adr4" in out and "surrogate" in out

    def test_benchmarks_dump_is_pla(self, capsys):
        assert main(["benchmarks", "--dump", "adr2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(".i 4")
        from repro.boolfunc.pla import parse_pla

        parsed = parse_pla(out)
        assert parsed.num_outputs == 3

    def test_minimize_benchmark_by_name(self, capsys):
        assert main(["minimize", "adr2", "--method", "exact", "--show"]) == 0
        out = capsys.readouterr().out
        assert "SPP" in out and "literals" in out

    def test_minimize_single_output_heuristic(self, capsys):
        assert main(["minimize", "adr3", "--output", "2", "--method",
                     "heuristic", "-k", "1"]) == 0
        assert "SPP" in capsys.readouterr().out

    def test_minimize_sp(self, capsys):
        assert main(["minimize", "adr2", "--method", "sp"]) == 0
        assert "SP " in capsys.readouterr().out

    def test_minimize_bounded(self, capsys):
        assert main(["minimize", "adr2", "--method", "bounded", "--bound", "2"]) == 0
        assert "SPP" in capsys.readouterr().out

    def test_minimize_aox(self, capsys):
        assert main(["minimize", "adr2", "--method", "aox", "--show"]) == 0
        assert "AOX" in capsys.readouterr().out

    def test_minimize_pla_file(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n01 1\n10 1\n.e\n")
        assert main(["minimize", str(pla), "--show"]) == 0
        out = capsys.readouterr().out
        assert "(+)" in out  # the XOR pseudoproduct

    def test_minimize_trie_backend(self, capsys):
        assert main(["minimize", "adr2", "--backend", "trie"]) == 0
        assert "SPP" in capsys.readouterr().out

    def test_constant_zero_output_skipped(self, tmp_path, capsys):
        pla = tmp_path / "z.pla"
        pla.write_text(".i 2\n.o 1\n.type fr\n01 0\n.e\n")
        assert main(["minimize", str(pla)]) == 0
        assert "constant 0" in capsys.readouterr().out


class TestExportFlags:
    def test_verilog_export(self, tmp_path, capsys):
        target = tmp_path / "out.v"
        assert main(["minimize", "adr2", "--verilog", str(target),
                     "--module", "m"]) == 0
        text = target.read_text()
        assert "module m" in text and "assign f0" in text

    def test_blif_export(self, tmp_path, capsys):
        target = tmp_path / "out.blif"
        assert main(["minimize", "adr2", "--blif", str(target)]) == 0
        text = target.read_text()
        assert ".model f0" in text and ".end" in text

    def test_multi_method_with_export(self, tmp_path, capsys):
        target = tmp_path / "joint.v"
        assert main(["minimize", "adr2", "--method", "multi",
                     "--verilog", str(target)]) == 0
        out = capsys.readouterr().out
        assert "shared literals" in out
        assert "module" in target.read_text()


class TestTables:
    def test_fig34_runs(self, capsys):
        assert main(["tables", "fig34"]) == 0
        out = capsys.readouterr().out
        assert "SPP_k" in out

    def test_table3_runs(self, capsys):
        assert main(["tables", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "SPP0" in out

    def test_table2_runs(self, capsys):
        assert main(["tables", "table2"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_quick_is_the_default(self):
        args = build_parser().parse_args(["tables", "table1"])
        assert args.quick is True

    def test_full_flag_disables_quick(self):
        args = build_parser().parse_args(["tables", "table1", "--full"])
        assert args.quick is False

    def test_quick_flag_still_accepted(self):
        args = build_parser().parse_args(["tables", "table1", "--quick"])
        assert args.quick is True

    def test_quick_and_full_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "table1", "--quick", "--full"])

    def test_table1_through_engine(self, capsys):
        assert main(["tables", "table1", "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "adr2" in out


class TestBatch:
    def test_batch_matches_sequential_minimize(self, tmp_path, capsys):
        from repro.bench.suite import get_benchmark
        from repro.minimize.exact import minimize_spp

        assert main(["batch", "adr2", "adr3", "--jobs", "4",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if "literals" in ln]
        assert len(lines) >= 4  # >= 4 benchmark outputs
        expected = {}
        for name in ("adr2", "adr3"):
            func = get_benchmark(name)
            for o, fo in enumerate(func.outputs):
                if fo.on_set:
                    expected[f"{name}[{o}]"] = minimize_spp(fo).num_literals
        for line in lines:
            label, count = line.split()[0], int(line.split("literals")[0].split()[-1])
            assert expected[label] == count

    def test_second_run_hits_cache_per_job(self, tmp_path, capsys):
        assert main(["batch", "adr2", "--jobs", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["batch", "adr2", "--jobs", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("[cache]") == 3  # every adr2 job served from cache
        assert "3 hits" in out

    def test_timeout_degrades_and_manifest_records_rung(self, tmp_path, capsys):
        assert main(["batch", "life", "--jobs", "0", "--timeout", "0.02",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        import json

        manifest = json.loads(
            (tmp_path / "manifest" / "manifest.json").read_text()
        )
        entry = manifest["jobs"][0]
        assert entry["degraded"] is True
        assert entry["rung"] != "exact"
        assert [a["rung"] for a in entry["attempts"]][0] == "exact"

    def test_resume_skips_completed(self, tmp_path, capsys):
        assert main(["batch", "adr2", "--jobs", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["batch", "adr2", "--jobs", "0", "--resume",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("[manifest]") == 3

    def test_resume_without_manifest_dir_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "adr2", "--resume"])

    def test_pla_file_target(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n01 1\n10 1\n.e\n")
        assert main(["batch", str(pla), "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "f.pla[0]" in out and "1 computed" in out
