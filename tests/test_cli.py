"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_minimize_defaults(self):
        args = build_parser().parse_args(["minimize", "adr2"])
        assert args.method == "exact"
        assert args.covering == "greedy"


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "adr4" in out and "surrogate" in out

    def test_benchmarks_dump_is_pla(self, capsys):
        assert main(["benchmarks", "--dump", "adr2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(".i 4")
        from repro.boolfunc.pla import parse_pla

        parsed = parse_pla(out)
        assert parsed.num_outputs == 3

    def test_minimize_benchmark_by_name(self, capsys):
        assert main(["minimize", "adr2", "--method", "exact", "--show"]) == 0
        out = capsys.readouterr().out
        assert "SPP" in out and "literals" in out

    def test_minimize_single_output_heuristic(self, capsys):
        assert main(["minimize", "adr3", "--output", "2", "--method",
                     "heuristic", "-k", "1"]) == 0
        assert "SPP" in capsys.readouterr().out

    def test_minimize_sp(self, capsys):
        assert main(["minimize", "adr2", "--method", "sp"]) == 0
        assert "SP " in capsys.readouterr().out

    def test_minimize_bounded(self, capsys):
        assert main(["minimize", "adr2", "--method", "bounded", "--bound", "2"]) == 0
        assert "SPP" in capsys.readouterr().out

    def test_minimize_aox(self, capsys):
        assert main(["minimize", "adr2", "--method", "aox", "--show"]) == 0
        assert "AOX" in capsys.readouterr().out

    def test_minimize_pla_file(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n01 1\n10 1\n.e\n")
        assert main(["minimize", str(pla), "--show"]) == 0
        out = capsys.readouterr().out
        assert "(+)" in out  # the XOR pseudoproduct

    def test_minimize_trie_backend(self, capsys):
        assert main(["minimize", "adr2", "--backend", "trie"]) == 0
        assert "SPP" in capsys.readouterr().out

    def test_constant_zero_output_skipped(self, tmp_path, capsys):
        pla = tmp_path / "z.pla"
        pla.write_text(".i 2\n.o 1\n.type fr\n01 0\n.e\n")
        assert main(["minimize", str(pla)]) == 0
        assert "constant 0" in capsys.readouterr().out


class TestExportFlags:
    def test_verilog_export(self, tmp_path, capsys):
        target = tmp_path / "out.v"
        assert main(["minimize", "adr2", "--verilog", str(target),
                     "--module", "m"]) == 0
        text = target.read_text()
        assert "module m" in text and "assign f0" in text

    def test_blif_export(self, tmp_path, capsys):
        target = tmp_path / "out.blif"
        assert main(["minimize", "adr2", "--blif", str(target)]) == 0
        text = target.read_text()
        assert ".model f0" in text and ".end" in text

    def test_multi_method_with_export(self, tmp_path, capsys):
        target = tmp_path / "joint.v"
        assert main(["minimize", "adr2", "--method", "multi",
                     "--verilog", str(target)]) == 0
        out = capsys.readouterr().out
        assert "shared literals" in out
        assert "module" in target.read_text()


class TestTables:
    def test_fig34_runs(self, capsys):
        assert main(["tables", "fig34"]) == 0
        out = capsys.readouterr().out
        assert "SPP_k" in out

    def test_table3_runs(self, capsys):
        assert main(["tables", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "SPP0" in out

    def test_table2_runs(self, capsys):
        assert main(["tables", "table2"]) == 0
        assert "naive" in capsys.readouterr().out
