"""Cross-module pipeline properties.

These hypothesis tests exercise whole pipelines end to end on random
functions: every engine must produce a semantically correct form, the
engines must respect the cost ordering theory predicts, and printing /
parsing / exporting must be lossless.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BoolFunc,
    MultiBoolFunc,
    minimize_sp,
    minimize_spp,
    minimize_spp_bounded,
    minimize_spp_k,
    minimize_spp_multi,
    parse_spp,
    spp_to_verilog,
)
from repro.verify import assert_equivalent, verify_form

random_funcs = st.builds(
    lambda on, dc: BoolFunc(4, frozenset(on) - frozenset(dc), frozenset(dc) - frozenset(on)),
    st.sets(st.integers(0, 15), min_size=1, max_size=14),
    st.sets(st.integers(0, 15), max_size=5),
)


class TestAllEnginesCorrect:
    @given(random_funcs)
    @settings(max_examples=25, deadline=None)
    def test_every_engine_verifies(self, func):
        engines = [
            minimize_sp(func).form,
            minimize_spp(func).form,
            minimize_spp_k(func, 1).form,
            minimize_spp_bounded(func, 2).form,
        ]
        for form in engines:
            assert_equivalent(form, func)

    @given(random_funcs)
    @settings(max_examples=20, deadline=None)
    def test_cost_ordering(self, func):
        """exact SPP ≤ 2-SPP ≤ SP under exact covering."""
        sp = minimize_sp(func, covering="exact").num_literals
        two = minimize_spp_bounded(func, 2, covering="exact").num_literals
        spp = minimize_spp(func, covering="exact").num_literals
        assert spp <= two <= sp


class TestRoundTrips:
    @given(random_funcs)
    @settings(max_examples=20, deadline=None)
    def test_print_parse_roundtrip(self, func):
        form = minimize_spp(func).form
        if form.num_pseudoproducts == 0:
            return
        parsed = parse_spp(str(form), n=form.n)
        assert parsed.on_set() == form.on_set()

    @given(random_funcs)
    @settings(max_examples=15, deadline=None)
    def test_verilog_export_mentions_every_variable_used(self, func):
        form = minimize_spp(func).form
        text = spp_to_verilog({"f": form})
        assert "module" in text and "assign f" in text


class TestMultiOutputPipeline:
    @given(
        st.lists(
            st.sets(st.integers(0, 15), min_size=1, max_size=8),
            min_size=2,
            max_size=3,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_joint_minimization_verifies_and_is_reported(self, ons):
        func = MultiBoolFunc(4, tuple(BoolFunc(4, frozenset(on)) for on in ons))
        result = minimize_spp_multi(func)
        for form, fo in zip(result.forms, func.outputs):
            report = verify_form(form, fo)
            assert report.ok, (report.uncovered_on_points, report.covered_off_points)
