"""Unit and property tests for the Pseudocube class."""

import pytest
from hypothesis import given

from repro.core.canonical import is_pseudocube
from repro.core.pseudocube import NotAPseudocubeError, Pseudocube

from tests.conftest import pseudocubes, pseudocube_pairs_same_structure


class TestConstruction:
    def test_from_point(self):
        pc = Pseudocube.from_point(4, 0b1010)
        assert pc.degree == 0
        assert len(pc) == 1
        assert list(pc.points()) == [0b1010]

    def test_from_points_pair(self):
        pc = Pseudocube.from_points(3, [0b001, 0b110])
        assert pc.degree == 1
        assert set(pc.points()) == {0b001, 0b110}

    def test_from_points_rejects_non_coset(self):
        with pytest.raises(NotAPseudocubeError):
            Pseudocube.from_points(3, [0, 1, 2])  # 3 points, never a coset

    def test_from_points_rejects_wrong_span(self):
        # 4 points spanning dimension 3: not a coset.
        with pytest.raises(NotAPseudocubeError):
            Pseudocube.from_points(3, [0b000, 0b001, 0b010, 0b100])

    def test_from_points_empty(self):
        with pytest.raises(NotAPseudocubeError):
            Pseudocube.from_points(3, [])

    def test_from_cube(self):
        # x0=1, x2=0 fixed; x1 free.
        pc = Pseudocube.from_cube(3, 0b101, 0b001)
        assert set(pc.points()) == {0b001, 0b011}
        assert pc.is_cube()

    def test_from_cube_rejects_values_outside_care(self):
        with pytest.raises(ValueError):
            Pseudocube.from_cube(3, 0b001, 0b010)

    def test_whole_space(self):
        pc = Pseudocube.whole_space(3)
        assert pc.degree == 3
        assert set(pc.points()) == set(range(8))
        assert pc.num_literals == 0

    def test_validating_constructor_rejects_bad_anchor(self):
        with pytest.raises(ValueError):
            Pseudocube(3, 0b001, (0b001,))  # anchor set on a pivot

    def test_validating_constructor_rejects_bad_basis(self):
        with pytest.raises(ValueError):
            Pseudocube(3, 0, (0b10, 0b01))

    def test_immutable(self):
        pc = Pseudocube.from_point(3, 5)
        with pytest.raises(AttributeError):
            pc.anchor = 0


class TestQueries:
    def test_membership(self):
        pc = Pseudocube.from_points(4, [0b0000, 0b0011, 0b1100, 0b1111])
        for p in pc.points():
            assert p in pc
        assert 0b0001 not in pc

    def test_canonical_variables_figure1(self):
        rows = [0b101010, 0b011010, 0b100110, 0b010110, 0b000011,
                0b110011, 0b001111, 0b111111]
        pc = Pseudocube.from_points(6, rows)
        assert pc.canonical_variables() == (0, 2, 4)
        assert pc.non_canonical_variables() == (1, 3, 5)

    def test_is_cube(self):
        assert Pseudocube.from_cube(4, 0b0011, 0b0001).is_cube()
        xor_pair = Pseudocube.from_points(2, [0b01, 0b10])
        assert not xor_pair.is_cube()

    @given(pseudocubes())
    def test_roundtrip_from_points(self, pc):
        assert Pseudocube.from_points(pc.n, pc.points()) == pc

    @given(pseudocubes(max_n=5))
    def test_matches_matrix_definition(self, pc):
        """The affine representation and the paper's canonical-matrix
        definition agree on what a pseudocube is."""
        assert is_pseudocube(set(pc.points()), pc.n)

    @given(pseudocubes())
    def test_num_literals_matches_cex(self, pc):
        from repro.core.cex import cex_of

        assert pc.num_literals == cex_of(pc).num_literals

    @given(pseudocubes())
    def test_anchor_is_member_with_zero_canonical_bits(self, pc):
        assert pc.anchor in pc
        assert pc.anchor & pc.canonical_mask == 0


class TestTransform:
    @given(pseudocubes())
    def test_transform_moves_points(self, pc):
        alpha = 0b101 % (1 << pc.n)
        moved = pc.transform(alpha)
        assert set(moved.points()) == {p ^ alpha for p in pc.points()}

    @given(pseudocube_pairs_same_structure())
    def test_proposition1(self, pair):
        """alpha(P) for alpha over non-canonical variables: disjoint,
        same degree, union a pseudocube of degree m+1."""
        p1, p2 = pair
        assert set(p1.points()).isdisjoint(p2.points())
        union = p1.union(p2)
        assert union is not None
        assert union.degree == p1.degree + 1
        assert set(union.points()) == set(p1.points()) | set(p2.points())


class TestUnion:
    def test_union_requires_same_structure(self):
        a = Pseudocube.from_points(3, [0b000, 0b011])
        b = Pseudocube.from_points(3, [0b100, 0b101])
        assert a.union(b) is None

    def test_union_of_identical_is_none(self):
        a = Pseudocube.from_point(3, 1)
        assert a.union(a) is None

    @given(pseudocube_pairs_same_structure())
    def test_union_is_set_union(self, pair):
        p1, p2 = pair
        union = p1.union(p2)
        assert union is not None
        assert set(union.points()) == set(p1.points()) | set(p2.points())
        # Symmetric.
        assert p2.union(p1) == union

    @given(pseudocubes(min_n=2, max_n=6))
    def test_split_then_union_roundtrip(self, pc):
        if pc.degree == 0:
            return
        for index in range(pc.degree):
            low, high = pc.split(index)
            assert low.same_structure(high)
            assert low.union(high) == pc

    def test_split_bad_index(self):
        pc = Pseudocube.from_points(3, [0, 1])
        with pytest.raises(IndexError):
            pc.split(5)


class TestContainment:
    @given(pseudocubes(max_n=5))
    def test_contains_pseudocube_reflexive(self, pc):
        assert pc.contains_pseudocube(pc)

    @given(pseudocubes(min_n=2, max_n=5))
    def test_halves_contained(self, pc):
        if pc.degree == 0:
            return
        low, high = pc.split(0)
        assert pc.contains_pseudocube(low)
        assert pc.contains_pseudocube(high)
        assert not low.contains_pseudocube(pc)

    def test_not_contained(self):
        a = Pseudocube.from_point(3, 0)
        b = Pseudocube.from_point(3, 1)
        assert not a.contains_pseudocube(b)


class TestIntersect:
    @given(pseudocubes(min_n=5, max_n=5), pseudocubes(min_n=5, max_n=5))
    def test_intersection_is_set_intersection(self, a, b):
        expected = set(a.points()) & set(b.points())
        got = a.intersect(b)
        if expected:
            assert got is not None
            assert set(got.points()) == expected
        else:
            assert got is None

    def test_disjoint_cubes(self):
        a = Pseudocube.from_cube(3, 0b001, 0b001)
        b = Pseudocube.from_cube(3, 0b001, 0b000)
        assert a.intersect(b) is None

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Pseudocube.from_point(2, 0).intersect(Pseudocube.from_point(3, 0))

    @given(pseudocubes(max_n=5))
    def test_self_intersection(self, pc):
        assert pc.intersect(pc) == pc


class TestHashing:
    @given(pseudocube_pairs_same_structure())
    def test_distinct_pseudocubes_unequal(self, pair):
        p1, p2 = pair
        assert p1 != p2
        assert p1 == Pseudocube(p1.n, p1.anchor, p1.basis)
        assert hash(p1) == hash(Pseudocube(p1.n, p1.anchor, p1.basis))

    def test_repr_str(self):
        pc = Pseudocube.from_points(3, [0b110, 0b001])
        assert "Pseudocube" in repr(pc)
        assert "(+)" in str(pc) or "x" in str(pc)
