"""Tests for Theorem 2 (sub-pseudocube enumeration)."""

import itertools

import pytest
from hypothesis import given

from repro.core.pseudocube import Pseudocube
from repro.core.subcubes import constrain, sub_pseudocubes

from tests.conftest import pseudocubes


class TestConstrain:
    def test_single_canonical_variable(self):
        pc = Pseudocube.whole_space(2)
        # x0 = 1 → the cube {01, 11} (little-endian ints {1, 3}).
        child = constrain(pc, 0b01, 1)
        assert set(child.points()) == {0b01, 0b11}

    def test_xor_constraint(self):
        pc = Pseudocube.whole_space(2)
        child = constrain(pc, 0b11, 1)  # x0 ⊕ x1 = 1
        assert set(child.points()) == {0b01, 0b10}

    def test_rejects_empty_y(self):
        pc = Pseudocube.whole_space(2)
        with pytest.raises(ValueError):
            constrain(pc, 0, 0)

    def test_rejects_non_canonical_y(self):
        pc = Pseudocube.from_points(3, [0b000, 0b011])  # canonical: x0
        with pytest.raises(ValueError):
            constrain(pc, 0b010, 0)

    def test_rejects_bad_b(self):
        pc = Pseudocube.whole_space(2)
        with pytest.raises(ValueError):
            constrain(pc, 0b01, 2)


class TestEnumeration:
    @given(pseudocubes(min_n=2, max_n=6))
    def test_cardinality_theorem2(self, pc):
        """Exactly 2^{m+1} - 2 distinct children of degree m-1."""
        children = list(sub_pseudocubes(pc))
        m = pc.degree
        assert len(children) == (1 << (m + 1)) - 2
        assert len(set(children)) == len(children)

    @given(pseudocubes(min_n=2, max_n=6))
    def test_children_are_proper_subsets(self, pc):
        parent_points = set(pc.points())
        for child in sub_pseudocubes(pc):
            assert child.degree == pc.degree - 1
            assert set(child.points()) < parent_points

    @given(pseudocubes(min_n=2, max_n=5, max_degree=3))
    def test_completeness(self, pc):
        """Theorem 2 yields ALL pseudocubes P ⊂ R of degree m-1."""
        if pc.degree == 0:
            assert list(sub_pseudocubes(pc)) == []
            return
        points = sorted(pc.points())
        size = len(points) // 2
        brute = set()
        for subset in itertools.combinations(points, size):
            try:
                child = Pseudocube.from_points(pc.n, subset)
            except ValueError:
                continue
            brute.add(child)
        assert set(sub_pseudocubes(pc)) == brute

    def test_degree_zero_has_no_children(self):
        assert list(sub_pseudocubes(Pseudocube.from_point(4, 7))) == []
