"""Every worked example in the paper, reproduced byte for byte.

These tests pin the implementation to the paper's own numbers: the
figure 1 matrix and CEX, the NORM_EXOR example, the Section 3.1 union
example (expressions (1), (2) and their 12-literal union), and the
intuition example of Section 3.4.
"""

from repro.core.bitvec import from_string
from repro.core.canonical import canonical_columns, render_matrix
from repro.core.cex import CexExpression, cex_of
from repro.core.exor import ExorFactor, norm_exor
from repro.core.pseudocube import Pseudocube
from repro.core.union import cex_union

F = ExorFactor.from_literals


class TestFigure1:
    POINTS = [
        from_string(s)
        for s in [
            "010101", "010110", "011001", "011010",
            "110000", "110011", "111100", "111111",
        ]
    ]

    def test_is_degree3_pseudocube(self):
        pc = Pseudocube.from_points(6, self.POINTS)
        assert pc.degree == 3
        assert len(pc) == 8

    def test_canonical_columns_are_0_2_4(self):
        rows = sorted(
            self.POINTS,
            key=lambda p: sum(((p >> i) & 1) << (5 - i) for i in range(6)),
        )
        assert canonical_columns(rows, 6) == [0, 2, 4]

    def test_cex_expression(self):
        """CEX = x1 · (x0 ⊕ x2 ⊕ x3) · (x0 ⊕ x4 ⊕ x5)."""
        pc = Pseudocube.from_points(6, self.POINTS)
        assert str(cex_of(pc)) == "x1 . (x0 (+) x2 (+) x3) . (x0 (+) x4 (+) x5)"

    def test_rendered_matrix_matches_figure(self):
        pc = Pseudocube.from_points(6, self.POINTS)
        data_rows = [
            "".join(line.split()[1:]) for line in render_matrix(pc).splitlines()[1:]
        ]
        assert data_rows == [
            "010101", "010110", "011001", "011010",
            "110000", "110011", "111100", "111111",
        ]


class TestNormExorExample:
    def test_section31_norm_exor(self):
        """f1 ⊕ f2 with f1 = x0⊕x2⊕x5, f2 = x0⊕x̄1 normalizes to
        x1 ⊕ x2 ⊕ x̄5 (footnote rules)."""
        f1 = F([0, 2, 5])
        f2 = F([0], [1])
        assert norm_exor(f1, f2) == F([1, 2], [5])


class TestSection31Union:
    """Expressions (1), (2) of the paper and their union."""

    CEX1 = CexExpression(9, (F([0], [1]), F([4]), F([0, 2], [5]), F([3, 6]), F([3, 8])))
    CEX2 = CexExpression(9, (F([0, 1]), F([], [4]), F([0, 2, 5]), F([3, 6]), F([3], [8])))

    def test_components_have_10_literals(self):
        assert self.CEX1.num_literals == 10
        assert self.CEX2.num_literals == 10

    def test_same_structure(self):
        assert self.CEX1.structure() == self.CEX2.structure()

    def test_canonical_variables_before_union(self):
        p1 = self.CEX1.to_pseudocube()
        assert p1.canonical_variables() == (0, 2, 3, 7)

    def test_union_text_and_literals(self):
        union = cex_union(self.CEX1, self.CEX2)
        assert str(union) == (
            "(x0 (+) x1 (+) x4) . (x1 (+) x2 (+) x5') . "
            "(x3 (+) x6) . (x0 (+) x1 (+) x3 (+) x8)"
        )
        # "which contains 12 literals, while (1) and (2) have 10 each"
        assert union.num_literals == 12

    def test_union_canonical_variables(self):
        """The canonical variables of CEX(P) are x0, x1, x2, x3, x7."""
        p = cex_union(self.CEX1, self.CEX2).to_pseudocube()
        assert p.canonical_variables() == (0, 1, 2, 3, 7)


class TestSection34Example:
    def test_ascent_finds_x2_x1_xor_x4(self):
        """x1·x2·x̄4 + x̄1·x2·x4 unify into x2·(x1 ⊕ x4)."""
        a = CexExpression(5, (F([1]), F([2]), F([], [4]))).to_pseudocube()
        b = CexExpression(5, (F([], [1]), F([2]), F([4]))).to_pseudocube()
        union = a.union(b)
        assert union is not None
        assert str(cex_of(union)) == "x2 . (x1 (+) x4)"
