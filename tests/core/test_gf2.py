"""Unit and property tests for GF(2) linear algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import gf2

vectors_lists = st.lists(st.integers(0, 255), max_size=10)


class TestRref:
    def test_empty(self):
        assert gf2.rref([]) == ()
        assert gf2.rank([]) == 0

    def test_single(self):
        assert gf2.rref([0b110]) == (0b110,)

    def test_dependent_vectors_collapse(self):
        assert gf2.rank([0b101, 0b011, 0b110]) == 2

    def test_zero_vectors_ignored(self):
        assert gf2.rref([0, 0b1, 0]) == (0b1,)

    def test_figure1_direction_space(self):
        # Differences of the figure 1 pseudocube rows (x0 = bit 0).
        vs = [0b110000, 0b001100, 0b101001]
        basis = gf2.rref(vs)
        assert gf2.pivot_mask(basis) == 0b010101  # x0, x2, x4 canonical
        assert gf2.is_rref(basis)

    @given(vectors_lists)
    def test_rref_invariants(self, vs):
        basis = gf2.rref(vs)
        assert gf2.is_rref(basis)

    @given(vectors_lists)
    def test_span_is_preserved(self, vs):
        basis = gf2.rref(vs)
        for v in vs:
            assert gf2.contains(basis, v)

    @given(vectors_lists, vectors_lists)
    def test_rref_is_canonical(self, vs, extra):
        """Same span in different presentation order → same basis."""
        basis1 = gf2.rref(vs)
        shuffled = list(reversed(vs))
        # Add redundant combinations of existing vectors.
        acc = 0
        for v in vs:
            acc ^= v
            shuffled.append(acc)
        basis2 = gf2.rref(shuffled)
        assert basis1 == basis2


class TestReduceInsert:
    def test_reduce_member_is_zero(self):
        basis = gf2.rref([0b011, 0b101])
        assert gf2.reduce_vector(basis, 0b011 ^ 0b101) == 0

    def test_insert_dependent_returns_same_object(self):
        basis = gf2.rref([0b011, 0b101])
        assert gf2.insert_vector(basis, 0b110) is basis

    def test_insert_independent_grows(self):
        basis = gf2.rref([0b011])
        grown = gf2.insert_vector(basis, 0b100)
        assert len(grown) == 2
        assert gf2.is_rref(grown)

    @given(vectors_lists, st.integers(0, 255))
    def test_insert_matches_batch_rref(self, vs, v):
        basis = gf2.rref(vs)
        assert gf2.insert_vector(basis, v) == gf2.rref(list(vs) + [v])

    @given(vectors_lists, st.integers(0, 255))
    def test_reduce_is_canonical_coset_representative(self, vs, v):
        basis = gf2.rref(vs)
        r = gf2.reduce_vector(basis, v)
        assert gf2.contains(basis, r ^ v)
        assert r & gf2.pivot_mask(basis) == 0


class TestSpanPoints:
    def test_enumeration_size_and_membership(self):
        basis = gf2.rref([0b011, 0b100])
        pts = list(gf2.span_points(basis, offset=0b1000))
        assert len(pts) == 4
        assert len(set(pts)) == 4
        for p in pts:
            assert gf2.contains(basis, p ^ 0b1000)

    def test_empty_basis_single_point(self):
        assert list(gf2.span_points((), 7)) == [7]


class TestIntersectDecompose:
    @given(vectors_lists, vectors_lists)
    def test_intersect_spaces_bruteforce(self, va, vb):
        a = gf2.rref(v & 0x3F for v in va)
        b = gf2.rref(v & 0x3F for v in vb)
        inter = gf2.intersect_spaces(a, b, 6)
        members_a = set(gf2.span_points(a))
        members_b = set(gf2.span_points(b))
        assert set(gf2.span_points(inter)) == members_a & members_b

    @given(vectors_lists, vectors_lists, st.integers(0, 63))
    def test_decompose_splits_or_rejects(self, va, vb, v):
        a = gf2.rref(x & 0x3F for x in va)
        b = gf2.rref(x & 0x3F for x in vb)
        u = gf2.decompose(a, b, v)
        joint = gf2.rref(a + b)
        if gf2.contains(joint, v):
            assert u is not None
            assert gf2.contains(a, u)
            assert gf2.contains(b, v ^ u)
        else:
            assert u is None


class TestPivots:
    def test_pivot_of(self):
        assert gf2.pivot_of(0b1100) == 2

    def test_pivot_of_zero_raises(self):
        with pytest.raises(ValueError):
            gf2.pivot_of(0)

    def test_is_rref_rejects_bad_bases(self):
        assert not gf2.is_rref((0,))
        assert not gf2.is_rref((0b10, 0b01))  # pivots decreasing
        assert not gf2.is_rref((0b011, 0b010))  # pivot of second inside first
