"""Tests for expression parsing."""

import pytest
from hypothesis import given

from repro.core.cex import cex_of
from repro.core.parse import ExpressionSyntaxError, parse_cex, parse_spp
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm

from tests.conftest import pseudocubes


class TestParseCex:
    def test_single_variable(self):
        cex = parse_cex("x0")
        assert cex.num_factors == 1
        assert cex.evaluate(0b1) == 1

    def test_complemented_postfix_and_prefix(self):
        assert parse_cex("x1'").factors == parse_cex("~x1").factors
        assert parse_cex("!x1").factors == parse_cex("~x1").factors

    def test_double_negation(self):
        assert parse_cex("~~x1").factors == parse_cex("x1").factors
        assert parse_cex("~x1'").factors == parse_cex("x1").factors

    def test_figure1_expression(self):
        cex = parse_cex("x1 . (x0 (+) x2 (+) x3) . (x0 (+) x4 (+) x5)", n=6)
        pc = cex.to_pseudocube()
        assert pc.degree == 3
        assert pc.canonical_variables() == (0, 2, 4)

    def test_caret_and_unicode_xor(self):
        a = parse_cex("(x0 ^ x1)")
        b = parse_cex("(x0 (+) x1)")
        c = parse_cex("(x0 ⊕ x1)")
        assert a.factors == b.factors == c.factors

    def test_adjacency_product(self):
        cex = parse_cex("(x0 (+) x1)(x2 (+) x3)")
        assert cex.num_factors == 2

    def test_star_and_middot_products(self):
        assert parse_cex("x0 * x1").num_factors == 2

    def test_xor_cancellation(self):
        cex = parse_cex("(x0 (+) x0 (+) x1)")
        assert cex.factors[0].support == 0b10

    def test_constant_literals(self):
        assert parse_cex("1").factors[0].parity == 1
        assert parse_cex("0").factors[0].parity == 0

    def test_n_inference(self):
        assert parse_cex("x5").n == 6
        assert parse_cex("x5", n=8).n == 8

    def test_n_too_small(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_cex("x5", n=3)

    def test_rejects_sum(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_cex("x0 + x1")

    def test_rejects_garbage(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_cex("x0 @ x1")
        with pytest.raises(ExpressionSyntaxError):
            parse_cex("(x0")

    def test_custom_variable_prefix(self):
        cex = parse_cex("(a0 (+) a2)", var="a")
        assert cex.factors[0].support == 0b101

    def test_wrong_prefix_rejected(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_cex("(y0 (+) y1)", var="x")

    @given(pseudocubes(max_n=6))
    def test_roundtrip_print_parse(self, pc):
        """str(cex_of(pc)) parses back to the same pseudocube."""
        cex = cex_of(pc)
        parsed = parse_cex(str(cex), n=pc.n)
        assert parsed.to_pseudocube() == pc


class TestParseSpp:
    def test_sum_of_products(self):
        form = parse_spp("x0 . x1 + x0' . x1'", n=2)
        assert form.num_pseudoproducts == 2
        assert form.on_set() == {0b00, 0b11}

    def test_unsatisfiable_product_rejected(self):
        with pytest.raises(ValueError):
            parse_spp("x0 . x0'")

    def test_roundtrip_with_str(self):
        pcs = (
            Pseudocube.from_points(3, [0b001, 0b110]),
            Pseudocube.from_point(3, 0b111),
        )
        form = SppForm(3, pcs)
        parsed = parse_spp(str(form), n=3)
        assert parsed.on_set() == form.on_set()

    def test_paper_intro_example_parses(self):
        """The SPP expression from the paper's introduction."""
        text = ("(x0 (+) x1') . x4 . (x0 (+) x3 (+) x6') + x4 . x3' + "
                "(x0 (+) x2 (+) x3) . (x2 (+) x4) . (x1 (+) x2 (+) x3) . "
                "(x2 (+) x3 (+) x4) . (x1 (+) x2 (+) x4 (+) x5)")
        form = parse_spp(text, n=7)
        assert form.num_pseudoproducts == 3
