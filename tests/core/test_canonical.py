"""Tests for Section 2: normal vectors and canonical matrices."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitvec import from_string
from repro.core.canonical import (
    canonical_columns,
    canonical_matrix,
    is_canonical_matrix,
    is_k_canonical,
    is_normal_vector,
    is_pseudocube,
    render_matrix,
    row_sort_key,
)
from repro.core.pseudocube import Pseudocube

from tests.conftest import pseudocubes

FIGURE1_ROWS = [
    "010101", "010110", "011001", "011010",
    "110000", "110011", "111100", "111111",
]
FIGURE1_POINTS = [from_string(s) for s in FIGURE1_ROWS]


class TestNormalVectors:
    def test_length_one_is_normal(self):
        assert is_normal_vector((0,))
        assert is_normal_vector((1,))

    def test_v_vhat_recursion(self):
        assert is_normal_vector((0, 1))  # v, v̄
        assert is_normal_vector((0, 0))  # v, v
        assert is_normal_vector((0, 1, 1, 0))
        assert is_normal_vector((0, 1, 0, 1))

    def test_non_normal(self):
        assert not is_normal_vector((0, 1, 1, 1))
        assert not is_normal_vector((0, 1, 0))  # not a power of two
        assert not is_normal_vector(())

    def test_figure1_columns_all_normal(self):
        for j in range(6):
            column = tuple(int(row[j]) for row in FIGURE1_ROWS)
            assert is_normal_vector(column)


class TestKCanonical:
    def test_figure1_levels(self):
        """c0 is 2-canonical, c2 is 1-canonical, c4 is 0-canonical."""
        col = lambda j: tuple(int(row[j]) for row in FIGURE1_ROWS)
        assert is_k_canonical(col(0), 2)
        assert is_k_canonical(col(2), 1)
        assert is_k_canonical(col(4), 0)
        assert not is_k_canonical(col(1), 0)  # constant column
        assert not is_k_canonical(col(0), 1)

    def test_patterns(self):
        assert is_k_canonical((0, 1, 0, 1), 0)
        assert is_k_canonical((0, 0, 1, 1), 1)
        assert not is_k_canonical((1, 0, 1, 0), 0)


class TestCanonicalMatrix:
    def test_figure1_is_canonical(self):
        assert is_canonical_matrix(FIGURE1_POINTS, 6)
        assert canonical_columns(FIGURE1_POINTS, 6) == [0, 2, 4]

    def test_row_order_matters(self):
        shuffled = [FIGURE1_POINTS[1], FIGURE1_POINTS[0]] + FIGURE1_POINTS[2:]
        assert not is_canonical_matrix(shuffled, 6)

    def test_duplicate_rows_rejected(self):
        assert not is_canonical_matrix([0, 0], 1)

    def test_row_sort_key_x0_most_significant(self):
        # "10" (x0=1, x1=0) sorts above "01" (x0=0, x1=1).
        assert row_sort_key(from_string("10"), 2) > row_sort_key(from_string("01"), 2)

    @given(pseudocubes(max_n=6))
    def test_canonical_matrix_of_pseudocube(self, pc):
        rows = canonical_matrix(pc)
        assert is_canonical_matrix(rows, pc.n)

    def test_render_contains_all_rows(self):
        pc = Pseudocube.from_points(6, FIGURE1_POINTS)
        text = render_matrix(pc)
        assert "r0" in text and "r7" in text
        # First data row is the figure's r0 = 010101.
        first = text.splitlines()[1].split()[1:]
        assert "".join(first) == "010101"


class TestIsPseudocube:
    def test_figure1(self):
        assert is_pseudocube(set(FIGURE1_POINTS), 6)

    def test_single_point(self):
        assert is_pseudocube({5}, 3)

    def test_wrong_cardinality(self):
        assert not is_pseudocube({0, 1, 2}, 3)
        assert not is_pseudocube(set(), 3)

    def test_non_coset(self):
        assert not is_pseudocube({0b00, 0b01, 0b10, 0b111}, 3)

    @given(pseudocubes(max_n=5), st.integers(0, 31))
    def test_agreement_with_affine_test(self, pc, extra):
        """The matrix-based and affine pseudocube tests agree, also on
        perturbed sets."""
        points = set(pc.points())
        perturbed = set(points)
        perturbed.symmetric_difference_update({extra % (1 << pc.n)})
        for candidate in (points, perturbed):
            if not candidate:
                continue
            affine_ok = True
            try:
                Pseudocube.from_points(pc.n, candidate)
            except ValueError:
                affine_ok = False
            assert is_pseudocube(candidate, pc.n) == affine_ok
