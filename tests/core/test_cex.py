"""Tests for CEX expressions (Definition 1)."""

import pytest
from hypothesis import given

from repro.core.bitvec import from_string
from repro.core.cex import CexExpression, cex_of
from repro.core.exor import ExorFactor
from repro.core.pseudocube import NotAPseudocubeError, Pseudocube

from tests.conftest import pseudocubes

FIGURE1_POINTS = [
    from_string(s)
    for s in [
        "010101", "010110", "011001", "011010",
        "110000", "110011", "111100", "111111",
    ]
]


class TestCexOf:
    def test_figure1_expression(self):
        pc = Pseudocube.from_points(6, FIGURE1_POINTS)
        cex = cex_of(pc)
        assert str(cex) == "x1 . (x0 (+) x2 (+) x3) . (x0 (+) x4 (+) x5)"
        assert cex.num_literals == 7
        assert cex.num_factors == 3

    def test_minterm_cex(self):
        pc = Pseudocube.from_point(3, 0b101)
        cex = cex_of(pc)
        assert cex.num_factors == 3
        assert cex.num_literals == 3
        assert str(cex) == "x0 . x1' . x2"

    def test_whole_space_cex_is_one(self):
        cex = cex_of(Pseudocube.whole_space(3))
        assert cex.num_factors == 0
        assert str(cex) == "1"
        assert cex.evaluate(0b101) == 1

    @given(pseudocubes(max_n=6))
    def test_cex_is_characteristic_function(self, pc):
        cex = cex_of(pc)
        members = set(pc.points())
        for point in range(1 << pc.n):
            assert cex.evaluate(point) == (1 if point in members else 0)

    @given(pseudocubes())
    def test_roundtrip_to_pseudocube(self, pc):
        assert cex_of(pc).to_pseudocube() == pc

    @given(pseudocubes())
    def test_one_factor_per_non_canonical_variable(self, pc):
        cex = cex_of(pc)
        non_canonical = pc.non_canonical_variables()
        assert cex.num_factors == len(non_canonical)
        for factor, j in zip(cex.factors, non_canonical):
            assert factor.variables()[-1] == j  # highest = non-canonical
            # canonical variables in the factor all precede j
            assert all(v < j for v in factor.variables()[:-1])


class TestToPseudocube:
    def test_inconsistent_factors_raise(self):
        # x0 · x̄0 is unsatisfiable.
        cex = CexExpression(2, (ExorFactor(0b01, 0), ExorFactor(0b01, 1)))
        with pytest.raises(NotAPseudocubeError):
            cex.to_pseudocube()

    def test_constant_zero_factor_raises(self):
        cex = CexExpression(2, (ExorFactor(0, 0),))
        with pytest.raises(NotAPseudocubeError):
            cex.to_pseudocube()

    def test_constant_one_factor_ignored(self):
        cex = CexExpression(2, (ExorFactor(0, 1), ExorFactor(0b01, 0)))
        pc = cex.to_pseudocube()
        assert set(pc.points()) == {0b01, 0b11}

    def test_redundant_consistent_factor(self):
        # x0 · x0: same constraint twice.
        cex = CexExpression(2, (ExorFactor(0b01, 0), ExorFactor(0b01, 0)))
        pc = cex.to_pseudocube()
        assert set(pc.points()) == {0b01, 0b11}

    def test_non_canonical_form_still_works(self):
        # (x0 ⊕ x1) · x1 describes {11}∪... : x0⊕x1=1 and x1=1 → x0=0,x1=1.
        cex = CexExpression(
            2, (ExorFactor.from_literals([0, 1]), ExorFactor.from_literals([1]))
        )
        pc = cex.to_pseudocube()
        assert set(pc.points()) == {0b10}

    @given(pseudocubes(max_n=6))
    def test_evaluation_matches_membership_after_roundtrip(self, pc):
        cex = cex_of(pc)
        pc2 = cex.to_pseudocube()
        assert set(pc2.points()) == set(pc.points())


class TestStructure:
    def test_structure_tuple(self):
        pc = Pseudocube.from_points(6, FIGURE1_POINTS)
        cex = cex_of(pc)
        assert cex.structure() == (0b000010, 0b001101, 0b110001)

    def test_empty_expression_renders_one(self):
        assert CexExpression(3, ()).to_string() == "1"
