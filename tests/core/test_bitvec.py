"""Unit tests for bit-vector helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitvec


class TestBasics:
    def test_bit(self):
        assert bitvec.bit(0) == 1
        assert bitvec.bit(5) == 32

    def test_get_set_clear(self):
        v = 0b1010
        assert bitvec.get_bit(v, 1) == 1
        assert bitvec.get_bit(v, 0) == 0
        assert bitvec.set_bit(v, 0) == 0b1011
        assert bitvec.clear_bit(v, 1) == 0b1000

    def test_flip_bits_is_alpha_transform(self):
        assert bitvec.flip_bits(0b1100, 0b1010) == 0b0110

    def test_popcount_parity(self):
        assert bitvec.popcount(0b1011) == 3
        assert bitvec.parity(0b1011) == 1
        assert bitvec.parity(0b1001) == 0

    def test_lowest_highest(self):
        assert bitvec.lowest_bit_index(0b101000) == 3
        assert bitvec.highest_bit_index(0b101000) == 5

    def test_lowest_highest_zero_raises(self):
        with pytest.raises(ValueError):
            bitvec.lowest_bit_index(0)
        with pytest.raises(ValueError):
            bitvec.highest_bit_index(0)

    def test_bits_of_roundtrip(self):
        assert list(bitvec.bits_of(0b10110)) == [1, 2, 4]
        assert bitvec.from_bits([1, 2, 4]) == 0b10110
        assert list(bitvec.bits_of(0)) == []

    def test_mask_of_width(self):
        assert bitvec.mask_of_width(0) == 0
        assert bitvec.mask_of_width(4) == 0b1111


class TestStrings:
    def test_to_string_x0_leftmost(self):
        # x0 = 1, x1 = 0, x2 = 1 renders "101"
        assert bitvec.to_string(0b101, 3) == "101"

    def test_from_string_inverse(self):
        assert bitvec.from_string("101") == 0b101
        assert bitvec.from_string("0110") == 0b0110

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            bitvec.from_string("01x")

    @given(st.integers(1, 12), st.data())
    def test_roundtrip_property(self, n, data):
        v = data.draw(st.integers(0, (1 << n) - 1))
        assert bitvec.from_string(bitvec.to_string(v, n)) == v


class TestAllPoints:
    def test_all_points(self):
        assert list(bitvec.all_points(2)) == [0, 1, 2, 3]
