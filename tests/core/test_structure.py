"""Tests for structures (Definition 2) and Theorem 1."""

from hypothesis import given

from repro.core.canonical import is_pseudocube
from repro.core.cex import cex_of
from repro.core.pseudocube import Pseudocube
from repro.core.structure import same_structure, structure_key, structure_of

from tests.conftest import pseudocube_pairs_same_structure, pseudocubes


class TestStructureOf:
    def test_definition2_example_shape(self):
        """STR drops complementations: structure equals the CEX supports."""
        pc = Pseudocube.from_points(3, [0b011, 0b100])
        assert structure_of(pc) == cex_of(pc).structure()

    @given(pseudocubes())
    def test_structure_matches_cex_supports(self, pc):
        assert structure_of(pc) == cex_of(pc).structure()

    @given(pseudocubes())
    def test_structure_key_is_basis(self, pc):
        assert structure_key(pc) == pc.basis


class TestTheorem1:
    @given(pseudocube_pairs_same_structure())
    def test_same_structure_pairs(self, pair):
        p1, p2 = pair
        assert same_structure(p1, p2)
        assert structure_of(p1) == structure_of(p2)
        # Same structure ⇒ union is a pseudocube.
        union_points = set(p1.points()) | set(p2.points())
        assert is_pseudocube(union_points, p1.n)

    @given(pseudocubes(min_n=3, max_n=5), pseudocubes(min_n=3, max_n=5))
    def test_structure_iff_direction_space(self, p1, p2):
        """STR(P1) == STR(P2) exactly when the direction bases match
        (the affine reformulation of Definition 2 used throughout)."""
        if p1.n != p2.n:
            return
        assert (structure_of(p1) == structure_of(p2)) == (p1.basis == p2.basis)

    @given(pseudocubes(min_n=2, max_n=4), pseudocubes(min_n=2, max_n=4))
    def test_only_if_direction(self, p1, p2):
        """Distinct same-degree pseudocubes whose union is a pseudocube
        must share their structure (Theorem 1, only-if)."""
        if p1.n != p2.n or p1 == p2 or p1.degree != p2.degree:
            return
        union_points = set(p1.points()) | set(p2.points())
        if len(union_points) != 2 * len(p1):
            return  # overlapping: not a candidate union
        if is_pseudocube(union_points, p1.n):
            assert same_structure(p1, p2)

    @given(pseudocube_pairs_same_structure())
    def test_same_structure_disjoint(self, pair):
        """Two distinct pseudocubes with the same structure are disjoint
        (remark after Definition 2)."""
        p1, p2 = pair
        assert set(p1.points()).isdisjoint(p2.points())
