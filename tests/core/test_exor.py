"""Unit tests for EXOR factors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exor import ExorFactor, norm_exor

factors = st.builds(
    ExorFactor, st.integers(0, 255), st.integers(0, 1)
)


class TestConstruction:
    def test_from_literals(self):
        f = ExorFactor.from_literals([0, 2], [5])
        assert f.support == 0b100101
        assert f.parity == 1

    def test_from_literals_cancellation(self):
        # x0 ⊕ x̄0 = 1: empty support, parity flipped.
        f = ExorFactor.from_literals([0], [0])
        assert f.support == 0
        assert f.parity == 1
        assert f.is_constant

    def test_rejects_bad_parity(self):
        with pytest.raises(ValueError):
            ExorFactor(1, 2)

    def test_rejects_negative_support(self):
        with pytest.raises(ValueError):
            ExorFactor(-1, 0)


class TestEvaluation:
    def test_single_variable(self):
        f = ExorFactor(0b10, 0)  # x1
        assert f.evaluate(0b10) == 1
        assert f.evaluate(0b01) == 0

    def test_complemented_variable(self):
        f = ExorFactor(0b10, 1)  # x̄1
        assert f.evaluate(0b10) == 0
        assert f.evaluate(0b00) == 1

    def test_three_way_exor(self):
        f = ExorFactor.from_literals([0, 1, 2])
        assert f.evaluate(0b111) == 1
        assert f.evaluate(0b011) == 0

    @given(factors, st.integers(0, 255))
    def test_complement_flips(self, f, point):
        assert f.complement().evaluate(point) == 1 - f.evaluate(point)

    @given(factors, factors, st.integers(0, 255))
    def test_xor_is_pointwise_xor(self, f1, f2, point):
        assert f1.xor(f2).evaluate(point) == f1.evaluate(point) ^ f2.evaluate(point)


class TestNormExor:
    def test_paper_example(self):
        """NORM_EXOR(x0 ⊕ x2 ⊕ x5, x0 ⊕ x̄1) = x1 ⊕ x2 ⊕ x̄5."""
        f1 = ExorFactor.from_literals([0, 2, 5])
        f2 = ExorFactor.from_literals([0], [1])
        result = norm_exor(f1, f2)
        assert result == ExorFactor.from_literals([1, 2], [5])
        assert result.to_string() == "(x1 (+) x2 (+) x5')"

    @given(factors, factors)
    def test_commutative(self, f1, f2):
        assert norm_exor(f1, f2) == norm_exor(f2, f1)

    @given(factors)
    def test_self_cancel(self, f):
        assert norm_exor(f, f) == ExorFactor(0, 0)


class TestDisplay:
    def test_constant_rendering(self):
        assert ExorFactor(0, 0).to_string() == "0"
        assert ExorFactor(0, 1).to_string() == "1"

    def test_bar_on_highest_by_default(self):
        f = ExorFactor.from_literals([0], [3])
        assert f.to_string() == "(x0 (+) x3')"

    def test_bar_variable_override(self):
        f = ExorFactor(0b1001, 1)
        assert f.to_string(bar_variable=0) == "(x0' (+) x3)"

    def test_single_literal_unparenthesised(self):
        assert ExorFactor(0b100, 0).to_string() == "x2"
        assert ExorFactor(0b100, 1).to_string() == "x2'"

    def test_variables(self):
        assert ExorFactor(0b1011, 0).variables() == (0, 1, 3)

    def test_num_literals(self):
        assert ExorFactor(0b1011, 1).num_literals == 3

    def test_structure_drops_parity(self):
        assert ExorFactor(0b11, 1).structure() == 0b11
