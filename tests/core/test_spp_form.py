"""Tests for SPP forms."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm

from tests.conftest import pseudocubes


def _form(pcs):
    return SppForm(pcs[0].n, tuple(pcs))


class TestEvaluation:
    def test_empty_form_is_zero(self):
        form = SppForm(3, ())
        assert form.evaluate(0) == 0
        assert form.on_set() == set()
        assert str(form) == "0"

    def test_single_pseudoproduct(self):
        pc = Pseudocube.from_points(3, [0b011, 0b100])
        form = SppForm(3, (pc,))
        assert form.on_set() == {0b011, 0b100}
        assert form.evaluate(0b011) == 1
        assert form.evaluate(0b000) == 0

    @given(st.lists(pseudocubes(min_n=4, max_n=4), min_size=1, max_size=4))
    def test_on_set_is_union(self, pcs):
        form = _form(pcs)
        expected = set()
        for pc in pcs:
            expected |= set(pc.points())
        assert form.on_set() == expected
        for p in range(16):
            assert form.evaluate(p) == (1 if p in expected else 0)


class TestMetrics:
    @given(st.lists(pseudocubes(min_n=3, max_n=5), min_size=1, max_size=4))
    def test_literals_and_factors_additive(self, pcs):
        if len({pc.n for pc in pcs}) != 1:
            return
        form = _form(pcs)
        assert form.num_literals == sum(pc.num_literals for pc in pcs)
        assert form.num_exor_factors == sum(pc.n - pc.degree for pc in pcs)
        assert form.num_pseudoproducts == len(pcs)

    def test_is_sp(self):
        cube = Pseudocube.from_cube(3, 0b011, 0b001)
        xor = Pseudocube.from_points(3, [0b001, 0b110])
        assert SppForm(3, (cube,)).is_sp()
        assert not SppForm(3, (cube, xor)).is_sp()

    def test_covers(self):
        pc = Pseudocube.from_cube(3, 0b001, 0b001)
        form = SppForm(3, (pc,))
        assert form.covers([0b001, 0b011])
        assert not form.covers([0b000])

    def test_to_string_joins_with_plus(self):
        a = Pseudocube.from_point(2, 0)
        b = Pseudocube.from_point(2, 3)
        text = str(SppForm(2, (a, b)))
        assert " + " in text
