"""Tests for Algorithm 1 (symbolic union) against the affine union."""

import pytest
from hypothesis import given

from repro.core.cex import CexExpression, cex_of
from repro.core.exor import ExorFactor
from repro.core.pseudocube import Pseudocube
from repro.core.union import UnionError, cex_union

from tests.conftest import pseudocube_pairs_same_structure

F = ExorFactor.from_literals


def _paper_pair() -> tuple[CexExpression, CexExpression]:
    """Expressions (1) and (2) of Section 3.1."""
    c1 = CexExpression(
        9, (F([0], [1]), F([4]), F([0, 2], [5]), F([3, 6]), F([3, 8]))
    )
    c2 = CexExpression(
        9, (F([0, 1]), F([], [4]), F([0, 2, 5]), F([3, 6]), F([3], [8]))
    )
    return c1, c2


class TestPaperExample:
    def test_union_expression(self):
        c1, c2 = _paper_pair()
        result = cex_union(c1, c2)
        assert str(result) == (
            "(x0 (+) x1 (+) x4) . (x1 (+) x2 (+) x5') . "
            "(x3 (+) x6) . (x0 (+) x1 (+) x3 (+) x8)"
        )
        # 12 literals although the components have 10 each (Section 3.3).
        assert result.num_literals == 12
        assert c1.num_literals == c2.num_literals == 10

    def test_canonical_variables_of_union(self):
        c1, c2 = _paper_pair()
        union = cex_union(c1, c2).to_pseudocube()
        assert union.canonical_variables() == (0, 1, 2, 3, 7)

    def test_matches_affine_union(self):
        c1, c2 = _paper_pair()
        p = c1.to_pseudocube().union(c2.to_pseudocube())
        assert cex_of(p) == cex_union(c1, c2)


class TestErrors:
    def test_different_structures_rejected(self):
        a = cex_of(Pseudocube.from_points(3, [0b000, 0b011]))
        b = cex_of(Pseudocube.from_points(3, [0b000, 0b101]))
        with pytest.raises(UnionError):
            cex_union(a, b)

    def test_identical_rejected(self):
        a = cex_of(Pseudocube.from_point(3, 5))
        with pytest.raises(UnionError):
            cex_union(a, a)

    def test_different_spaces_rejected(self):
        a = cex_of(Pseudocube.from_point(3, 5))
        b = cex_of(Pseudocube.from_point(4, 5))
        with pytest.raises(UnionError):
            cex_union(a, b)


class TestAgainstAffine:
    @given(pseudocube_pairs_same_structure())
    def test_symbolic_equals_affine(self, pair):
        """Algorithm 1 on CEX expressions produces exactly the CEX of
        the affine union, factor for factor."""
        p1, p2 = pair
        symbolic = cex_union(cex_of(p1), cex_of(p2))
        affine = cex_of(p1.union(p2))
        assert symbolic == affine

    @given(pseudocube_pairs_same_structure())
    def test_union_is_linear_time_shape(self, pair):
        """The output has exactly one factor fewer than the inputs."""
        p1, p2 = pair
        result = cex_union(cex_of(p1), cex_of(p2))
        assert result.num_factors == cex_of(p1).num_factors - 1
