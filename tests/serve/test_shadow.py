"""Unit tests for :class:`repro.serve.shadow.ShadowVerifier`."""

from types import SimpleNamespace

import pytest

from repro.boolfunc.function import BoolFunc
from repro.engine.cache import ResultCache
from repro.minimize.exact import minimize_spp
from repro.serialize import form_to_dict
from repro.serve.breaker import RungBreaker
from repro.serve.shadow import ShadowVerifier

FUNC = BoolFunc(3, frozenset({0, 3, 5, 6}))
GOOD_FORM = form_to_dict(minimize_spp(FUNC).form)
BAD_FORM = {**GOOD_FORM, "pseudoproducts": []}  # covers nothing


def _outcome(form_dict, key="deadbeef", rung="exact"):
    return SimpleNamespace(
        job=SimpleNamespace(func=FUNC, content_hash=key),
        record={"rung": rung, "form": form_dict},
    )


@pytest.fixture
def shadow():
    created = []

    def _make(**kwargs):
        verifier = ShadowVerifier(**kwargs)
        created.append(verifier)
        return verifier

    yield _make
    for verifier in created:
        verifier.stop()


class TestSampling:
    def test_rate_one_samples_every_response(self, shadow):
        verifier = shadow(rate=1)
        assert verifier.consider([_outcome(GOOD_FORM)], remaining=None)
        assert verifier.flush()
        assert verifier.snapshot()["verified"] == 1

    def test_rate_zero_disables(self, shadow):
        verifier = shadow(rate=0)
        assert not verifier.consider([_outcome(GOOD_FORM)], remaining=None)
        assert verifier.snapshot()["scheduled"] == 0

    def test_round_robin_respects_rate(self, shadow):
        verifier = shadow(rate=4)
        picked = sum(
            verifier.consider([_outcome(GOOD_FORM)], remaining=None)
            for _ in range(8)
        )
        assert picked == 2

    def test_spent_deadline_is_shed(self, shadow):
        verifier = shadow(rate=1)
        assert not verifier.consider([_outcome(GOOD_FORM)], remaining=0.0)
        assert verifier.snapshot()["expired"] == 1

    def test_recordless_outcomes_are_skipped(self, shadow):
        verifier = shadow(rate=1)
        outcome = SimpleNamespace(
            job=SimpleNamespace(func=FUNC, content_hash="k"), record=None
        )
        assert not verifier.consider([outcome], remaining=None)


class TestMismatch:
    def test_mismatch_quarantines_and_feeds_breaker(self, shadow, tmp_path):
        cache = ResultCache(cache_dir=tmp_path / "cache")
        record = {"rung": "exact", "form": BAD_FORM, "literals": 0}
        cache.put("deadbeef", record)
        breaker = RungBreaker(threshold=3)
        verifier = shadow(rate=1, breaker=breaker, cache=cache)

        assert verifier.consider([_outcome(BAD_FORM)], remaining=None)
        assert verifier.flush()
        snap = verifier.snapshot()
        assert snap["mismatches"] == 1 and snap["verified"] == 0
        assert breaker.quarantined == {"exact": 1}
        assert cache.get("deadbeef") is None          # purged from memory
        assert list((tmp_path / "cache" / "quarantine").iterdir())

    def test_undecodable_form_counts_as_mismatch(self, shadow):
        verifier = shadow(rate=1)
        assert verifier.consider([_outcome({"garbage": True})], remaining=None)
        assert verifier.flush()
        assert verifier.snapshot()["mismatches"] == 1

    def test_repeated_mismatches_trip_the_breaker(self, shadow):
        breaker = RungBreaker(threshold=2)
        verifier = shadow(rate=1, breaker=breaker)
        for _ in range(2):
            verifier.consider([_outcome(BAD_FORM)], remaining=None)
        assert verifier.flush()
        assert not breaker.allow("exact", len(FUNC.on_set))


class TestLifecycle:
    def test_queue_overflow_drops_not_blocks(self, shadow):
        verifier = shadow(rate=1, queue_size=1)
        # Stall the worker by never starting it: submit before any
        # thread exists, so the second put finds the queue full.
        verifier._stopping = True  # prevent the worker from starting
        verifier.consider([_outcome(GOOD_FORM)], remaining=None)
        verifier.consider([_outcome(GOOD_FORM)], remaining=None)
        assert verifier.snapshot()["dropped"] == 1

    def test_stop_is_idempotent(self, shadow):
        verifier = shadow(rate=1)
        verifier.consider([_outcome(GOOD_FORM)], remaining=None)
        verifier.flush()
        verifier.stop()
        verifier.stop()
