"""Unit tests for the admission queue, breaker and memory watchdog."""

from __future__ import annotations

import threading

import pytest

from repro.errors import Overloaded
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import RungBreaker, size_bucket
from repro.serve.watchdog import MemoryWatchdog


class TestAdmissionQueue:
    def test_admits_up_to_workers(self):
        queue = AdmissionQueue(workers=2, capacity=0)
        with queue.admit():
            with queue.admit():
                snap = queue.snapshot()
                assert snap["active"] == 2
                assert snap["admitted"] == 2
        assert queue.snapshot()["active"] == 0

    def test_sheds_beyond_waiting_room(self):
        queue = AdmissionQueue(workers=1, capacity=0, wait_timeout=0.05)
        entered = threading.Event()
        release = threading.Event()

        def occupant():
            with queue.admit():
                entered.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=occupant)
        thread.start()
        assert entered.wait(timeout=2.0)
        with pytest.raises(Overloaded) as info:
            with queue.admit():
                pass
        assert info.value.retry_after > 0
        assert queue.snapshot()["shed"] == 1
        release.set()
        thread.join(timeout=2.0)

    def test_waiting_room_times_out(self):
        queue = AdmissionQueue(workers=1, capacity=1, wait_timeout=0.05)
        release = threading.Event()
        entered = threading.Event()

        def occupant():
            with queue.admit():
                entered.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=occupant)
        thread.start()
        assert entered.wait(timeout=2.0)
        # Fits in the waiting room, but no slot frees within the wait.
        with pytest.raises(Overloaded, match="no worker slot"):
            with queue.admit():
                pass
        release.set()
        thread.join(timeout=2.0)

    def test_closed_queue_sheds_everything(self):
        queue = AdmissionQueue(workers=4, capacity=4)
        queue.close()
        assert not queue.accepting
        with pytest.raises(Overloaded, match="draining"):
            with queue.admit():
                pass

    def test_shed_all_switch(self):
        queue = AdmissionQueue(workers=4, capacity=4)
        queue.shed_all = True
        with pytest.raises(Overloaded, match="memory pressure"):
            with queue.admit():
                pass
        queue.shed_all = False
        with queue.admit():
            pass


class TestRungBreaker:
    def test_opens_after_threshold_timeouts(self):
        breaker = RungBreaker(threshold=3, cooldown=60.0)
        for _ in range(2):
            breaker.record_timeout("exact", 100)
            assert breaker.allow("exact", 100)
        breaker.record_timeout("exact", 100)
        assert not breaker.allow("exact", 100)
        assert breaker.skips == 1

    def test_success_resets_the_count(self):
        breaker = RungBreaker(threshold=2, cooldown=60.0)
        breaker.record_timeout("exact", 100)
        breaker.record_success("exact", 100)
        breaker.record_timeout("exact", 100)
        assert breaker.allow("exact", 100)

    def test_size_buckets_are_independent(self):
        breaker = RungBreaker(threshold=1, cooldown=60.0)
        breaker.record_timeout("exact", 4096)
        assert not breaker.allow("exact", 5000)  # same 2^12 bucket
        assert breaker.allow("exact", 16)        # small jobs unaffected

    def test_half_open_probe_after_cooldown(self):
        clock = [0.0]
        breaker = RungBreaker(threshold=1, cooldown=10.0, clock=lambda: clock[0])
        breaker.record_timeout("exact", 100)
        assert not breaker.allow("exact", 100)
        clock[0] = 11.0
        assert breaker.allow("exact", 100)       # the probe
        assert not breaker.allow("exact", 100)   # only one probe at a time
        breaker.record_success("exact", 100)
        assert breaker.allow("exact", 100)       # closed again

    def test_probe_timeout_reopens(self):
        clock = [0.0]
        breaker = RungBreaker(threshold=1, cooldown=10.0, clock=lambda: clock[0])
        breaker.record_timeout("exact", 100)
        clock[0] = 11.0
        assert breaker.allow("exact", 100)
        breaker.record_timeout("exact", 100)     # probe failed
        clock[0] = 15.0                          # cooldown restarted at 11
        assert not breaker.allow("exact", 100)

    def test_snapshot_lists_open_entries(self):
        breaker = RungBreaker(threshold=1)
        breaker.record_timeout("exact", 100)
        snap = breaker.snapshot()
        assert list(snap) == [f"exact/2^{size_bucket(100)}"]
        assert snap[f"exact/2^{size_bucket(100)}"]["status"] == "open"


class TestMemoryWatchdog:
    def test_soft_ceiling_fires_callback(self):
        shrinks = []
        dog = MemoryWatchdog(
            soft_mb=100, on_soft=shrinks.append, sample=lambda: 150.0
        )
        dog.poll_once()
        assert shrinks == [150.0]
        assert dog.soft_trips == 1
        assert not dog.shedding

    def test_hard_ceiling_sheds_then_recovers(self):
        rss = [500.0]
        events = []
        dog = MemoryWatchdog(
            soft_mb=100,
            hard_mb=400,
            on_soft=lambda r: events.append(("soft", r)),
            on_hard=lambda r: events.append(("hard", r)),
            on_recover=lambda r: events.append(("recover", r)),
            sample=lambda: rss[0],
        )
        dog.poll_once()
        assert dog.shedding
        dog.poll_once()  # still over: hard fires once, not repeatedly
        assert dog.hard_trips == 1
        rss[0] = 50.0
        dog.poll_once()
        assert not dog.shedding
        assert events == [("hard", 500.0), ("recover", 50.0)]

    def test_unmeasurable_rss_is_inert(self):
        dog = MemoryWatchdog(soft_mb=1, on_soft=lambda r: 1 / 0, sample=lambda: None)
        dog.poll_once()  # no sample, no callback, no crash
        assert dog.last_rss_mb is None

    def test_soft_above_hard_rejected(self):
        with pytest.raises(ValueError):
            MemoryWatchdog(soft_mb=200, hard_mb=100)

    def test_disabled_watchdog_does_not_start(self):
        dog = MemoryWatchdog()
        assert not dog.enabled
        dog.start()
        assert dog._thread is None
