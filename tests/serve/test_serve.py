"""Integration tests for the ``repro serve`` service, in-process.

Each test starts a :class:`MinimizeService` on an ephemeral port and
talks plain ``http.client`` to it.  Deterministic slowness comes from
the fault-injection plan (``kind="slow"`` at ``scheduler.rung_start``)
rather than big inputs, so the tests stay fast and reliable.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import faults
from repro.engine.batch import Manifest
from repro.faults import FaultPlan, FaultRule
from repro.serve import MinimizeService, ServeConfig

PLA = ".i 3\n.o 1\n1-- 1\n-11 1\n.e\n"
# A different function with the same on-set size (5 points, so the same
# breaker size-bucket) — dodges the result cache between requests.
PLA_SAME_BUCKET = ".i 3\n.o 1\n0-- 1\n-11 1\n.e\n"


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    faults.uninstall()


@pytest.fixture()
def service():
    """Start a service on an ephemeral port; drain it afterwards."""
    started: list[MinimizeService] = []

    def _start(**overrides) -> tuple[MinimizeService, int]:
        config = ServeConfig(port=0, **overrides)
        svc = MinimizeService(config)
        _, port = svc.start()
        started.append(svc)
        return svc, port

    yield _start
    for svc in started:
        svc.drain(grace=0.0)


def _request(port: int, method: str, path: str, payload=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = json.loads(response.read() or b"{}")
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


def _get(port, path):
    return _request(port, "GET", path)


def _post(port, payload, headers=None):
    return _request(port, "POST", "/minimize", payload, headers)


class TestEndpoints:
    def test_health_ready_minimize(self, service):
        _, port = service()
        assert _get(port, "/healthz")[0] == 200
        assert _get(port, "/readyz")[0] == 200
        status, _, body = _post(port, {"pla": PLA})
        assert status == 200
        assert body["ok"]
        (entry,) = body["results"]
        assert entry["source"] in ("computed", "cached")
        assert entry["literals"] > 0

    def test_bad_requests(self, service):
        _, port = service()
        assert _post(port, {"method": "nope"})[0] == 400
        assert _post(port, {})[0] == 400
        assert _get(port, "/nope")[0] == 404
        status, _, body = _request(port, "POST", "/nope", {})
        assert status == 404 and not body["ok"]

    def test_max_rung_caps_the_ladder(self, service):
        _, port = service()
        status, _, body = _post(port, {"pla": PLA, "max_rung": "sp"})
        assert status == 200
        (entry,) = body["results"]
        assert entry["rung"] == "sp"
        assert entry["degraded"]

    def test_readyz_reflects_shedding(self, service):
        svc, port = service()
        svc.admission.shed_all = True
        status, headers, body = _get(port, "/readyz")
        assert status == 503
        assert body["status"] == "shedding"
        assert "Retry-After" in headers
        assert _get(port, "/healthz")[0] == 200  # liveness unaffected
        svc.admission.shed_all = False
        assert _get(port, "/readyz")[0] == 200


class TestOverload:
    def test_burst_sheds_excess_and_stays_healthy(self, service):
        # Admission shape: 1 worker slot + 1 waiting seat = capacity 2.
        # A 4x burst (8 concurrent) must shed the excess with 429 +
        # Retry-After while liveness stays green.
        svc, port = service(
            threads=1, queue_capacity=1, wait_timeout=0.2, default_budget=10.0
        )
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="slow",
                           arg=0.5, times=None)]
            )
        )
        burst = 8
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def fire():
            status, headers, _ = _post(port, {"pla": PLA, "timeout": 3.0})
            with lock:
                results.append((status, headers))

        threads = [threading.Thread(target=fire) for _ in range(burst)]
        for thread in threads:
            thread.start()
        assert _get(port, "/healthz")[0] == 200  # mid-burst liveness
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == burst
        shed = [r for r in results if r[0] == 429]
        served = [r for r in results if r[0] == 200]
        assert len(shed) >= burst - 2  # at most slot + waiting seat get in
        assert served  # and the admitted work still completes
        for _, headers in shed:
            assert "Retry-After" in headers
        assert svc.stats()["admission"]["shed"] >= burst - 2
        assert _get(port, "/healthz")[0] == 200

    def test_budget_exceeded_is_structured(self, service):
        _, port = service()
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="slow",
                           arg=30.0, times=None)]
            )
        )
        status, _, body = _post(
            port, {"pla": PLA, "budget_seconds": 0.2, "timeout": 5.0}
        )
        assert status == 408
        assert body["error"]["code"] == "budget-exceeded"
        assert body["results"][0]["source"] == "cancelled"


class TestDrain:
    def test_drain_cancels_inflight_and_journal_survives(self, service, tmp_path):
        manifest_dir = tmp_path / "manifest"
        svc, port = service(
            manifest_dir=str(manifest_dir), default_budget=30.0
        )
        # One completed request lands in the journal before the drain.
        assert _post(port, {"pla": PLA})[0] == 200
        journal_keys = set(Manifest(manifest_dir).replay())
        assert len(journal_keys) == 1

        # Now stall a request indefinitely and drain mid-flight.
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="slow",
                           arg=30.0, times=None)]
            )
        )
        outcome: list[tuple[int, dict]] = []

        def slow_request():
            status, _, body = _post(port, {"benchmark": "adr2", "timeout": 20.0})
            outcome.append((status, body))

        thread = threading.Thread(target=slow_request)
        thread.start()
        for _ in range(200):
            if svc.inflight:
                break
            threading.Event().wait(0.01)
        assert svc.inflight == 1

        svc.drain(grace=0.1)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        (status, body), = outcome
        assert status == 503
        assert body["error"]["code"] == "cancelled"
        assert "draining" in body["error"]["message"]

        # The journal survived the drain byte-for-byte usable: the
        # pre-drain record replays, the cancelled one never landed.
        assert set(Manifest(manifest_dir).replay()) == journal_keys

    def test_drained_service_refuses_new_work(self, service):
        svc, port = service()
        svc.admission.close()
        status, headers, body = _post(port, {"pla": PLA})
        assert status == 429
        assert "Retry-After" in headers
        assert "draining" in body["error"]["message"]
        assert _get(port, "/readyz")[0] == 503


class TestBreakerIntegration:
    def test_repeated_timeouts_open_the_breaker(self, service):
        svc, port = service(breaker_threshold=1, default_budget=10.0)
        faults.install(
            FaultPlan(
                [FaultRule(site="scheduler.rung_start", kind="slow",
                           arg=30.0, times=1)]
            )
        )
        # First request: the exact rung stalls past its 0.1s attempt
        # deadline, times out, and trips the threshold-1 breaker.
        status, _, body = _post(port, {"pla": PLA, "timeout": 0.1})
        assert status == 200
        assert body["results"][0]["degraded"]
        assert svc.stats()["breaker"]["open"]  # exact/<bucket> is open

        # Second request (fault exhausted, different function in the
        # same size bucket so the cache stays out of the way): the gate
        # skips the exact rung outright instead of burning another
        # timeout.
        status, _, body = _post(port, {"pla": PLA_SAME_BUCKET, "timeout": 0.1})
        assert status == 200
        assert body["results"][0]["rung"] != "exact"
        assert svc.stats()["breaker"]["skips"] >= 1


class TestDeadlinePropagation:
    """The worker end of X-Repro-Deadline: shed expired work unrun."""

    def test_expired_deadline_is_shed_before_compute(self, service):
        svc, port = service()
        status, headers, body = _post(
            port, {"pla": PLA}, headers={"X-Repro-Deadline": "0"}
        )
        assert status == 503
        assert body["error"]["code"] == "deadline-exceeded"
        assert "Retry-After" in headers
        assert svc.stats()["counters"]["deadline_shed"] == 1
        # Never computed: no request ever completed (or even failed) —
        # the shed happened before any minimization work.
        counters = svc.stats()["counters"]
        assert counters["completed"] == 0 and counters["failed"] == 0

    def test_live_deadline_caps_the_request_budget(self, service):
        svc, port = service(default_budget=30.0)
        faults.install(FaultPlan(
            [FaultRule(site="scheduler.rung_start", kind="slow",
                       arg=30.0, times=None)]
        ))
        started = time.monotonic()
        status, _, body = _post(
            port, {"pla": PLA, "timeout": 10.0},
            headers={"X-Repro-Deadline": "1.0"},
        )
        elapsed = time.monotonic() - started
        # The 1s propagated deadline overrode both the 30s default
        # budget and the 10s requested rung timeout: the stalled rung
        # was abandoned around the deadline with the structured
        # budget-exceeded outcome instead of grinding on for 10s+.
        assert status == 408
        assert body["error"]["code"] == "budget-exceeded"
        assert body["results"][0]["source"] == "cancelled"
        assert elapsed < 8.0, elapsed

    def test_malformed_deadline_is_ignored(self, service):
        _, port = service()
        status, _, body = _post(
            port, {"pla": PLA}, headers={"X-Repro-Deadline": "not-a-number"}
        )
        assert status == 200
        assert body["ok"]
