"""Tests for latency histograms and Prometheus text exposition.

The mini-parser in :func:`parse_prometheus` checks the exposition
*format* (HELP/TYPE headers, label syntax, histogram conventions), not
just substrings — the same checker the cluster smoke example uses.
"""

from __future__ import annotations

import re

import pytest

from repro.serve import MinimizeService, ServeConfig
from repro.serve.metrics import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    Metric,
    render_metrics,
)

PLA = ".i 3\n.o 1\n1-- 1\n-11 1\n.e\n"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition format; raises on malformed lines.

    Returns {family: {"type": str, "samples": [(series, labels, value)]}}.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split()[2]
            families.setdefault(name, {"type": None, "samples": []})
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            assert name == current, f"TYPE for {name} outside its family"
            assert kind in ("counter", "gauge", "histogram", "summary")
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        series = match.group("name")
        assert current and series.startswith(current), (
            f"sample {series} outside family {current}"
        )
        labels = {}
        if match.group("labels"):
            for pair in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"',
                                   match.group("labels")):
                labels[pair[0]] = pair[1]
        value = float(match.group("value").replace("+Inf", "inf"))
        families[current]["samples"].append((series, labels, value))
    return families


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["mean_seconds"] is None

    def test_counts_and_cumulative(self):
        hist = LatencyHistogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts() == [1, 2, 1, 1]
        assert hist.cumulative() == [1, 3, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)

    def test_quantile_interpolates_within_bucket(self):
        hist = LatencyHistogram(buckets=(0.1, 1.0))
        for _ in range(100):
            hist.observe(0.5)
        # All mass in (0.1, 1.0]; estimates stay inside that bucket.
        for q in (0.01, 0.5, 0.99):
            assert 0.1 <= hist.quantile(q) <= 1.0

    def test_quantile_orders(self):
        hist = LatencyHistogram()
        for value in (0.002, 0.02, 0.2, 2.0):
            for _ in range(25):
                hist.observe(value)
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99

    def test_overflow_clamps_to_top_bound(self):
        hist = LatencyHistogram(buckets=(0.1, 1.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 1.0

    def test_negative_clamped(self):
        hist = LatencyHistogram()
        hist.observe(-5.0)
        assert hist.count == 1
        assert hist.sum == 0.0

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_snapshot_keys(self):
        hist = LatencyHistogram()
        hist.observe(0.01)
        snap = hist.snapshot()
        assert set(snap) == {
            "count", "sum_seconds", "mean_seconds", "p50", "p95", "p99"
        }
        assert snap["count"] == 1

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRenderMetrics:
    def test_counter_and_labels(self):
        metric = Metric("jobs_total", "Jobs.", "counter")
        metric.add(3, status="ok").add(1, status="failed")
        text = render_metrics([metric])
        families = parse_prometheus(text)
        assert families["jobs_total"]["type"] == "counter"
        samples = {tuple(sorted(s[1].items())): s[2]
                   for s in families["jobs_total"]["samples"]}
        assert samples[(("status", "ok"),)] == 3
        assert samples[(("status", "failed"),)] == 1

    def test_histogram_family_convention(self):
        hist = LatencyHistogram(buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_metrics(
            [Metric.from_histogram("req_seconds", "Latency.", hist)]
        )
        families = parse_prometheus(text)
        assert list(families) == ["req_seconds"]
        assert families["req_seconds"]["type"] == "histogram"
        by_series: dict[str, list] = {}
        for series, labels, value in families["req_seconds"]["samples"]:
            by_series.setdefault(series, []).append((labels, value))
        buckets = by_series["req_seconds_bucket"]
        assert [lab["le"] for lab, _ in buckets] == ["0.1", "1", "+Inf"]
        # Cumulative and capped by the total count.
        values = [v for _, v in buckets]
        assert values == sorted(values) and values[-1] == 2
        assert by_series["req_seconds_count"][0][1] == 2
        assert by_series["req_seconds_sum"][0][1] == pytest.approx(0.55)

    def test_same_family_merged_under_one_header(self):
        a = Metric("x_total", "X.", "counter").add(1, shard="a")
        b = Metric("x_total", "X.", "counter").add(2, shard="b")
        text = render_metrics([a, b])
        assert text.count("# HELP x_total") == 1
        assert text.count("# TYPE x_total") == 1
        assert len(parse_prometheus(text)["x_total"]["samples"]) == 2

    def test_label_escaping(self):
        metric = Metric("m", "Help.", "gauge").add(1, path='a"b\\c\nd')
        text = render_metrics([metric])
        assert r'path="a\"b\\c\nd"' in text


class TestServiceMetrics:
    @pytest.fixture()
    def service(self):
        started = []

        def _start(**overrides):
            svc = MinimizeService(ServeConfig(port=0, **overrides))
            _, port = svc.start()
            started.append(svc)
            return svc, port

        yield _start
        for svc in started:
            svc.drain(grace=0.0)

    def _get(self, port, path):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def _post(self, port, payload):
        import http.client
        import json

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("POST", "/minimize", body=json.dumps(payload))
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_stats_latency_percentiles(self, service):
        _, port = service()
        for _ in range(3):
            status, _ = self._post(port, {"pla": PLA})
            assert status == 200
        import json

        _, _, body = self._get(port, "/stats")
        latency = json.loads(body)["latency"]
        assert latency["count"] == 3
        assert latency["p50"] is not None
        assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_metrics_endpoint(self, service):
        _, port = service()
        status, _ = self._post(port, {"pla": PLA})
        assert status == 200
        status, headers, body = self._get(port, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus(body.decode())
        assert families["repro_request_seconds"]["type"] == "histogram"
        requests = {
            s[1]["status"]: s[2]
            for s in families["repro_requests_total"]["samples"]
        }
        assert requests["completed"] == 1
        assert "shed" in requests
        assert "repro_cache_events_total" in families
        assert "repro_breaker_open" in families
