"""End-to-end integrity behavior of the serving tier.

A tampered-but-checksum-valid cache record is planted via the
``cache.disk.corrupt_payload`` fault site; these tests prove the three
serving-side defenses catch it: synchronous ``"verify": true``
(HTTP 500 with counterexamples), sampled shadow verification
(post-response quarantine + breaker feed), and the ``X-Repro-Verified``
header reporting the weakest certificate level served.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.serve import VERIFIED_HEADER, MinimizeService, ServeConfig

PLA = ".i 3\n.o 1\n1-- 1\n-11 1\n.e\n"


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    faults.uninstall()


@pytest.fixture()
def service():
    started: list[MinimizeService] = []

    def _start(**overrides) -> tuple[MinimizeService, int]:
        config = ServeConfig(port=0, **overrides)
        svc = MinimizeService(config)
        _, port = svc.start()
        started.append(svc)
        return svc, port

    yield _start
    for svc in started:
        svc.drain(grace=0.0)


def _post(port: int, payload, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", "/minimize", body=json.dumps(payload),
                     headers=headers or {})
        response = conn.getresponse()
        return (response.status, dict(response.getheaders()),
                json.loads(response.read() or b"{}"))
    finally:
        conn.close()


def _plant_corrupt_record(service, tmp_path):
    """Compute once with the payload-corruption fault live, then drain:
    the shared disk tier now holds a checksum-valid wrong record."""
    faults.install(FaultPlan([
        FaultRule(site="cache.disk.corrupt_payload",
                  kind="corrupt_payload", times=1),
    ]))
    svc, port = service(cache_dir=str(tmp_path / "cache"), shadow_rate=0)
    status, _, _ = _post(port, {"pla": PLA})
    assert status == 200
    svc.drain(grace=0.0)
    faults.uninstall()


class TestVerifiedHeader:
    def test_fresh_compute_serves_full(self, service):
        _, port = service()
        status, headers, _ = _post(port, {"pla": PLA})
        assert status == 200
        assert headers[VERIFIED_HEADER] == "full"

    def test_sync_verify_reports_full(self, service):
        _, port = service(audit_rate=0)
        status, headers, body = _post(port, {"pla": PLA, "verify": True})
        assert status == 200 and body["ok"]
        assert headers[VERIFIED_HEADER] == "full"


class TestSyncVerification:
    def test_corrupt_record_yields_500_with_counterexamples(
        self, service, tmp_path
    ):
        _plant_corrupt_record(service, tmp_path)
        # Fresh service, cold memory, auditing off: the tampered disk
        # record is served unless the client asks for verification.
        svc, port = service(cache_dir=str(tmp_path / "cache"),
                            audit_rate=0, shadow_rate=0)
        status, _, body = _post(port, {"pla": PLA, "verify": True})
        assert status == 500
        assert body["error"]["code"] == "integrity"
        ces = body["error"]["counterexamples"]
        assert not ces["ok"]
        assert ces["uncovered_on_points"] or ces["covered_off_points"]
        assert "truncated" in ces

        # The wrong record was quarantined: a retry recomputes and is
        # served verified.
        status, headers, body = _post(port, {"pla": PLA, "verify": True})
        assert status == 200 and body["ok"]
        assert headers[VERIFIED_HEADER] == "full"
        stats = svc.stats()
        assert stats["counters"]["integrity"] == 1
        assert sum(stats["breaker"]["quarantined"].values()) == 1

    def test_verify_on_read_audit_catches_it_without_the_flag(
        self, service, tmp_path
    ):
        _plant_corrupt_record(service, tmp_path)
        # audit_rate=1: the disk load itself is audited; the client
        # transparently gets a recomputed, correct answer.
        svc, port = service(cache_dir=str(tmp_path / "cache"),
                            audit_rate=1, shadow_rate=0)
        status, headers, body = _post(port, {"pla": PLA})
        assert status == 200 and body["ok"]
        assert headers[VERIFIED_HEADER] == "full"
        cache_stats = svc.cache.stats
        assert cache_stats.audit_mismatches == 1


class TestShadowVerification:
    def test_shadow_catches_served_corrupt_record(self, service, tmp_path):
        _plant_corrupt_record(service, tmp_path)
        svc, port = service(cache_dir=str(tmp_path / "cache"),
                            audit_rate=0, shadow_rate=1)
        # The wrong record is served (nothing checks it in-band) …
        status, _, body = _post(port, {"pla": PLA})
        assert status == 200 and body["ok"]
        # … but the shadow lane catches it after the fact.
        assert svc.shadow.flush()
        snap = svc.shadow.snapshot()
        assert snap["mismatches"] == 1
        stats = svc.stats()
        assert sum(stats["breaker"]["quarantined"].values()) == 1
        assert stats["shadow"]["mismatches"] == 1
        # Quarantined => the next request recomputes correctly.
        status, headers, _ = _post(port, {"pla": PLA})
        assert status == 200
        assert headers[VERIFIED_HEADER] == "full"
        assert svc.shadow.flush()
        assert svc.shadow.snapshot()["verified"] >= 1

    def test_clean_responses_shadow_verify_quietly(self, service):
        svc, port = service(shadow_rate=1)
        status, _, _ = _post(port, {"pla": PLA})
        assert status == 200
        assert svc.shadow.flush()
        snap = svc.shadow.snapshot()
        assert snap["verified"] == 1 and snap["mismatches"] == 0


class TestMetricsExposure:
    def test_integrity_counters_in_metrics_text(self, service, tmp_path):
        _plant_corrupt_record(service, tmp_path)
        svc, port = service(cache_dir=str(tmp_path / "cache"),
                            audit_rate=1, shadow_rate=1)
        assert _post(port, {"pla": PLA})[0] == 200
        svc.shadow.flush()
        text = svc.metrics_text()
        assert 'repro_cache_events_total{kind="audited"} 1' in text
        assert 'repro_cache_events_total{kind="audit_mismatches"} 1' in text
        assert "repro_rung_quarantine_total" in text
        assert 'repro_shadow_events_total{kind="scheduled"}' in text
