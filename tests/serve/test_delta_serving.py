"""The ``"base"``/``"delta"`` request form and the serving warm path."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import MinimizeService, ServeConfig
from repro.serve.server import UsageError, jobs_from_payload

# On-set {1,3,5,6,7}: not a pseudocube, so the exact rung generates a
# real candidate stream the DeltaIndex can snapshot.
PLA = ".i 3\n.o 1\n1-- 1\n-11 1\n.e\n"


@pytest.fixture()
def service():
    started: list[MinimizeService] = []

    def _start(**overrides):
        config = ServeConfig(port=0, **overrides)
        svc = MinimizeService(config)
        _, port = svc.start()
        started.append(svc)
        return svc, port

    yield _start
    for svc in started:
        svc.drain(grace=0.0)


def _request(port, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class TestPayloadExpansion:
    def test_delta_form_toggles_the_base(self):
        payload = {"base": {"pla": PLA, "label": "f"}, "delta": {"toggles": [7]}}
        jobs = jobs_from_payload(payload)
        assert len(jobs) == 1
        assert jobs[0].label == "f[0]+d1"
        assert 7 not in jobs[0].func.on_set
        assert 7 in jobs[0].func.dc_set

    def test_routing_returns_base_jobs(self):
        payload = {"base": {"pla": PLA, "label": "f"}, "delta": {"toggles": [7]}}
        base = jobs_from_payload(payload, routing=True)
        assert len(base) == 1
        assert base[0].label == "f[0]"
        assert 7 in base[0].func.on_set

    def test_options_merge_under_the_base(self):
        payload = {
            "base": {"pla": PLA},
            "delta": {"toggles": []},
            "covering": "exact",
        }
        jobs = jobs_from_payload(payload)
        assert jobs[0].covering == "exact"

    @pytest.mark.parametrize(
        "payload",
        [
            {"delta": {"toggles": [0]}},  # no base
            {"base": "nope", "delta": {"toggles": [0]}},
            {"base": {"pla": PLA}, "delta": [0]},
            {"base": {"pla": PLA}, "delta": {"toggles": [True]}},
            {"base": {"pla": PLA}, "delta": {"toggles": "0,1"}},
            {"base": {"pla": PLA}, "delta": {"toggles": [99]}},  # outside B^3
        ],
    )
    def test_malformed_delta_rejected(self, payload):
        with pytest.raises(UsageError):
            jobs_from_payload(payload)


class TestServingWarmPath:
    def test_delta_request_hits_warm_and_is_counted(self, service):
        svc, port = service()
        status, body = _request(port, "POST", "/minimize", {"pla": PLA})
        assert status == 200

        delta = {"base": {"pla": PLA}, "delta": {"toggles": [7]}}
        status, warm_body = _request(port, "POST", "/minimize", delta)
        assert status == 200
        assert warm_body["results"][0]["rung"] == "exact"
        assert not warm_body["results"][0]["degraded"]

        status, stats = _request(port, "GET", "/stats")
        assert status == 200
        assert stats["delta"]["entries"] >= 1
        assert stats["delta"]["warm_hits"] >= 1

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode()
        finally:
            conn.close()
        assert 'repro_delta_events_total{kind="warm_hits"}' in text
        assert "repro_delta_entries" in text

    def test_delta_disabled_still_serves(self, service):
        svc, port = service(delta_entries=0)
        delta = {"base": {"pla": PLA}, "delta": {"toggles": [7]}}
        status, body = _request(port, "POST", "/minimize", delta)
        assert status == 200
        status, stats = _request(port, "GET", "/stats")
        assert stats["delta"] == {}
