"""Tests for table rendering."""

from repro.report import format_value, render_table


class TestFormatValue:
    def test_none_is_star(self):
        assert format_value(None) == "*"

    def test_float_two_decimals(self):
        assert format_value(1.234) == "1.23"

    def test_int_and_str(self):
        assert format_value(42) == "42"
        assert format_value("x") == "x"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["name", "v"], [["long-name", 1], ["x", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "long-name" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
