"""Integration tests for the cluster coordinator.

One real 2-worker cluster (subprocess workers, in-process coordinator)
is shared module-wide to amortize startup; each test leaves it healthy.
Routing-key unit tests use an unstarted coordinator — no processes.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import pytest

from repro.cluster import ClusterConfig, ClusterCoordinator
from tests.serve.test_metrics import parse_prometheus

PLAS = [
    f".i 3\n.o 1\n{format(i, '03b')} 1\n111 1\n.e\n" for i in range(6)
]


def _body(pla: str, **extra) -> bytes:
    payload = {"pla": pla, "max_rung": "heuristic"}
    payload.update(extra)
    return json.dumps(payload, sort_keys=True).encode()


class TestRoutingKey:
    """Key derivation only — no worker processes involved."""

    @pytest.fixture()
    def coordinator(self):
        return ClusterCoordinator(ClusterConfig(workers=2))

    def test_same_job_same_key(self, coordinator):
        a = json.dumps({"pla": PLAS[0], "max_rung": "heuristic"}).encode()
        b = json.dumps(
            {"max_rung": "heuristic", "pla": PLAS[0]}
        ).encode()  # different key order, same job
        assert coordinator.routing_key(a) == coordinator.routing_key(b)

    def test_different_jobs_different_keys(self, coordinator):
        keys = {coordinator.routing_key(_body(pla)) for pla in PLAS}
        assert len(keys) == len(PLAS)

    def test_unparseable_body_is_structured_400(self, coordinator):
        # A body no worker could parse is rejected at the front door
        # with the same structured error taxonomy the workers use.
        status, _, body = coordinator.handle_minimize(b"this is not json")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "usage"

    def test_routing_key_is_memoized(self, coordinator):
        body = _body(PLAS[0])
        first = coordinator.routing_key(body)
        assert coordinator.routing_key(body) == first
        assert coordinator._counters["route_memo_hits"] >= 1

    def test_plan_lists_distinct_workers(self, coordinator):
        coordinator.ring.add("w0")
        coordinator.ring.add("w1")
        plan = coordinator.plan_for("somekey")
        assert len(plan) == len(set(plan)) == 2


@pytest.fixture(scope="module")
def cluster():
    coordinator = ClusterCoordinator(ClusterConfig(
        port=0,
        workers=2,
        worker_threads=2,
        worker_queue_capacity=4,
        health_interval=0.2,
        restart_backoff=0.2,
        worker_start_timeout=90.0,
    ))
    host, port = coordinator.start()
    yield coordinator, host, port
    coordinator.drain(grace=2.0)


def _post(host: str, port: int, body: bytes) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("POST", "/minimize", body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def _get(host: str, port: int, path: str) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _wait_all_up(coordinator, timeout=60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = coordinator.stats()
        if all(w["status"] == "up" for w in stats["workers"].values()):
            return stats
        time.sleep(0.2)
    raise AssertionError(f"workers never all up: {coordinator.stats()}")


class TestCluster:
    def test_requests_route_and_succeed(self, cluster):
        coordinator, host, port = cluster
        for pla in PLAS:
            status, doc = _post(host, port, _body(pla))
            assert status == 200, doc
            assert doc["ok"]

    def test_verified_header_passes_through_proxy(self, cluster):
        _, host, port = cluster
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request("POST", "/minimize", body=_body(PLAS[0]))
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            assert response.getheader("X-Repro-Verified") == "full"
        finally:
            conn.close()

    def test_routing_is_sticky(self, cluster):
        """Repeats of one body land on one worker (cache locality)."""
        coordinator, host, port = cluster
        before = {
            name: w["requests"]
            for name, w in coordinator.stats()["workers"].items()
        }
        body = _body(PLAS[0])
        for _ in range(4):
            assert _post(host, port, body)[0] == 200
        moved = {
            name: w["requests"] - before[name]
            for name, w in coordinator.stats()["workers"].items()
        }
        assert sorted(moved.values()) == [0, 4], moved

    def test_probes_and_stats(self, cluster):
        coordinator, host, port = cluster
        assert _get(host, port, "/healthz")[0] == 200
        assert _get(host, port, "/readyz")[0] == 200
        status, body = _get(host, port, "/stats")
        assert status == 200
        doc = json.loads(body)
        assert set(doc["workers"]) == {"w0", "w1"}
        assert doc["counters"]["requests"] >= 1
        assert sorted(doc["ring"]) == ["w0", "w1"]

    def test_metrics_parse_as_prometheus(self, cluster):
        coordinator, host, port = cluster
        assert _post(host, port, _body(PLAS[0]))[0] == 200
        status, body = _get(host, port, "/metrics")
        assert status == 200
        families = parse_prometheus(body.decode())
        assert families["repro_cluster_request_seconds"]["type"] == "histogram"
        in_ring = {
            s[1]["worker"]: s[2]
            for s in families["repro_cluster_worker_info"]["samples"]
        }
        assert in_ring == {"w0": 1.0, "w1": 1.0}
        assert "repro_cluster_worker_requests_total" in families

    def test_kill_worker_fails_over_then_restarts(self, cluster):
        coordinator, host, port = cluster
        _wait_all_up(coordinator)
        victim = next(iter(coordinator._workers.values()))
        old_restarts = victim.proc.restarts
        os.kill(victim.proc.pid, signal.SIGKILL)
        # Every request during the outage is answered: success via
        # failover, or a structured 429/503 — never a dropped socket.
        outcomes = []
        for pla in PLAS * 2:
            status, doc = _post(host, port, _body(pla))
            outcomes.append(status)
            assert status in (200, 429, 503), doc
            if status != 200:
                assert doc["error"]["code"]
        assert outcomes.count(200) >= len(PLAS), outcomes
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            stats = coordinator.stats()
            victim_stats = stats["workers"][victim.proc.name]
            if (victim_stats["restarts"] > old_restarts
                    and victim_stats["status"] == "up"):
                break
            time.sleep(0.2)
        else:
            raise AssertionError(f"victim never restarted: {stats}")
        _wait_all_up(coordinator)
        # The restarted worker serves again (same port, back on ring).
        for pla in PLAS:
            assert _post(host, port, _body(pla))[0] == 200

    def test_draining_coordinator_rejects_new_work(self, cluster):
        # Run last: uses an independent cluster so the shared one stays up.
        inner = ClusterCoordinator(ClusterConfig(
            port=0, workers=1, worker_threads=1,
            worker_start_timeout=90.0,
        ))
        host, port = inner.start()
        try:
            assert _post(host, port, _body(PLAS[0]))[0] == 200
            inner._draining = True
            status, doc = _post(host, port, _body(PLAS[1]))
            assert status == 429
            assert doc["error"]["code"] == "overloaded"
        finally:
            inner._draining = False
            inner.drain(grace=2.0)
