"""Property tests for the consistent-hash ring.

The two theorems the cluster's routing relies on, checked on random
node sets and key populations:

* **balance** — with enough virtual replicas, every node owns a
  similar share of the key space (no worker becomes a hot shard by
  construction);
* **minimal remapping** — adding or removing one node only touches the
  keys that change owner *to or from that node*; every other key keeps
  its assignment, which is what keeps worker caches warm across
  membership churn.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing

node_names = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)

keys_strategy = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=64, unique=True
)


def _keys(count: int) -> list[str]:
    return [f"key-{i:05d}" for i in range(count)]


class TestBasics:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert list(ring.successors("anything")) == []
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in _keys(50))

    def test_add_remove_idempotent(self):
        ring = HashRing(replicas=8)
        ring.add("a")
        ring.add("a")
        assert len(ring._points) == 8
        ring.remove("a")
        ring.remove("a")
        assert len(ring._points) == 0

    def test_membership(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "b" in ring and "c" not in ring
        assert ring.nodes == frozenset({"a", "b"})

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_deterministic_across_instances(self):
        keys = _keys(100)
        first = HashRing(["w0", "w1", "w2"])
        second = HashRing(["w2", "w0", "w1"])  # insertion order irrelevant
        assert [first.node_for(k) for k in keys] == [
            second.node_for(k) for k in keys
        ]


class TestBalance:
    def test_keys_spread_over_all_nodes(self):
        nodes = [f"w{i}" for i in range(4)]
        ring = HashRing(nodes, replicas=64)
        counts = {n: 0 for n in nodes}
        total = 4000
        for key in _keys(total):
            counts[ring.node_for(key)] += 1
        fair = total / len(nodes)
        # 64 replicas keep every real node within ~2x of fair share
        # (deterministic: SHA-256 layout, fixed key population).
        for node, count in counts.items():
            assert count > fair / 2, f"{node} starved: {counts}"
            assert count < fair * 2, f"{node} overloaded: {counts}"

    @given(nodes=node_names)
    @settings(max_examples=30, deadline=None)
    def test_every_node_owns_some_keyspace(self, nodes):
        ring = HashRing(nodes, replicas=64)
        owners = {ring.node_for(k) for k in _keys(2000)}
        # With 2000 keys over ≤8 nodes, every node should surface.
        assert owners == set(nodes)


class TestMinimalRemapping:
    @given(nodes=node_names, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_join_only_pulls_keys_to_the_new_node(self, nodes, keys):
        ring = HashRing(nodes)
        before = {k: ring.node_for(k) for k in keys}
        newcomer = "newcomer-node"
        ring.add(newcomer)
        for key in keys:
            after = ring.node_for(key)
            if after != before[key]:
                assert after == newcomer, (
                    f"{key!r} moved {before[key]!r}→{after!r}, "
                    f"not to the joining node"
                )

    @given(nodes=node_names, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_leave_only_moves_the_leavers_keys(self, nodes, keys):
        ring = HashRing(nodes)
        victim = sorted(nodes)[0]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove(victim)
        for key in keys:
            after = ring.node_for(key)
            if before[key] != victim:
                assert after == before[key], (
                    f"{key!r} moved {before[key]!r}→{after!r} though "
                    f"only {victim!r} left"
                )
            elif after is not None:
                assert after != victim

    @given(nodes=node_names, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_join_then_leave_is_identity(self, nodes, keys):
        ring = HashRing(nodes)
        before = {k: ring.node_for(k) for k in keys}
        ring.add("transient-node")
        ring.remove("transient-node")
        assert {k: ring.node_for(k) for k in keys} == before

    def test_expected_movement_fraction(self):
        """Adding 1 node to N=4 remaps about 1/(N+1) of keys."""
        keys = _keys(4000)
        ring = HashRing([f"w{i}" for i in range(4)], replicas=64)
        before = {k: ring.node_for(k) for k in keys}
        ring.add("w4")
        moved = sum(1 for k in keys if ring.node_for(k) != before[k])
        fraction = moved / len(keys)
        assert 0.05 < fraction < 0.40, fraction  # ideal 0.20


class TestSuccessors:
    @given(nodes=node_names, key=st.text(min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_successors_enumerate_all_nodes_once(self, nodes, key):
        ring = HashRing(nodes)
        order = list(ring.successors(key))
        assert order[0] == ring.node_for(key)
        assert sorted(order) == sorted(nodes)

    @given(nodes=node_names, key=st.text(min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_failover_target_matches_post_eviction_owner(self, nodes, key):
        """successors[1] is exactly who owns the key once the owner leaves."""
        ring = HashRing(nodes)
        order = list(ring.successors(key))
        if len(order) < 2:
            return
        ring.remove(order[0])
        assert ring.node_for(key) == order[1]
