"""Unit, property, and chaos tests for the cluster resilience layer.

The unit half exercises the pure policies (quantile tracker, adaptive
hedge, retry budget, autoscale decisions, restart backoff, deadline
codec) with Hypothesis properties where the invariant is structural:
bounded memory, quantile-within-bucket error, decay convergence to a
new latency regime.

The integration half runs a real 2-worker cluster and inflicts the
failure the whole layer exists for — a SIGSTOPped (wedged-but-alive)
worker in the middle of traffic — asserting that adaptive hedging
keeps every accepted request flowing, and that an expired
``X-Repro-Deadline`` is shed at admission, never computed.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.cluster.resilience import (
    ALL_ROUTES,
    DEADLINE_HEADER,
    AdaptiveHedge,
    AutoscalePolicy,
    DecayingQuantileTracker,
    RetryBudget,
    format_deadline,
    parse_deadline,
    restart_delay,
)

# -- deadline codec ----------------------------------------------------


class TestDeadlineCodec:
    def test_roundtrip(self):
        assert parse_deadline(format_deadline(2.5)) == pytest.approx(2.5)

    def test_negative_formats_as_zero(self):
        assert parse_deadline(format_deadline(-3.0)) == 0.0

    @pytest.mark.parametrize(
        "raw", [None, "", "garbage", "nan", "inf", "-inf", "1e999"]
    )
    def test_malformed_is_none(self, raw):
        assert parse_deadline(raw) is None


# -- quantile tracker --------------------------------------------------


class TestDecayingQuantileTracker:
    def test_empty_route_has_no_quantile(self):
        tracker = DecayingQuantileTracker()
        assert tracker.quantile("w0", 0.95) is None
        assert tracker.samples("w0") == 0.0

    def test_observation_feeds_route_and_aggregate(self):
        tracker = DecayingQuantileTracker()
        tracker.observe("w0", 0.02)
        assert tracker.samples("w0") == pytest.approx(1.0)
        assert tracker.samples(ALL_ROUTES) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        routes=st.lists(
            st.sampled_from([f"w{i}" for i in range(40)]),
            min_size=1, max_size=300,
        ),
        values=st.data(),
    )
    def test_memory_is_bounded(self, routes, values):
        """No observation stream can grow the tracker past its caps."""
        tracker = DecayingQuantileTracker(max_routes=8)
        width = len(tracker.bounds) + 1
        for route in routes:
            tracker.observe(
                route, values.draw(st.floats(0.0, 120.0, allow_nan=False))
            )
        assert len(tracker._counts) <= 8
        assert all(len(c) == width for c in tracker._counts.values())

    @settings(max_examples=50, deadline=None)
    @given(
        value=st.floats(0.0005, 59.0, allow_nan=False),
        count=st.integers(1, 200),
        q=st.floats(0.0, 1.0),
    )
    def test_quantile_within_owning_bucket(self, value, count, q):
        """Any quantile of identical samples lands in the sample's bucket
        — the histogram estimate is exact to one bucket width."""
        from bisect import bisect_left

        tracker = DecayingQuantileTracker()
        for _ in range(count):
            tracker.observe("w0", value)
        estimate = tracker.quantile("w0", q)
        index = bisect_left(tracker.bounds, value)
        lower = tracker.bounds[index - 1] if index > 0 else 0.0
        upper = tracker.bounds[min(index, len(tracker.bounds) - 1)]
        assert lower <= estimate <= upper

    @settings(max_examples=25, deadline=None)
    @given(
        old=st.sampled_from([0.002, 0.02, 0.08]),
        new=st.sampled_from([0.8, 3.0, 20.0]),
    )
    def test_decay_converges_to_new_regime(self, old, new):
        """After a latency regime change, the decayed p95 abandons the
        old regime and lands in the new value's bucket."""
        from bisect import bisect_left

        tracker = DecayingQuantileTracker()
        for _ in range(200):
            tracker.observe("w0", old)
        before = tracker.quantile("w0", 0.95)
        for _ in range(400):
            tracker.observe("w0", new)
        after = tracker.quantile("w0", 0.95)
        assert after >= before
        index = bisect_left(tracker.bounds, new)
        lower = tracker.bounds[index - 1] if index > 0 else 0.0
        assert after >= lower

    def test_lru_keeps_hot_routes(self):
        tracker = DecayingQuantileTracker(max_routes=3)
        tracker.observe("hot", 0.01)     # also creates __all__
        tracker.observe("cold", 0.01)    # fills the third slot
        tracker.observe("hot", 0.01)     # refresh hot
        tracker.observe("newcomer", 0.01)  # evicts the LRU (cold)
        assert tracker.samples("cold") == 0.0
        assert tracker.samples("hot") > 0.0


# -- adaptive hedge ----------------------------------------------------


class TestAdaptiveHedge:
    def test_cold_start_uses_initial(self):
        hedge = AdaptiveHedge(initial=1.25)
        assert hedge.delay("w0") == pytest.approx(1.25)

    def test_adapts_to_observed_latency(self):
        hedge = AdaptiveHedge(min_delay=0.0, min_samples=16.0)
        for _ in range(64):
            hedge.observe("w0", 0.2)
        # p95 of samples in the (0.1, 0.25] bucket: delay follows it.
        assert 0.1 <= hedge.delay("w0") <= 0.25

    def test_falls_back_to_aggregate_route(self):
        hedge = AdaptiveHedge(min_delay=0.0, min_samples=16.0)
        for _ in range(64):
            hedge.observe("w0", 0.2)
        # w1 has no samples of its own: the fleet-wide estimate answers.
        assert 0.1 <= hedge.delay("w1") <= 0.25

    def test_clamped_to_floor_and_ceiling(self):
        hedge = AdaptiveHedge(min_delay=0.05, max_delay=0.5, min_samples=1.0)
        for _ in range(32):
            hedge.observe("fast", 0.0001)
        for _ in range(32):
            hedge.observe("slow", 50.0)
        assert hedge.delay("fast") == pytest.approx(0.05)
        assert hedge.delay("slow") == pytest.approx(0.5)


# -- retry budget ------------------------------------------------------


class TestRetryBudget:
    def test_initial_burst_then_exhaustion(self):
        budget = RetryBudget(ratio=0.0, cap=3.0)
        assert [budget.try_spend() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert budget.snapshot()["denied"] == 1

    def test_deposits_refill_proportionally(self):
        budget = RetryBudget(ratio=0.5, cap=2.0)
        while budget.try_spend():
            pass
        budget.deposit()          # +0.5: still under one token
        assert not budget.try_spend()
        budget.deposit()          # +0.5: now a full token
        assert budget.try_spend()

    def test_cap_bounds_banked_burst(self):
        budget = RetryBudget(ratio=1.0, cap=2.0)
        for _ in range(100):
            budget.deposit()
        assert budget.balance == pytest.approx(2.0)

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(st.booleans(), max_size=200),
        ratio=st.floats(0.0, 1.0),
        cap=st.floats(1.0, 50.0),
    )
    def test_spends_never_exceed_cap_plus_deposits(self, ops, ratio, cap):
        """The amplification invariant: tokens spent <= initial burst +
        ratio x primary traffic, no matter the interleaving."""
        budget = RetryBudget(ratio=ratio, cap=cap)
        deposits = spends = 0
        for is_deposit in ops:
            if is_deposit:
                budget.deposit()
                deposits += 1
            elif budget.try_spend():
                spends += 1
        assert spends <= cap + ratio * deposits + 1e-9


# -- autoscale policy --------------------------------------------------


class TestAutoscalePolicy:
    def test_scales_up_on_queue_pressure(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4)
        assert policy.decide(now=0.0, workers=2, waiting=4, shed_delta=0) == 1

    def test_scales_up_on_shed_movement(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4)
        assert policy.decide(now=0.0, workers=2, waiting=0, shed_delta=3) == 1

    def test_never_exceeds_max(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4)
        assert policy.decide(now=0.0, workers=4, waiting=99, shed_delta=9) == 0

    def test_reaps_only_after_sustained_idle(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4, idle_after=10.0)
        assert policy.decide(now=0.0, workers=3, waiting=0, shed_delta=0) == 0
        assert policy.decide(now=5.0, workers=3, waiting=0, shed_delta=0) == 0
        assert policy.decide(now=11.0, workers=3, waiting=0, shed_delta=0) == -1
        # The next reap needs its own full idle window.
        assert policy.decide(now=12.0, workers=3, waiting=0, shed_delta=0) == 0

    def test_pressure_resets_idle_clock(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4, idle_after=10.0)
        policy.decide(now=0.0, workers=3, waiting=0, shed_delta=0)
        policy.decide(now=9.0, workers=3, waiting=9, shed_delta=0)  # burst
        assert policy.decide(now=11.0, workers=3, waiting=0, shed_delta=0) == 0

    def test_never_reaps_below_min(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=4, idle_after=0.0)
        policy.decide(now=0.0, workers=2, waiting=0, shed_delta=0)
        assert policy.decide(now=99.0, workers=2, waiting=0, shed_delta=0) == 0


# -- restart backoff ---------------------------------------------------


class TestRestartDelay:
    def test_deterministic_per_key_and_attempt(self):
        assert restart_delay(3, key="w0") == restart_delay(3, key="w0")

    def test_jitter_separates_workers(self):
        delays = {restart_delay(2, key=f"w{i}") for i in range(8)}
        assert len(delays) > 1

    @settings(max_examples=50, deadline=None)
    @given(attempt=st.integers(0, 20))
    def test_within_jittered_exponential_envelope(self, attempt):
        base, cap = 0.5, 15.0
        delay = restart_delay(attempt, base=base, cap=cap, key="w0")
        ceiling = min(base * 2.0 ** attempt, cap)
        assert 0.5 * ceiling <= delay <= ceiling


# -- integration: a real cluster under chaos ---------------------------

PLAS = [
    f".i 3\n.o 1\n{format(i, '03b')} 1\n111 1\n.e\n" for i in range(6)
]


def _body(pla: str) -> bytes:
    return json.dumps(
        {"pla": pla, "max_rung": "heuristic"}, sort_keys=True
    ).encode()


def _post(host, port, body, headers=None, timeout=60):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/minimize", body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


@pytest.fixture(scope="module")
def cluster():
    """A hedging 2-worker cluster with supervision slowed way down, so
    adaptive hedging — not eviction/restart — is what absorbs faults."""
    coordinator = ClusterCoordinator(ClusterConfig(
        port=0,
        workers=2,
        worker_threads=2,
        worker_queue_capacity=8,
        health_interval=30.0,      # supervision effectively off
        health_timeout=1.0,
        hedge=True,
        hedge_min=0.05,
        hedge_initial=0.25,
        retry_budget_cap=200.0,    # the test measures hedging, not budgets
        retry_budget_ratio=1.0,
        proxy_timeout=30.0,
        worker_start_timeout=90.0,
    ))
    host, port = coordinator.start()
    yield coordinator, host, port
    coordinator.drain(grace=2.0)


class TestDeadlinePropagation:
    def test_expired_deadline_is_shed_not_computed(self, cluster):
        coordinator, host, port = cluster
        shed_before = coordinator._counters["deadline_shed"]
        proxied_before = coordinator._counters["upstream_attempts"]
        status, doc = _post(
            host, port, _body(PLAS[0]), headers={DEADLINE_HEADER: "0"}
        )
        assert status == 503
        assert doc["error"]["code"] == "deadline-exceeded"
        assert coordinator._counters["deadline_shed"] == shed_before + 1
        # Shed at the front door: no worker saw the request.
        assert coordinator._counters["upstream_attempts"] == proxied_before

    def test_live_deadline_reaches_the_worker_and_succeeds(self, cluster):
        coordinator, host, port = cluster
        status, doc = _post(
            host, port, _body(PLAS[1]), headers={DEADLINE_HEADER: "30"}
        )
        assert status == 200
        assert doc["ok"]

    def test_malformed_deadline_is_ignored(self, cluster):
        coordinator, host, port = cluster
        status, doc = _post(
            host, port, _body(PLAS[2]), headers={DEADLINE_HEADER: "soon"}
        )
        assert status == 200


class TestSigstopChaos:
    def test_hedging_keeps_flow_while_a_worker_is_wedged(self, cluster):
        """SIGSTOP one worker mid-load: every accepted request still
        answers 200 via the hedge path, well before the worker wakes."""
        coordinator, host, port = cluster
        # Warm the latency tracker past min_samples so the adaptive
        # delay reflects real (fast) traffic, not the cold-start value.
        for _ in range(6):
            for pla in PLAS:
                status, _ = _post(host, port, _body(pla))
                assert status == 200
        assert coordinator.hedge.delay("w0") == pytest.approx(0.05, abs=0.2)

        victim = coordinator._workers["w0"].proc
        outage = 3.0
        assert victim.suspend()
        resumer = threading.Timer(outage, victim.resume)
        resumer.daemon = True
        resumer.start()
        try:
            hedges_before = coordinator._counters["hedges"]
            requests_before = coordinator._counters["requests"]
            attempts_before = coordinator._counters["upstream_attempts"]
            started = time.monotonic()
            statuses, latencies = [], []
            while time.monotonic() - started < outage - 0.5:
                for pla in PLAS:
                    t0 = time.monotonic()
                    status, doc = _post(host, port, _body(pla))
                    latencies.append(time.monotonic() - t0)
                    statuses.append(status)
            # Zero lost accepted requests: everything answered 200 —
            # no torn sockets, no timeouts, no 5xx.
            assert statuses and all(s == 200 for s in statuses), statuses
            # Answers came from hedges, not from waiting out the outage.
            latencies.sort()
            assert latencies[-1] < outage, latencies[-5:]
            assert coordinator._counters["hedges"] > hedges_before
            # Amplification stays bounded: at most one duplicate per
            # request even under a full worker outage.
            requests = coordinator._counters["requests"] - requests_before
            attempts = coordinator._counters["upstream_attempts"] - attempts_before
            assert attempts <= 2 * requests + 2, (attempts, requests)
        finally:
            resumer.cancel()
            victim.resume()
        # The woken worker serves again without a restart.
        time.sleep(0.2)
        for pla in PLAS:
            assert _post(host, port, _body(pla))[0] == 200
        assert coordinator._workers["w0"].proc.restarts == 0


class TestRetryBudgetWiring:
    def test_exhausted_budget_blocks_failover(self):
        """With a zero retry budget, a dead primary cannot fail over —
        the coordinator answers a structured 503 instead of retrying."""
        coordinator = ClusterCoordinator(ClusterConfig(
            workers=2, retry_budget_cap=0.5, retry_budget_ratio=0.0,
            hedge=False,
        ))
        # No processes: wire the ring by hand and stub the proxy to a
        # dead primary / healthy successor.
        coordinator.ring.add("w0")
        coordinator.ring.add("w1")
        from repro.cluster.coordinator import _WorkerState
        from repro.cluster.worker import WorkerProcess

        for name in ("w0", "w1"):
            state = _WorkerState(
                WorkerProcess(name, 1),
                RetryBudget(ratio=0.0, cap=0.5),
            )
            coordinator._workers[name] = state
        coordinator._proxy = lambda name, body, deadline_at=None: None
        status, headers, body = coordinator.handle_minimize(_body(PLAS[0]))
        assert status == 503
        assert coordinator._counters["retry_budget_exhausted"] == 1
        assert coordinator._counters["failovers"] == 0
