"""Tests for ESPRESSO PLA parsing and writing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.boolfunc.pla import PlaError, parse_pla, write_pla

SAMPLE_FD = """
# a 2-input, 2-output fd PLA
.i 2
.o 2
.p 3
10 11
01 1-
11 01
.e
"""

SAMPLE_FR = """
.i 2
.o 1
.type fr
00 1
01 0
11 1
.e
"""


class TestParse:
    def test_fd_semantics(self):
        m = parse_pla(SAMPLE_FD)
        assert m.n == 2 and m.num_outputs == 2
        # Input "10" is x0=1, x1=0 → point 0b01.
        assert m[0].evaluate(0b01) == 1
        assert m[1].evaluate(0b01) == 1
        # "01 1-": point 0b10 on for out0, dc for out1.
        assert m[0].evaluate(0b10) == 1
        assert m[1].evaluate(0b10) is None
        # "11 01": point 0b11 on for out1 only.
        assert m[1].evaluate(0b11) == 1
        assert m[0].evaluate(0b11) == 0

    def test_fr_semantics_unmentioned_is_dc(self):
        m = parse_pla(SAMPLE_FR)
        f = m[0]
        assert f.evaluate(0b00) == 1
        assert f.evaluate(0b10) == 0  # input "01" → point 0b10
        assert f.evaluate(0b11) == 1
        assert f.evaluate(0b01) is None  # never mentioned

    def test_dash_expansion(self):
        m = parse_pla(".i 3\n.o 1\n--- 1\n.e\n")
        assert m[0].on_set == frozenset(range(8))

    def test_output_names(self):
        m = parse_pla(".i 1\n.o 2\n.ob f g\n1 11\n.e\n")
        assert m.output_names == ("f", "g")

    def test_missing_headers(self):
        with pytest.raises(PlaError):
            parse_pla("10 1\n")

    def test_bad_directive(self):
        with pytest.raises(PlaError):
            parse_pla(".i 1\n.o 1\n.frobnicate\n1 1\n")

    def test_bad_width(self):
        with pytest.raises(PlaError):
            parse_pla(".i 2\n.o 1\n101 1\n")

    def test_bad_input_char(self):
        with pytest.raises(PlaError):
            parse_pla(".i 2\n.o 1\n1x 1\n")

    def test_bad_output_char(self):
        with pytest.raises(PlaError):
            parse_pla(".i 1\n.o 1\n1 z\n")

    def test_bad_type(self):
        with pytest.raises(PlaError):
            parse_pla(".i 1\n.o 1\n.type xyz\n1 1\n")

    def test_comments_and_blank_lines(self):
        m = parse_pla("# hello\n.i 1\n\n.o 1\n1 1  # trailing\n.e\n")
        assert m[0].on_set == frozenset({1})


class TestErrorContext:
    def test_width_error_carries_file_and_line(self):
        with pytest.raises(PlaError) as exc_info:
            parse_pla(".i 2\n.o 1\n101 1\n.e\n", file="adder.pla")
        err = exc_info.value
        assert err.file == "adder.pla"
        assert err.line == 3
        assert str(err).startswith("adder.pla:3: ")
        assert "(expected 2)" in str(err)

    def test_directive_error_points_at_its_line(self):
        with pytest.raises(PlaError) as exc_info:
            parse_pla(".i 1\n.o x\n1 1\n", file="f.pla")
        assert exc_info.value.line == 2

    def test_name_doubles_as_file_context(self):
        with pytest.raises(PlaError) as exc_info:
            parse_pla("10 1\n", name="noheader")
        assert exc_info.value.file == "noheader"

    def test_plain_value_error_still_catches(self):
        # Pre-taxonomy callers used `except ValueError`.
        with pytest.raises(ValueError):
            parse_pla(".i 1\n.o 1\n1 z\n")


class TestRoundTrip:
    @given(
        st.integers(2, 4),
        st.data(),
    )
    def test_write_then_parse_preserves_semantics(self, n, data):
        space = 1 << n
        outputs = []
        for _ in range(data.draw(st.integers(1, 3))):
            on = data.draw(st.sets(st.integers(0, space - 1), max_size=space))
            dc = data.draw(st.sets(st.integers(0, space - 1), max_size=4)) - on
            outputs.append(BoolFunc(n, frozenset(on), frozenset(dc)))
        original = MultiBoolFunc(n, tuple(outputs))
        parsed = parse_pla(write_pla(original))
        assert parsed.n == original.n
        assert parsed.num_outputs == original.num_outputs
        for f, g in zip(original.outputs, parsed.outputs):
            assert f.on_set == g.on_set
            assert f.dc_set == g.dc_set
