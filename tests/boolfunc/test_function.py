"""Tests for BoolFunc / MultiBoolFunc."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc, MultiBoolFunc

funcs = st.builds(
    lambda n, on, dc: BoolFunc(n, frozenset(on) - frozenset(dc), frozenset(dc) - frozenset(on)),
    st.just(4),
    st.sets(st.integers(0, 15), max_size=16),
    st.sets(st.integers(0, 15), max_size=6),
)


class TestConstruction:
    def test_basic(self):
        f = BoolFunc(2, frozenset({1}), frozenset({2}))
        assert f(1) == 1 and f(2) is None and f(0) == 0

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            BoolFunc(2, frozenset({1}), frozenset({1}))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BoolFunc(2, frozenset({4}))
        with pytest.raises(ValueError):
            BoolFunc(0, frozenset())

    def test_from_lambda(self):
        f = BoolFunc.from_lambda(3, lambda p: p % 2 == 1)
        assert f.on_set == frozenset({1, 3, 5, 7})
        assert f.is_completely_specified

    def test_from_truth_table(self):
        f = BoolFunc.from_truth_table("01-0")
        assert f.n == 2
        assert f.on_set == frozenset({1})
        assert f.dc_set == frozenset({2})

    def test_truth_table_bad_length(self):
        with pytest.raises(ValueError):
            BoolFunc.from_truth_table("010")

    def test_truth_table_bad_chars(self):
        with pytest.raises(ValueError):
            BoolFunc.from_truth_table("01x0")


class TestSets:
    @given(funcs)
    def test_partition(self, f):
        space = set(range(1 << f.n))
        assert set(f.on_set) | set(f.dc_set) | set(f.off_set) == space
        assert not set(f.on_set) & set(f.off_set)
        assert f.care_set == f.on_set | f.dc_set

    def test_len_and_flags(self):
        f = BoolFunc(2, frozenset({1, 2}))
        assert len(f) == 2
        assert not f.is_constant_zero
        assert BoolFunc(2, frozenset()).is_constant_zero


class TestAlgebra:
    @given(funcs, funcs)
    def test_and_or_xor_on_care_points(self, f, g):
        for op, py in ((f & g, lambda a, b: a and b),
                       (f | g, lambda a, b: a or b),
                       (f ^ g, lambda a, b: a != b)):
            for p in range(16):
                a, b = f(p), g(p)
                if a is None or b is None:
                    continue
                expected = int(py(a, b))
                got = op(p)
                if got is not None:
                    assert got == expected

    @given(funcs)
    def test_invert(self, f):
        g = ~f
        assert g.on_set == f.off_set
        assert g.dc_set == f.dc_set

    def test_or_resolves_dc_when_other_is_on(self):
        f = BoolFunc(1, frozenset({0}))
        g = BoolFunc(1, frozenset(), frozenset({0}))
        assert (f | g)(0) == 1

    def test_incompatible_spaces(self):
        with pytest.raises(ValueError):
            BoolFunc(2, frozenset()) & BoolFunc(3, frozenset())


class TestCofactor:
    def test_cofactor_values(self):
        f = BoolFunc.from_lambda(3, lambda p: (p & 1) and (p & 2))
        pos = f.cofactor(0, 1)
        # x0 fixed to 1: result is x1, independent of x0.
        for p in range(8):
            assert pos(p) == (1 if p & 2 else 0)

    def test_cofactor_bad_variable(self):
        with pytest.raises(ValueError):
            BoolFunc(2, frozenset()).cofactor(5, 0)

    @given(funcs, st.integers(0, 3), st.integers(0, 1))
    def test_cofactor_is_independent_of_variable(self, f, var, val):
        g = f.cofactor(var, val)
        bit = 1 << var
        for p in range(16):
            assert g(p) == g(p ^ bit)


class TestMultiBoolFunc:
    def test_from_lambda_word(self):
        m = MultiBoolFunc.from_lambda(2, 2, lambda p: p)  # identity bits
        assert m.num_outputs == 2
        assert m[0].on_set == frozenset({1, 3})
        assert m[1].on_set == frozenset({2, 3})

    def test_iteration(self):
        m = MultiBoolFunc.from_lambda(2, 3, lambda p: 0)
        assert len(list(m)) == 3

    def test_rejects_mismatched_outputs(self):
        with pytest.raises(ValueError):
            MultiBoolFunc(3, (BoolFunc(2, frozenset()),))

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            MultiBoolFunc(
                2, (BoolFunc(2, frozenset()),), output_names=("a", "b")
            )
