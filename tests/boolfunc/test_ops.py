"""Tests for function-level operators."""

import pytest

from repro.boolfunc import ops
from repro.boolfunc.function import BoolFunc


class TestPrimitives:
    def test_variable(self):
        x1 = ops.variable(3, 1)
        assert x1.on_set == frozenset({2, 3, 6, 7})

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            ops.variable(3, 3)

    def test_constants(self):
        assert ops.constant(2, 0).on_set == frozenset()
        assert ops.constant(2, 1).on_set == frozenset(range(4))


class TestCombinators:
    def test_conjunction_disjunction(self):
        x0, x1 = ops.variable(2, 0), ops.variable(2, 1)
        assert ops.conjunction([x0, x1]).on_set == frozenset({3})
        assert ops.disjunction([x0, x1]).on_set == frozenset({1, 2, 3})

    def test_exor_chain(self):
        xs = [ops.variable(3, i) for i in range(3)]
        parity = ops.exor(xs)
        assert parity.on_set == frozenset(
            p for p in range(8) if bin(p).count("1") % 2 == 1
        )

    def test_majority(self):
        maj = ops.majority(3, [0, 1, 2])
        assert maj.on_set == frozenset({3, 5, 6, 7})

    def test_majority_even_rejected(self):
        with pytest.raises(ValueError):
            ops.majority(4, [0, 1])

    def test_restrict(self):
        f = ops.conjunction([ops.variable(3, 0), ops.variable(3, 1)])
        g = ops.restrict(f, {0: 1})
        assert g(0b010) == 1  # x0 fixed to 1: f = x1
        assert g(0b000) == 0


class TestTruthTable:
    def test_roundtrip(self):
        from repro.boolfunc.truthtable import density, maxterms, minterms, truth_table

        f = BoolFunc(2, frozenset({1}), frozenset({2}))
        assert truth_table(f) == "01-0"
        assert BoolFunc.from_truth_table(truth_table(f)) == f
        assert minterms(f) == [1]
        assert maxterms(f) == [0, 3]
        assert density(f) == 0.25
