"""The lazy (CELF-style) greedy must match the eager rescan pass
selection for selection.

``_greedy_pass`` was rewritten from a full column rescan per round to a
max-heap of stale upper-bound gains.  Because stale keys upper-bound
fresh keys (gains only shrink as the cover grows), re-evaluating only
the popped column is sound — but the refactor is only safe if the
sequence of selections (including tie-breaks, which go to the lowest
column index) is *identical*.  This module pins an eager reference copy
of the old pass and checks bit-for-bit agreement on randomized
instances and on real EPPP covering problems.
"""

import random

import pytest

from repro.budget import Budget, Cancelled
from repro.minimize import covering as cov


def eager_greedy_pass(problem, strategy, forbidden, seed=None):
    """Reference copy of the pre-kernel eager ``_greedy_pass``."""
    masks = problem.column_masks
    costs = problem.costs
    universe = problem.universe
    selected = list(seed) if seed else []
    covered = 0
    for i in selected:
        covered |= masks[i]
    active = [i for i in range(problem.num_columns) if i != forbidden]
    while covered != universe:
        best_i = -1
        best_key = (0.0, 0)
        still_active = []
        for i in active:
            gain = (masks[i] & ~covered).bit_count()
            if gain == 0:
                continue
            still_active.append(i)
            if strategy == "ratio":
                key = (gain / costs[i], gain)
            else:
                key = (float(gain), -costs[i])
            if key > best_key:
                best_key = key
                best_i = i
        if best_i < 0:
            raise ValueError("covering problem is infeasible")
        active = still_active
        covered |= masks[best_i]
        selected.append(best_i)
    cov._drop_redundant(selected, masks, costs, universe)
    return selected


def random_problem(rng):
    num_rows = rng.randint(1, 20)
    num_cols = rng.randint(1, 50)
    universe = (1 << num_rows) - 1
    masks = [rng.randint(1, universe) for _ in range(num_cols)]
    masks[rng.randrange(num_cols)] = universe  # keep it feasible
    costs = [rng.randint(1, 9) for _ in range(num_cols)]
    # Duplicate some columns so key ties actually occur.
    for _ in range(rng.randint(0, 5)):
        src = rng.randrange(num_cols)
        masks.append(masks[src])
        costs.append(costs[src])
    return cov.CoveringProblem(num_rows, masks, costs,
                               list(range(len(masks))))


class TestLazyGreedyEquivalence:
    @pytest.mark.parametrize("strategy", ["ratio", "gain"])
    def test_random_instances_same_selections(self, strategy):
        rng = random.Random(987654)
        for _ in range(400):
            problem = random_problem(rng)
            assert (cov._greedy_pass(problem, strategy, forbidden=-1)
                    == eager_greedy_pass(problem, strategy, forbidden=-1))

    @pytest.mark.parametrize("strategy", ["ratio", "gain"])
    def test_forbidden_and_seed_paths(self, strategy):
        rng = random.Random(24680)
        for _ in range(150):
            problem = random_problem(rng)
            base = eager_greedy_pass(problem, strategy, forbidden=-1)
            victim = base[0]
            seed = base[1:]
            try:
                expected = eager_greedy_pass(
                    problem, strategy, forbidden=victim, seed=seed
                )
            except ValueError:
                with pytest.raises(ValueError):
                    cov._greedy_pass(problem, strategy, forbidden=victim,
                                     seed=seed)
                continue
            got = cov._greedy_pass(problem, strategy, forbidden=victim,
                                   seed=seed)
            assert got == expected

    def test_solve_greedy_cost_unchanged_on_real_instances(self):
        from repro.bench.suite import get_benchmark
        from repro.kernels import build_problem
        from repro.minimize.cost import literal_cost
        from repro.minimize.eppp import generate_eppp

        for name, output in [("adr3", 2), ("dist3", 1)]:
            func = get_benchmark(name)[output]
            generation = generate_eppp(func, max_pseudoproducts=50_000,
                                       on_limit="stop")
            rows = sorted(func.on_set)
            problem = build_problem(rows, generation.eppps,
                                    cost_of=literal_cost)
            solution = cov.solve_greedy(problem)
            # Reconstruct the eager two-strategy result.
            best_cost = None
            for strategy in ("ratio", "gain"):
                selected = eager_greedy_pass(problem, strategy, forbidden=-1)
                selected = cov._improve(problem, selected, strategy)
                cost = sum(problem.costs[i] for i in selected)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
            assert solution.cost == best_cost

    def test_budget_ticks_inside_selection_loop(self):
        rng = random.Random(1357)
        problem = random_problem(rng)
        budget = Budget(tick_every=1)
        cov.solve_greedy(problem, budget=budget)
        assert budget.ticks > 0

    def test_cancellation_fires_inside_selection(self):
        rng = random.Random(2468)
        problem = random_problem(rng)
        budget = Budget(tick_every=1)
        budget.cancel()
        with pytest.raises(Cancelled):
            cov._greedy_pass(problem, "ratio", forbidden=-1, budget=budget)

    def test_infeasible_problem_raises(self):
        problem = cov.CoveringProblem(3, [0b011], [1], ["a"])
        with pytest.raises(ValueError):
            cov._greedy_pass(problem, "ratio", forbidden=-1)
