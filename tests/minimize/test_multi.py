"""Tests for joint multi-output minimization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.minimize.exact import minimize_spp
from repro.minimize.multi import minimize_spp_multi
from repro.verify import assert_equivalent

multi_funcs = st.builds(
    lambda ons: MultiBoolFunc(
        4, tuple(BoolFunc(4, frozenset(on)) for on in ons)
    ),
    st.lists(
        st.sets(st.integers(0, 15), min_size=1, max_size=10),
        min_size=1,
        max_size=3,
    ),
)


class TestCorrectness:
    @given(multi_funcs)
    @settings(max_examples=25, deadline=None)
    def test_every_output_verified(self, func):
        result = minimize_spp_multi(func)
        for form, fo in zip(result.forms, func.outputs):
            assert_equivalent(form, fo)

    def test_empty_output_handled(self):
        func = MultiBoolFunc(
            3, (BoolFunc(3, frozenset()), BoolFunc(3, frozenset({1})))
        )
        result = minimize_spp_multi(func)
        assert result.forms[0].num_pseudoproducts == 0
        assert_equivalent(result.forms[1], func[1])


class TestSharing:
    def test_identical_outputs_share_everything(self):
        """Two copies of the same function must cost one function, not
        two (the whole point of joint minimization)."""
        f = BoolFunc(4, frozenset({0b0011, 0b1100, 0b0101, 0b1010}))
        func = MultiBoolFunc(4, (f, f))
        joint = minimize_spp_multi(func)
        separate = minimize_spp(f)
        assert joint.shared_literals <= separate.num_literals * 2
        # All selected pseudoproducts drive both outputs.
        assert joint.forms[0].pseudoproducts == joint.forms[1].pseudoproducts
        assert joint.shared_literals <= joint.total_output_literals

    def test_joint_never_beaten_by_separate_on_shared_cost(self):
        """Shared cost of the joint solution ≤ sum of separate costs
        (separate solutions are feasible for the joint problem)."""
        outputs = (
            BoolFunc(4, frozenset({1, 2, 4, 8})),
            BoolFunc(4, frozenset({1, 2, 4, 8, 15})),
        )
        func = MultiBoolFunc(4, outputs)
        joint = minimize_spp_multi(func, covering="exact")
        separate_cost = sum(
            minimize_spp(fo, covering="exact").num_literals for fo in outputs
        )
        assert joint.shared_literals <= separate_cost

    @given(multi_funcs)
    @settings(max_examples=15, deadline=None)
    def test_forms_draw_from_shared_pool(self, func):
        result = minimize_spp_multi(func)
        pool = set(result.shared_pseudoproducts)
        for form in result.forms:
            assert set(form.pseudoproducts) <= pool
