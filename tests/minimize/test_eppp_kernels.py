"""End-to-end parity: packed generation vs. the pinned scalar fallback.

``generate_eppp`` selects the numpy-packed step loop at call time when
``gf2mat.AVAILABLE`` is set; these tests run every function through
both paths and assert the results are identical to the bit — same
candidate pseudocubes in the same order, same per-step statistics, and
the same final ``SppForm`` out of the full minimizer.  Functions come
from the fuzz generator families (dense / sparse / arith-like /
dc-heavy), the same distributions the differential fuzz harness uses.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.fuzz.generators import FAMILIES
from repro.kernels import gf2mat
from repro.minimize import eppp as eppp_mod
from repro.minimize.eppp import GenerationBudgetExceeded, generate_eppp
from repro.minimize.exact import minimize_spp

pytestmark = pytest.mark.skipif(
    not gf2mat.AVAILABLE,
    reason="numpy GF(2) kernels disabled (REPRO_NO_NUMPY or no bitwise_count)",
)


def _snapshot(result):
    return (
        result.n,
        [(pc.anchor, pc.basis) for pc in result.eppps],
        [
            (
                s.degree,
                s.pseudoproducts,
                s.groups,
                s.comparisons,
                s.naive_comparisons,
                s.generated,
                s.duplicates,
                s.retained,
            )
            for s in result.steps
        ],
        result.truncated,
    )


def _run_both(func, **kwargs):
    """(packed, scalar) snapshots of ``generate_eppp`` on ``func``.

    The packed leg forces the vector lane even for tiny pair streams
    (``_MIN_PACKED_PAIRS = 0``) so parity covers the kernels, not the
    size-based hand-off.
    """
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(eppp_mod, "_MIN_PACKED_PAIRS", 0)
        try:
            packed = _snapshot(generate_eppp(func, **kwargs))
        except GenerationBudgetExceeded:
            packed = "raised"
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(gf2mat, "AVAILABLE", False)
        try:
            scalar = _snapshot(generate_eppp(func, **kwargs))
        except GenerationBudgetExceeded:
            scalar = "raised"
    return packed, scalar


family_funcs = st.builds(
    lambda name, n, seed: FAMILIES[name](random.Random(seed), n),
    st.sampled_from(sorted(FAMILIES)),
    st.integers(3, 5),
    st.integers(0, 2**31),
)


class TestGenerationParity:
    @settings(max_examples=40, deadline=None)
    @given(family_funcs)
    def test_candidates_and_stats_identical(self, func):
        packed, scalar = _run_both(func)
        assert packed == scalar

    @settings(max_examples=25, deadline=None)
    @given(family_funcs, st.sampled_from([3, 20, 100]), st.sampled_from(["stop", "raise"]))
    def test_budget_semantics_identical(self, func, cap, on_limit):
        """Truncation and overflow behave identically: the packed loop
        must stop (or raise) at exactly the same generated prefix."""
        packed, scalar = _run_both(
            func, max_pseudoproducts=cap, on_limit=on_limit
        )
        assert packed == scalar

    @settings(max_examples=20, deadline=None)
    @given(family_funcs)
    def test_discard_equal_off_identical(self, func):
        packed, scalar = _run_both(func, discard_equal=False)
        assert packed == scalar

    def test_handoff_threshold_consistent(self):
        """At the production threshold small streams take the scalar
        lane and large ones the packed lane — outputs agree regardless."""
        func = FAMILIES["dense"](random.Random(7), 5)
        default = _snapshot(generate_eppp(func))
        packed, scalar = _run_both(func)
        assert default == packed == scalar


class TestMinimizerParity:
    @settings(max_examples=15, deadline=None)
    @given(family_funcs)
    def test_spp_form_identical(self, func):
        """The full minimizer yields the same ``SppForm`` (same
        pseudoproducts, same order, same cost) with kernels on vs. off."""
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(eppp_mod, "_MIN_PACKED_PAIRS", 0)
            on = minimize_spp(func)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(gf2mat, "AVAILABLE", False)
            off = minimize_spp(func)
        assert on.form == off.form
        assert on.form.num_literals == off.form.num_literals
        assert on.num_candidates == off.num_candidates
        assert on.covering_optimal == off.covering_optimal
