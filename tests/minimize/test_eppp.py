"""Tests for EPPP generation (Algorithm 2, steps 1–2)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.minimize.eppp import (
    GenerationBudgetExceeded,
    generate_eppp,
    make_store,
)


def _all_pseudoproducts(func: BoolFunc) -> set[Pseudocube]:
    """Every pseudocube contained in the care set (brute force)."""
    care = sorted(func.care_set)
    found = set()
    for size_log in range(len(care).bit_length()):
        size = 1 << size_log
        if size > len(care):
            break
        for subset in itertools.combinations(care, size):
            try:
                found.add(Pseudocube.from_points(func.n, subset))
            except ValueError:
                continue
    return found


small_funcs = st.builds(
    lambda n, on: BoolFunc(n, frozenset(on)),
    st.just(3),
    st.sets(st.integers(0, 7), min_size=1, max_size=8),
)


class TestStores:
    def test_make_store(self):
        assert make_store("index") is not None
        assert make_store("trie") is not None
        with pytest.raises(ValueError):
            make_store("btree")


class TestGeneration:
    def test_single_point(self):
        func = BoolFunc(3, frozenset({5}))
        result = generate_eppp(func)
        assert result.eppps == [Pseudocube.from_point(3, 5)]

    def test_adjacent_pair_discards_points(self):
        """Two Hamming-adjacent points unify into a 2-literal cube; the
        3-literal minterms are discarded (Definition 3)."""
        func = BoolFunc(3, frozenset({0b001, 0b011}))
        result = generate_eppp(func)
        assert len(result.eppps) == 1
        assert result.eppps[0].degree == 1
        assert result.eppps[0].num_literals == 2

    def test_distance3_pair_keeps_all(self):
        """Points at Hamming distance 3 in B^3 unify into a 4-literal
        pseudoproduct, which does NOT cover the 3-literal minterms
        (the paper's point that unions can gain literals)."""
        func = BoolFunc(3, frozenset({0b001, 0b110}))
        result = generate_eppp(func)
        assert len(result.eppps) == 3
        literals = sorted(pc.num_literals for pc in result.eppps)
        assert literals == [3, 3, 4]

    def test_equal_literals_kept_when_discard_equal_false(self):
        """Points at distance 2: the union also has 3 literals, so the
        minterms survive exactly when discard_equal is False."""
        func = BoolFunc(3, frozenset({0b001, 0b010}))
        loose = generate_eppp(func, discard_equal=True)
        strict = generate_eppp(func, discard_equal=False)
        assert len(loose.eppps) == 1
        assert len(strict.eppps) == 3

    @given(small_funcs)
    @settings(max_examples=40, deadline=None)
    def test_every_eppp_is_a_pseudoproduct(self, func):
        result = generate_eppp(func)
        care = func.care_set
        for pc in result.eppps:
            assert set(pc.points()) <= care

    @given(small_funcs)
    @settings(max_examples=40, deadline=None)
    def test_eppps_unique_and_cover(self, func):
        result = generate_eppp(func)
        assert len(result.eppps) == len(set(result.eppps))
        covered = set()
        for pc in result.eppps:
            covered |= set(pc.points())
        assert covered == func.care_set

    @given(small_funcs)
    @settings(max_examples=30, deadline=None)
    def test_contains_all_prime_pseudoproducts(self, func):
        """The retained set must include every *prime* pseudoproduct
        (maximal under containment) — primes are never discarded since a
        strictly larger pseudoproduct does not exist, let alone one with
        fewer literals."""
        result = generate_eppp(func)
        everything = _all_pseudoproducts(func)
        primes = {
            pc
            for pc in everything
            if not any(
                other != pc and other.contains_pseudocube(pc) for other in everything
            )
        }
        assert primes <= set(result.eppps)

    @given(small_funcs)
    @settings(max_examples=30, deadline=None)
    def test_retention_rule(self, func):
        """A retained pseudoproduct is either prime or not covered by
        any pseudoproduct with fewer literals (Definition 3 relaxation:
        the discard rule only looks one degree up, so retained sets may
        be slightly larger than the minimal EPPP set, never smaller)."""
        result = generate_eppp(func)
        everything = _all_pseudoproducts(func)
        retained = set(result.eppps)
        for pc in everything:
            covering_cheaper = [
                other
                for other in everything
                if other != pc
                and other.contains_pseudocube(pc)
                and other.num_literals <= pc.num_literals
                and other.degree == pc.degree + 1
            ]
            if not covering_cheaper:
                assert pc in retained

    def test_backends_agree(self):
        func = BoolFunc(4, frozenset({0, 3, 5, 6, 9, 10, 12, 15, 1, 7}))
        a = generate_eppp(func, backend="index")
        b = generate_eppp(func, backend="trie")
        assert set(a.eppps) == set(b.eppps)
        assert [s.comparisons for s in a.steps] == [s.comparisons for s in b.steps]


class TestInstrumentation:
    def test_comparisons_do_not_exceed_naive(self):
        func = BoolFunc(4, frozenset(range(12)))
        result = generate_eppp(func)
        for step in result.steps:
            assert step.comparisons <= step.naive_comparisons

    def test_step_zero_is_single_group(self):
        """All degree-0 pseudoproducts share the structure x0·x1·…·xn-1,
        so step 0 has one group and exactly |F|(|F|-1)/2 comparisons."""
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))
        result = generate_eppp(func)
        step0 = result.steps[0]
        assert step0.groups == 1
        assert step0.comparisons == step0.naive_comparisons == 6

    def test_totals(self):
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))
        result = generate_eppp(func)
        assert result.total_comparisons == sum(s.comparisons for s in result.steps)
        assert result.max_degree == max(s.degree for s in result.steps)
        assert result.seconds >= 0


class TestBudget:
    def test_raise_mode(self):
        func = BoolFunc(4, frozenset(range(16)))
        with pytest.raises(GenerationBudgetExceeded):
            generate_eppp(func, max_pseudoproducts=10, on_limit="raise")

    def test_stop_mode_still_covers(self):
        func = BoolFunc(4, frozenset(range(16)))
        result = generate_eppp(func, max_pseudoproducts=10, on_limit="stop")
        assert result.truncated
        covered = set()
        for pc in result.eppps:
            covered |= set(pc.points())
        assert covered == func.care_set

    def test_bad_on_limit(self):
        func = BoolFunc(3, frozenset({1}))
        with pytest.raises(ValueError):
            generate_eppp(func, on_limit="explode")


class TestDontCares:
    def test_dc_points_enlarge_pseudoproducts(self):
        """on={001}, dc={110}: the pair forms a 2-literal pseudoproduct
        usable for covering the single on-point."""
        func = BoolFunc(3, frozenset({0b001}), frozenset({0b110}))
        result = generate_eppp(func)
        degrees = {pc.degree for pc in result.eppps}
        assert 1 in degrees
