"""Tests for Quine–McCluskey prime implicant generation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.minimize.qm import Cube, prime_implicants


def _brute_force_primes(func: BoolFunc) -> set[Cube]:
    """All maximal cubes contained in the care set, by enumeration."""
    care = func.care_set
    n = func.n
    implicants = set()
    for mask in range(1 << n):
        fixed = ((1 << n) - 1) & ~mask
        for values_bits in range(1 << n):
            values = values_bits & fixed
            if values != values_bits:
                continue
            cube = Cube(values, mask)
            if all(p in care for p in cube.points()):
                implicants.add(cube)
    primes = set()
    for cube in implicants:
        is_prime = True
        for other in implicants:
            if other == cube:
                continue
            if (other.mask | cube.mask) == other.mask and (
                cube.values & ~other.mask
            ) == other.values:
                is_prime = False
                break
        if is_prime:
            primes.add(cube)
    return primes


class TestCube:
    def test_covers(self):
        cube = Cube(0b01, 0b10)  # x0=1, x1 free (n=2)
        assert cube.covers(0b01)
        assert cube.covers(0b11)
        assert not cube.covers(0b00)

    def test_points(self):
        cube = Cube(0b001, 0b110)
        assert sorted(cube.points()) == [0b001, 0b011, 0b101, 0b111]

    def test_num_literals(self):
        assert Cube(0b001, 0b110).num_literals(3) == 1
        assert Cube(0b101, 0b010).num_literals(3) == 2

    def test_to_string(self):
        assert Cube(0b001, 0b110).to_string(3) == "1--"
        assert Cube(0b100, 0b010).to_string(3) == "0-1"

    def test_to_pseudocube(self):
        cube = Cube(0b001, 0b010)
        pc = cube.to_pseudocube(3)
        assert set(pc.points()) == set(cube.points())
        assert pc.is_cube()


class TestPrimeImplicants:
    def test_xor_function_primes_are_minterms(self):
        func = BoolFunc(2, frozenset({0b01, 0b10}))
        primes = prime_implicants(func)
        assert {p.mask for p in primes} == {0}
        assert len(primes) == 2

    def test_full_space_single_prime(self):
        func = BoolFunc(3, frozenset(range(8)))
        primes = prime_implicants(func)
        assert primes == [Cube(0, 0b111)]

    def test_empty_function(self):
        assert prime_implicants(BoolFunc(3, frozenset())) == []

    def test_classic_example(self):
        # f = x0'x1' + x0x1 over 2 vars: two prime minterm-pairs? No:
        # on-set {00, 11}: two isolated minterms.
        func = BoolFunc(2, frozenset({0b00, 0b11}))
        primes = prime_implicants(func)
        assert len(primes) == 2

    def test_dont_cares_participate(self):
        # on {00}, dc {01}: prime is x1' ... wait bit order: point 0b01
        # is x0=1.  on {00}, dc {01=x0}: the cube "x1'=0 free x0" covers
        # both; it is the single prime containing the on-point.
        func = BoolFunc(2, frozenset({0b00}), frozenset({0b01}))
        primes = prime_implicants(func)
        assert Cube(0b00, 0b01) in primes

    @given(st.integers(2, 4), st.data())
    def test_against_brute_force(self, n, data):
        space = 1 << n
        on = data.draw(st.sets(st.integers(0, space - 1), max_size=space))
        dc = data.draw(st.sets(st.integers(0, space - 1), max_size=4)) - on
        func = BoolFunc(n, frozenset(on), frozenset(dc))
        assert set(prime_implicants(func)) == _brute_force_primes(func)

    @given(st.integers(2, 5), st.data())
    def test_primes_cover_care_set_exactly(self, n, data):
        space = 1 << n
        on = data.draw(st.sets(st.integers(0, space - 1), min_size=1, max_size=space))
        func = BoolFunc(n, frozenset(on))
        primes = prime_implicants(func)
        covered = set()
        for cube in primes:
            pts = set(cube.points())
            assert pts <= func.care_set
            covered |= pts
        assert covered == func.care_set
