"""Tests for the naive (Luccio–Pagli) baseline generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.minimize.eppp import GenerationBudgetExceeded, generate_eppp
from repro.minimize.naive import generate_eppp_naive

small_funcs = st.builds(
    lambda on: BoolFunc(4, frozenset(on)),
    st.sets(st.integers(0, 15), min_size=1, max_size=12),
)


class TestEquivalenceWithAlgorithm2:
    @given(small_funcs)
    @settings(max_examples=25, deadline=None)
    def test_same_eppp_set(self, func):
        """The naive algorithm and Algorithm 2 compute the same EPPP
        set; only the number of comparisons differs (Section 3.3)."""
        grouped = generate_eppp(func)
        naive = generate_eppp_naive(func)
        assert set(grouped.eppps) == set(naive.eppps)

    @given(small_funcs)
    @settings(max_examples=25, deadline=None)
    def test_naive_does_full_pairwise_work(self, func):
        naive = generate_eppp_naive(func)
        for step in naive.steps:
            assert step.comparisons == step.naive_comparisons

    @given(small_funcs)
    @settings(max_examples=25, deadline=None)
    def test_grouped_never_does_more_comparisons(self, func):
        grouped = generate_eppp(func)
        naive = generate_eppp_naive(func)
        assert grouped.total_comparisons <= naive.total_comparisons


class TestLimits:
    def test_timeout_raises(self):
        func = BoolFunc(6, frozenset(range(48)))
        with pytest.raises(GenerationBudgetExceeded):
            generate_eppp_naive(func, max_seconds=0.0)

    def test_budget_raises(self):
        func = BoolFunc(4, frozenset(range(16)))
        with pytest.raises(GenerationBudgetExceeded):
            generate_eppp_naive(func, max_pseudoproducts=10)
