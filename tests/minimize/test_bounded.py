"""Tests for bounded-factor (2-SPP style) minimization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.core.cex import cex_of
from repro.core.pseudocube import Pseudocube
from repro.minimize.bounded import (
    generate_bounded,
    max_factor_width,
    minimize_spp_bounded,
)
from repro.minimize.exact import minimize_spp
from repro.minimize.sp import minimize_sp
from repro.verify import assert_equivalent

from tests.conftest import pseudocubes

small_funcs = st.builds(
    lambda on: BoolFunc(3, frozenset(on)),
    st.sets(st.integers(0, 7), min_size=1, max_size=8),
)


class TestMaxFactorWidth:
    def test_cube_has_width_one(self):
        pc = Pseudocube.from_cube(4, 0b0011, 0b0001)
        assert max_factor_width(pc) == 1

    def test_xor_pair_has_width_two(self):
        pc = Pseudocube.from_points(3, [0b001, 0b110])
        # CEX is a product of 2-wide factors (x0⊕x1)(x0⊕x2)-style.
        assert max_factor_width(pc) == 2

    def test_whole_space_zero(self):
        assert max_factor_width(Pseudocube.whole_space(3)) == 0

    @given(pseudocubes(max_n=6))
    def test_matches_cex(self, pc):
        cex = cex_of(pc)
        expected = max((f.num_literals for f in cex.factors), default=0)
        assert max_factor_width(pc) == expected


class TestBoundedGeneration:
    @given(small_funcs)
    @settings(max_examples=30, deadline=None)
    def test_all_candidates_within_bound(self, func):
        for bound in (1, 2):
            result = generate_bounded(func, bound)
            for pc in result.eppps:
                assert max_factor_width(pc) <= max(bound, 1)

    @given(small_funcs)
    @settings(max_examples=20, deadline=None)
    def test_unbounded_equals_algorithm2(self, func):
        from repro.minimize.eppp import generate_eppp

        bounded = generate_bounded(func, func.n)
        plain = generate_eppp(func)
        assert set(bounded.eppps) == set(plain.eppps)


class TestBoundedMinimization:
    @given(small_funcs)
    @settings(max_examples=30, deadline=None)
    def test_equivalence(self, func):
        for bound in (1, 2, 3):
            result = minimize_spp_bounded(func, bound, covering="exact")
            assert_equivalent(result.form, func)

    @given(small_funcs)
    @settings(max_examples=20, deadline=None)
    def test_cost_monotone_in_bound(self, func):
        """Wider factors allowed → never more literals (exact covering)."""
        costs = [
            minimize_spp_bounded(func, bound, covering="exact").num_literals
            for bound in (1, 2, 3)
        ]
        assert costs[0] >= costs[1] >= costs[2]

    @given(small_funcs)
    @settings(max_examples=20, deadline=None)
    def test_bound1_equals_sp(self, func):
        """Width-1 factors are literals: bounded(1) is SP minimization."""
        bounded = minimize_spp_bounded(func, 1, covering="exact")
        sp = minimize_sp(func, covering="exact")
        assert bounded.num_literals == sp.num_literals
        assert bounded.form.is_sp()

    @given(small_funcs)
    @settings(max_examples=15, deadline=None)
    def test_bound_n_equals_exact(self, func):
        bounded = minimize_spp_bounded(func, func.n, covering="exact")
        exact = minimize_spp(func, covering="exact")
        assert bounded.num_literals == exact.num_literals

    def test_empty_function(self):
        result = minimize_spp_bounded(BoolFunc(3, frozenset()), 2)
        assert result.form.num_pseudoproducts == 0
