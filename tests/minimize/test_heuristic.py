"""Tests for the SPP_k heuristic (Algorithm 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.verify import assert_equivalent

small_funcs = st.builds(
    lambda on: BoolFunc(4, frozenset(on)),
    st.sets(st.integers(0, 15), min_size=1, max_size=16),
)


class TestCorrectness:
    @given(small_funcs, st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_result_implements_function(self, func, k):
        result = minimize_spp_k(func, k)
        assert_equivalent(result.form, func)

    def test_k_out_of_range(self):
        func = BoolFunc(3, frozenset({1}))
        with pytest.raises(ValueError):
            minimize_spp_k(func, 3)
        with pytest.raises(ValueError):
            minimize_spp_k(func, -1)

    def test_empty_function(self):
        result = minimize_spp_k(BoolFunc(3, frozenset()), 0)
        assert result.form.num_pseudoproducts == 0

    def test_paper_section34_intuition(self):
        """Even at k=0 the ascent combines x1x2x̄4-style prime pairs
        into x2(x1 ⊕ x4)-style pseudoproducts."""
        # f over 3 vars: on-set where the SP primes are the two minterm
        # cubes {x0 x1' , x0' x1} (an XOR): SPP_0 must beat SP.
        func = BoolFunc(3, frozenset({0b001, 0b010, 0b101, 0b110}))
        r0 = minimize_spp_k(func, 0, covering="exact")
        sp = minimize_sp(func, covering="exact")
        assert r0.num_literals < sp.num_literals


class TestBounds:
    @given(small_funcs)
    @settings(max_examples=20, deadline=None)
    def test_between_sp_and_exact(self, func):
        """With exact covering: SPP ≤ SPP_0 ≤ SP in literal count."""
        sp = minimize_sp(func, covering="exact")
        r0 = minimize_spp_k(func, 0, covering="exact")
        exact = minimize_spp(func, covering="exact")
        assert exact.num_literals <= r0.num_literals <= sp.num_literals

    @given(small_funcs)
    @settings(max_examples=12, deadline=None)
    def test_monotone_in_k(self, func):
        """Deeper descent (larger k) never worsens the exact-covered
        literal count: the candidate set only grows."""
        costs = [
            minimize_spp_k(func, k, covering="exact").num_literals
            for k in range(func.n)
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    @given(small_funcs)
    @settings(max_examples=12, deadline=None)
    def test_full_descent_is_exact(self, func):
        """k = n-1 means 'we are looking for the optimal SPP solution'."""
        full = minimize_spp_k(func, func.n - 1, covering="exact")
        exact = minimize_spp(func, covering="exact")
        assert full.num_literals == exact.num_literals


class TestInitialCover:
    def test_pla_rows_as_cover(self):
        """A non-prime cover (raw minterms) still yields a valid SPP_k."""
        from repro.core.pseudocube import Pseudocube

        func = BoolFunc(3, frozenset({1, 2, 4, 7}))
        cover = [Pseudocube.from_point(3, p) for p in func.on_set]
        result = minimize_spp_k(func, 0, initial_cover=cover, covering="exact")
        assert_equivalent(result.form, func)
        # The ascent from minterms finds the single parity pseudoproduct.
        assert result.num_literals == 3

    def test_incomplete_cover_rejected(self):
        from repro.core.pseudocube import Pseudocube

        func = BoolFunc(3, frozenset({1, 2}))
        with pytest.raises(ValueError, match="cover"):
            minimize_spp_k(func, 0, initial_cover=[Pseudocube.from_point(3, 1)])

    def test_cover_outside_care_rejected(self):
        from repro.core.pseudocube import Pseudocube

        func = BoolFunc(3, frozenset({1}))
        bad = [Pseudocube.from_point(3, 1), Pseudocube.from_point(3, 5)]
        with pytest.raises(ValueError, match="care"):
            minimize_spp_k(func, 0, initial_cover=bad)

    def test_wrong_space_rejected(self):
        from repro.core.pseudocube import Pseudocube

        func = BoolFunc(3, frozenset({1}))
        with pytest.raises(ValueError, match="space"):
            minimize_spp_k(func, 0, initial_cover=[Pseudocube.from_point(4, 1)])


class TestBudget:
    def test_comparison_budget_still_verifies(self):
        func = BoolFunc(4, frozenset(range(1, 15)))
        tight = minimize_spp_k(func, 2, max_comparisons=5)
        assert_equivalent(tight.form, func)

    @given(small_funcs)
    @settings(max_examples=10, deadline=None)
    def test_budget_never_breaks_equivalence(self, func):
        for budget in (1, 100):
            result = minimize_spp_k(func, func.n - 1, max_comparisons=budget)
            assert_equivalent(result.form, func)


class TestStats:
    def test_stats_populated(self):
        func = BoolFunc(4, frozenset({1, 2, 4, 8, 7, 11}))
        result = minimize_spp_k(func, 2)
        stats = result.heuristic
        assert stats is not None
        assert stats.k == 2
        assert stats.num_primes > 0
        assert stats.candidates == result.num_candidates
        assert stats.descended >= 0

    def test_k0_descends_nothing(self):
        func = BoolFunc(4, frozenset({1, 2, 4, 8}))
        result = minimize_spp_k(func, 0)
        assert result.heuristic.descended == 0
