"""Tests for the unate covering solvers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.minimize.covering import (
    CoveringProblem,
    build_covering,
    solve,
    solve_exact,
    solve_greedy,
)


def _problem(masks, costs):
    num_rows = max(m.bit_length() for m in masks)
    return CoveringProblem(num_rows, list(masks), list(costs), list(range(len(masks))))


class TestBuild:
    def test_build_covering_drops_useless_columns(self):
        problem = build_covering(
            rows=[10, 20],
            candidates=["a", "b", "c"],
            covered_rows_of=lambda c: {"a": [10], "b": [20, 99], "c": [99]}[c],
            cost_of=lambda c: 1,
        )
        assert problem.num_columns == 2  # "c" covers nothing relevant
        assert problem.is_feasible()

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            CoveringProblem(1, [1], [0], ["x"])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CoveringProblem(1, [1], [1, 2], ["x"])


class TestGreedy:
    def test_simple_cover(self):
        problem = _problem([0b011, 0b110, 0b100], [1, 1, 1])
        solution = solve_greedy(problem)
        covered = 0
        for i in solution.selected:
            covered |= problem.column_masks[i]
        assert covered == 0b111

    def test_infeasible_raises(self):
        problem = _problem([0b001], [1])
        problem.num_rows = 2
        with pytest.raises(ValueError):
            solve_greedy(problem)

    def test_redundancy_eliminated(self):
        # Columns 0 and 1 suffice; greedy might also pick extras.
        problem = _problem([0b0011, 0b1100, 0b0110], [1, 1, 1])
        solution = solve_greedy(problem)
        assert len(solution.selected) == 2

    def test_empty_universe(self):
        problem = CoveringProblem(0, [], [], [])
        assert solve_greedy(problem).cost == 0

    def test_improvement_pass_escapes_ratio_trap(self):
        """Pure ratio greedy picks the 3-row column and pays 6; the
        1-removal improvement (or the gain strategy) recovers the
        4-cost optimum."""
        problem = _problem([0b0111, 0b1100, 0b0011, 0b1000], [2, 2, 2, 2])
        assert solve_greedy(problem).cost == 4

    def test_greedy_matches_exact_on_small_random(self):
        """Not required in general, but on these tiny instances the
        improved greedy should be within 1.5x of optimal."""
        import random

        rng = random.Random(7)
        for _ in range(50):
            cols = [rng.randrange(1, 64) for _ in range(8)] + [63]
            costs = [rng.randint(1, 4) for _ in range(9)]
            problem = CoveringProblem(6, cols, costs, list(range(9)))
            greedy = solve_greedy(problem).cost
            exact = solve_exact(problem).cost
            assert exact <= greedy <= 1.5 * exact


class TestExact:
    def test_beats_or_matches_greedy(self):
        # Greedy trap: the big cheap column first, then two more needed.
        masks = [0b0111, 0b1100, 0b0011, 0b1000]
        costs = [2, 2, 2, 2]
        problem = _problem(masks, costs)
        exact = solve_exact(problem)
        greedy = solve_greedy(problem)
        assert exact.optimal
        assert exact.cost <= greedy.cost
        assert exact.cost == 4  # columns 1 and 2

    def test_weighted_instance(self):
        # One expensive column covers all; two cheap ones also cover all.
        problem = _problem([0b11, 0b01, 0b10], [5, 1, 1])
        solution = solve_exact(problem)
        assert solution.optimal
        assert solution.cost == 2
        assert sorted(solution.selected) == [1, 2]

    def test_essential_column(self):
        # Row 2 only covered by column 0.
        problem = _problem([0b100, 0b011], [3, 1])
        solution = solve_exact(problem)
        assert solution.cost == 4

    @given(
        st.lists(st.integers(1, 63), min_size=1, max_size=8),
        st.data(),
    )
    def test_exact_optimal_vs_bruteforce(self, masks, data):
        universe = 0
        for m in masks:
            universe |= m
        num_rows = universe.bit_length()
        # Make instance feasible: ensure full coverage.
        if universe != (1 << num_rows) - 1:
            masks = masks + [(1 << num_rows) - 1]
        costs = [data.draw(st.integers(1, 5)) for _ in masks]
        problem = CoveringProblem(num_rows, list(masks), costs, list(range(len(masks))))
        solution = solve_exact(problem)
        assert solution.optimal
        # Brute force over all subsets.
        best = None
        for subset in range(1 << len(masks)):
            covered = 0
            cost = 0
            for i in range(len(masks)):
                if (subset >> i) & 1:
                    covered |= masks[i]
                    cost += costs[i]
            if covered == problem.universe and (best is None or cost < best):
                best = cost
        assert solution.cost == best

    def test_node_limit_degrades_gracefully(self):
        masks = [0b01, 0b10, 0b11]
        problem = _problem(masks, [1, 1, 3])
        solution = solve_exact(problem, node_limit=1)
        covered = 0
        for i in solution.selected:
            covered |= masks[i]
        assert covered == problem.universe  # still a valid cover


class TestDispatch:
    def test_solve_modes(self):
        problem = _problem([0b11], [1])
        assert solve(problem, "greedy").cost == 1
        assert solve(problem, "exact").cost == 1
        assert solve(problem, "auto").cost == 1

    def test_unknown_mode(self):
        problem = _problem([0b1], [1])
        with pytest.raises(ValueError):
            solve(problem, "magic")
