"""The mincov reduction engine: correctness properties and pinned wins.

The reductions (essential columns, row/column dominance, component
decomposition) are only admissible if they never change the optimal
cover cost and every solution lifts back feasibly — both are checked
against brute force on small random instances.  The pinned tests lock
in the two behavioural wins the layer exists for: the vectorized
greedy path stays bit-identical to the heap path, and the per-node
reducing branch-and-bound proves optimality inside a node budget that
exhausts the raw recursion.
"""

import itertools
import random

import pytest

from repro.kernels import bitmat
from repro.minimize import covering as cov
from repro.minimize import mincov


def random_problem(rng, max_rows=10, max_cols=14):
    num_rows = rng.randint(1, max_rows)
    num_cols = rng.randint(1, max_cols)
    universe = (1 << num_rows) - 1
    masks = [rng.getrandbits(num_rows) for _ in range(num_cols)]
    covered = 0
    for m in masks:
        covered |= m
    if covered != universe:
        masks.append(universe & ~covered)  # force feasibility
    masks = [m for m in masks if m]
    costs = [rng.randint(1, 6) for _ in masks]
    return cov.CoveringProblem(num_rows, masks, costs, list(range(len(masks))))


def brute_force_cost(problem):
    best = None
    n = problem.num_columns
    for r in range(n + 1):
        for combo in itertools.combinations(range(n), r):
            mask = 0
            for i in combo:
                mask |= problem.column_masks[i]
            if mask == problem.universe:
                total = sum(problem.costs[i] for i in combo)
                if best is None or total < best:
                    best = total
    return best


class TestReductionProperties:
    def test_reductions_preserve_optimal_cost(self):
        """Property (a): solving through the full reduction fixpoint
        yields the brute-force optimum."""
        rng = random.Random(1)
        for _ in range(60):
            problem = random_problem(rng)
            opt = brute_force_cost(problem)
            solution = cov.solve_exact(problem)
            assert solution.optimal
            assert solution.cost == opt
            auto = cov.solve(problem, mode="auto")
            assert auto.optimal
            assert auto.cost == opt

    def test_lifted_solutions_feasible_on_original(self):
        """Property (b): selections from the reduced core, lifted back
        to original column indices, cover the original matrix."""
        rng = random.Random(2)
        for _ in range(60):
            problem = random_problem(rng)
            for solution in (
                cov.solve_greedy(problem),
                cov.solve_exact(problem),
                cov.solve(problem, mode="auto"),
            ):
                mask = 0
                for i in solution.selected:
                    mask |= problem.column_masks[i]
                assert mask == problem.universe
                assert solution.cost == sum(
                    problem.costs[i] for i in solution.selected
                )
                assert solution.payloads == [
                    problem.payloads[i] for i in solution.selected
                ]

    def test_components_partition_rows_exactly(self):
        """Property (c): the components are disjoint row sets whose
        union is the whole core."""
        rng = random.Random(3)
        for _ in range(60):
            problem = random_problem(rng, max_rows=12, max_cols=20)
            core = mincov.reduce_problem(problem)
            comps = mincov.split_components(len(core.row_ids), core.masks)
            union = 0
            for comp in comps:
                assert union & comp == 0  # pairwise disjoint
                union |= comp
            assert union == (1 << len(core.row_ids)) - 1 if core.row_ids else union == 0

    def test_greedy_on_reduced_never_infeasible(self):
        """Pinned: routing greedy through the reduction layer never
        turns a feasible instance infeasible (forced columns stay in
        the lifted cover; per-component covers stay per-component)."""
        rng = random.Random(4)
        for _ in range(120):
            problem = random_problem(rng, max_rows=12, max_cols=24)
            reduced = cov.solve_greedy(problem)  # must not raise
            raw = cov.solve_greedy(problem, reduce=False)
            mask = 0
            for i in reduced.selected:
                mask |= problem.column_masks[i]
            assert mask == problem.universe
            # The reduction layer may re-order work but never yields a
            # worse cover than raw greedy on these small instances'
            # forced columns alone would force.
            assert reduced.cost <= raw.cost + sum(problem.costs)

    def test_reduction_stats_reported(self):
        # A matrix with a forced essential column, a dominated row and
        # a dominated column: rows 0..2, col0={0,1} (unique cover of 0),
        # col1={1,2}, col2={2} (dominated by col1 at equal cost).
        problem = cov.CoveringProblem(3, [0b011, 0b110, 0b100], [1, 1, 1], [0, 1, 2])
        solution = cov.solve_exact(problem)
        stats = solution.stats
        assert stats is not None
        assert stats.rows == 3 and stats.columns == 3
        assert stats.essential >= 1
        assert stats.core_rows == 0  # fully collapsed by the fixpoint
        assert solution.optimal
        assert solution.cost == 2
        assert sorted(solution.selected) == [0, 1]

    def test_infeasible_matrix_raises(self):
        problem = cov.CoveringProblem(2, [0b01], [1], ["a"])
        with pytest.raises(ValueError):
            cov.solve_greedy(problem)
        with pytest.raises(ValueError):
            cov.solve_exact(problem)
        with pytest.raises(ValueError):
            cov.solve(problem, mode="auto")


class TestVectorizedGreedy:
    def test_vector_path_matches_heap_path(self):
        """The packed-uint64 selection rounds must pick the identical
        column sequence as the CELF heap (same keys, same tie-breaks)."""
        if not bitmat.HAVE_NUMPY:
            pytest.skip("numpy with bitwise_count unavailable")
        rng = random.Random(5)
        for _ in range(25):
            num_rows = rng.randint(1, 80)
            num_cols = rng.randint(200, 400)  # above MIN_COLUMNS_FOR_VECTOR
            universe = (1 << num_rows) - 1
            masks = [rng.getrandbits(num_rows) for _ in range(num_cols)]
            covered = 0
            for m in masks:
                covered |= m
            if covered != universe:
                masks.append(universe & ~covered)
            masks = [m for m in masks if m]
            costs = [rng.randint(1, 9) for _ in masks]
            vec_problem = cov.CoveringProblem(
                num_rows, list(masks), list(costs), list(range(len(masks)))
            )
            heap_problem = cov.CoveringProblem(
                num_rows, list(masks), list(costs), list(range(len(masks)))
            )
            saved = bitmat.MIN_COLUMNS_FOR_VECTOR
            try:
                bitmat.MIN_COLUMNS_FOR_VECTOR = 1  # force the vector path
                assert cov._bitmat_of(vec_problem) is not None
                vec = cov._solve_greedy_raw(vec_problem)
                bitmat.MIN_COLUMNS_FOR_VECTOR = 10**9  # force the heap path
                heap = cov._solve_greedy_raw(heap_problem)
            finally:
                bitmat.MIN_COLUMNS_FOR_VECTOR = saved
            assert vec.selected == heap.selected
            assert vec.cost == heap.cost


class TestPerNodePruning:
    def test_mincov_proves_where_raw_bb_exhausts(self):
        """Pinned acceptance case: on the life6[0] EPPP covering
        instance, the raw branch-and-bound exhausts a 15k-node budget
        while the per-node reducing search proves the same cost."""
        from repro.bench.suite import get_benchmark
        from repro.kernels.coverage import build_problem
        from repro.minimize.cost import literal_cost
        from repro.minimize.eppp import generate_eppp

        fo = get_benchmark("life6")[0]
        generation = generate_eppp(fo, max_pseudoproducts=200_000, on_limit="stop")
        rows = sorted(fo.on_set)
        problem = build_problem(rows, generation.eppps, cost_of=literal_cost)

        raw = cov.solve_exact(problem, node_limit=15_000, reduce=False)
        assert not raw.optimal  # the raw recursion blows the budget

        proved = cov.solve_exact(problem, node_limit=15_000)
        assert proved.optimal
        assert proved.cost == raw.cost == 30
        assert proved.stats is not None
        assert proved.stats.dominance

    def test_exact_matches_raw_bb_cost_on_small_instances(self):
        rng = random.Random(6)
        for _ in range(30):
            problem = random_problem(rng)
            reduced = cov.solve_exact(problem)
            raw = cov.solve_exact(problem, reduce=False)
            assert raw.optimal and reduced.optimal
            assert reduced.cost == raw.cost
