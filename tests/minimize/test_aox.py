"""Tests for the AND-OR-EXOR baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.core.exor import ExorFactor
from repro.minimize.aox import AoxForm, minimize_aox
from repro.minimize.sp import minimize_sp
from repro.verify import verify_form

random_funcs = st.builds(
    lambda on: BoolFunc(4, frozenset(on)),
    st.sets(st.integers(0, 15), min_size=1, max_size=15),
)


class TestAoxForm:
    def test_zero_correction_is_plain_sop(self):
        func = BoolFunc(3, frozenset({1, 3}))
        sp = minimize_sp(func)
        form = AoxForm(3, sp.form, ExorFactor(0, 0))
        assert form.on_set() == set(func.on_set)
        assert form.num_literals == sp.num_literals
        assert "(+)" not in str(form) or "(+)" in str(sp.form)

    def test_evaluate_xors_correction(self):
        func = BoolFunc(2, frozenset({0b00, 0b11}))  # XNOR
        result = minimize_aox(func)
        for p in range(4):
            assert result.form.evaluate(p) == (1 if p in func.on_set else 0)


class TestMinimizeAox:
    def test_parity_collapses(self):
        """Odd parity needs 2^{n-1} products as SP but is a bare
        correction term in AOX form."""
        func = BoolFunc.from_lambda(4, lambda p: p.bit_count() % 2 == 1)
        sp = minimize_sp(func, covering="exact")
        aox = minimize_aox(func, max_width=4)
        assert aox.num_literals == 4  # the factor x0^x1^x2^x3 alone
        assert aox.num_literals < sp.num_literals

    def test_never_worse_than_sp(self):
        """The constant-0 correction is always tried, so AOX ≤ SP."""
        for on in ({1, 2}, {0, 7}, {1, 2, 3, 4}):
            func = BoolFunc(3, frozenset(on))
            assert (
                minimize_aox(func).num_literals
                <= minimize_sp(func).num_literals
            )

    @given(random_funcs)
    @settings(max_examples=20, deadline=None)
    def test_result_verifies(self, func):
        result = minimize_aox(func)
        assert verify_form(result.form, func).ok

    def test_dont_cares_respected(self):
        func = BoolFunc(3, frozenset({1}), frozenset({6}))
        result = minimize_aox(func)
        report = verify_form(result.form, func)
        assert report.ok

    def test_tried_counts_search_space(self):
        func = BoolFunc(3, frozenset({1}))
        result = minimize_aox(func, max_width=1)
        # 1 constant + 3 variables x 2 polarities
        assert result.tried == 7
