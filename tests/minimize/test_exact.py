"""Tests for exact SPP minimization (Algorithm 2 end to end)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.minimize.covering import CoveringProblem, solve_exact
from repro.minimize.cost import factor_cost, literal_cost, product_cost
from repro.minimize.exact import minimize_spp
from repro.minimize.sp import minimize_sp
from repro.verify import assert_equivalent

small_funcs = st.builds(
    lambda on: BoolFunc(3, frozenset(on)),
    st.sets(st.integers(0, 7), min_size=1, max_size=8),
)


def _true_minimum_literals(func: BoolFunc) -> int:
    """Brute-force minimal SPP literal count over ALL pseudoproducts
    (not just the EPPP set) with exact covering — the ground truth."""
    care = sorted(func.care_set)
    candidates = set()
    for size_log in range(len(care).bit_length()):
        size = 1 << size_log
        if size > len(care):
            break
        for subset in itertools.combinations(care, size):
            try:
                candidates.add(Pseudocube.from_points(func.n, subset))
            except ValueError:
                continue
    rows = sorted(func.on_set)
    index = {r: i for i, r in enumerate(rows)}
    masks, costs, payloads = [], [], []
    for pc in candidates:
        mask = 0
        for p in pc.points():
            if p in index:
                mask |= 1 << index[p]
        if mask:
            masks.append(mask)
            costs.append(literal_cost(pc))
            payloads.append(pc)
    problem = CoveringProblem(len(rows), masks, costs, payloads)
    solution = solve_exact(problem)
    assert solution.optimal
    return solution.cost


class TestCorrectness:
    @given(small_funcs)
    @settings(max_examples=40, deadline=None)
    def test_result_implements_function(self, func):
        result = minimize_spp(func)
        assert_equivalent(result.form, func)

    def test_empty_function(self):
        result = minimize_spp(BoolFunc(3, frozenset()))
        assert result.form.num_pseudoproducts == 0
        assert result.num_literals == 0

    def test_tautology(self):
        result = minimize_spp(BoolFunc(3, frozenset(range(8))))
        assert_equivalent(result.form, BoolFunc(3, frozenset(range(8))))
        assert result.num_pseudoproducts == 1
        # The whole space is the constant-1 pseudoproduct: zero literals.
        assert result.form.pseudoproducts[0].degree == 3


class TestOptimality:
    @given(small_funcs)
    @settings(max_examples=25, deadline=None)
    def test_exact_covering_reaches_true_minimum(self, func):
        """Restricting the covering to the EPPP candidates loses nothing:
        the minimum over EPPPs equals the minimum over ALL pseudoproducts
        (the guarantee behind Definition 3)."""
        result = minimize_spp(func, covering="exact")
        assert result.covering_optimal
        cost = sum(literal_cost(pc) for pc in result.form.pseudoproducts)
        assert cost == _true_minimum_literals(func)

    def test_spp_never_worse_than_sp(self):
        """Minimal SPP ≤ minimal SP (cubes are pseudoproducts)."""
        for on in [{0b01, 0b10}, {0, 3, 5}, {1, 2, 3, 4, 5}]:
            func = BoolFunc(3, frozenset(on))
            spp = minimize_spp(func, covering="exact")
            sp = minimize_sp(func, covering="exact")
            assert spp.num_literals <= sp.num_literals


class TestAffineShortcut:
    def test_parity_is_single_pseudoproduct(self):
        """A completely specified parity function returns instantly as
        one pseudoproduct without any EPPP generation."""
        func = BoolFunc.from_lambda(6, lambda p: p.bit_count() % 2 == 1)
        result = minimize_spp(func)
        assert result.generation is None
        assert result.num_pseudoproducts == 1
        assert result.num_literals == 6
        assert result.covering_optimal
        assert_equivalent(result.form, func)

    def test_affine_subspace_on_set(self):
        func = BoolFunc(4, frozenset(Pseudocube.from_points(
            4, [0b0000, 0b0110, 0b1011, 0b1101]).points()))
        result = minimize_spp(func)
        assert result.num_pseudoproducts == 1
        assert_equivalent(result.form, func)

    def test_shortcut_not_taken_with_dont_cares(self):
        """With dc present the single coset need not be optimal, so the
        full pipeline runs."""
        func = BoolFunc(3, frozenset({0b000}), frozenset({0b111}))
        result = minimize_spp(func, covering="exact")
        # minterm (3 literals) beats the heavy 2-point coset (4 literals)
        assert result.num_literals == 3

    @given(small_funcs)
    @settings(max_examples=30, deadline=None)
    def test_shortcut_agrees_with_generation(self, func):
        """Whenever the shortcut fires, its literal count matches the
        exact pipeline run on the same function."""
        result = minimize_spp(func, covering="exact")
        if result.generation is None and func.on_set:
            candidates_result = _true_minimum_literals(func)
            cost = sum(
                literal_cost(pc) for pc in result.form.pseudoproducts
            )
            assert cost == candidates_result


class TestCandidatePruning:
    def test_pruned_covering_still_verifies(self):
        from repro.minimize.exact import cover_with
        from repro.minimize.eppp import generate_eppp

        func = BoolFunc(4, frozenset(range(3, 16)))
        generation = generate_eppp(func)
        form, optimal, _ = cover_with(
            func, generation.eppps, covering="exact", max_candidates=5
        )
        assert not optimal  # pruning forfeits the optimality proof
        assert_equivalent(form, func)


class TestCostFunctions:
    def test_alternative_costs_run(self):
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))
        for cost in (literal_cost, factor_cost, product_cost):
            result = minimize_spp(func, covering="exact", cost=cost)
            assert_equivalent(result.form, func)

    def test_product_cost_minimizes_count(self):
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))  # odd parity
        result = minimize_spp(func, covering="exact", cost=product_cost)
        assert result.num_pseudoproducts == 1  # x0 ⊕ x1 ⊕ x2


class TestDontCares:
    def test_dc_improves_cover(self):
        """on = {001}, dc = {011}: with the don't care the cover is the
        2-literal cube x0·x̄2 instead of a 3-literal minterm."""
        with_dc = minimize_spp(
            BoolFunc(3, frozenset({0b001}), frozenset({0b011})), covering="exact"
        )
        without = minimize_spp(BoolFunc(3, frozenset({0b001})), covering="exact")
        assert with_dc.num_literals < without.num_literals
        assert_equivalent(
            with_dc.form, BoolFunc(3, frozenset({0b001}), frozenset({0b011}))
        )
