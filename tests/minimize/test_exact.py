"""Tests for exact SPP minimization (Algorithm 2 end to end)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.minimize.covering import CoveringProblem, solve_exact
from repro.minimize.cost import factor_cost, literal_cost, product_cost
from repro.minimize.exact import minimize_spp
from repro.minimize.sp import minimize_sp
from repro.verify import assert_equivalent

small_funcs = st.builds(
    lambda on: BoolFunc(3, frozenset(on)),
    st.sets(st.integers(0, 7), min_size=1, max_size=8),
)


def _true_minimum_literals(func: BoolFunc) -> int:
    """Brute-force minimal SPP literal count over ALL pseudoproducts
    (not just the EPPP set) with exact covering — the ground truth."""
    care = sorted(func.care_set)
    candidates = set()
    for size_log in range(len(care).bit_length()):
        size = 1 << size_log
        if size > len(care):
            break
        for subset in itertools.combinations(care, size):
            try:
                candidates.add(Pseudocube.from_points(func.n, subset))
            except ValueError:
                continue
    rows = sorted(func.on_set)
    index = {r: i for i, r in enumerate(rows)}
    masks, costs, payloads = [], [], []
    for pc in candidates:
        mask = 0
        for p in pc.points():
            if p in index:
                mask |= 1 << index[p]
        if mask:
            masks.append(mask)
            costs.append(literal_cost(pc))
            payloads.append(pc)
    problem = CoveringProblem(len(rows), masks, costs, payloads)
    solution = solve_exact(problem)
    assert solution.optimal
    return solution.cost


class TestCorrectness:
    @given(small_funcs)
    @settings(max_examples=40, deadline=None)
    def test_result_implements_function(self, func):
        result = minimize_spp(func)
        assert_equivalent(result.form, func)

    def test_empty_function(self):
        result = minimize_spp(BoolFunc(3, frozenset()))
        assert result.form.num_pseudoproducts == 0
        assert result.num_literals == 0

    def test_tautology(self):
        result = minimize_spp(BoolFunc(3, frozenset(range(8))))
        assert_equivalent(result.form, BoolFunc(3, frozenset(range(8))))
        assert result.num_pseudoproducts == 1
        # The whole space is the constant-1 pseudoproduct: zero literals.
        assert result.form.pseudoproducts[0].degree == 3


class TestOptimality:
    @given(small_funcs)
    @settings(max_examples=25, deadline=None)
    def test_exact_covering_reaches_true_minimum(self, func):
        """Restricting the covering to the EPPP candidates loses nothing:
        the minimum over EPPPs equals the minimum over ALL pseudoproducts
        (the guarantee behind Definition 3)."""
        result = minimize_spp(func, covering="exact")
        assert result.covering_optimal
        cost = sum(literal_cost(pc) for pc in result.form.pseudoproducts)
        assert cost == _true_minimum_literals(func)

    def test_spp_never_worse_than_sp(self):
        """Minimal SPP ≤ minimal SP (cubes are pseudoproducts)."""
        for on in [{0b01, 0b10}, {0, 3, 5}, {1, 2, 3, 4, 5}]:
            func = BoolFunc(3, frozenset(on))
            spp = minimize_spp(func, covering="exact")
            sp = minimize_sp(func, covering="exact")
            assert spp.num_literals <= sp.num_literals


class TestAffineShortcut:
    def test_parity_is_single_pseudoproduct(self):
        """A completely specified parity function returns instantly as
        one pseudoproduct without any EPPP generation."""
        func = BoolFunc.from_lambda(6, lambda p: p.bit_count() % 2 == 1)
        result = minimize_spp(func)
        assert result.generation is None
        assert result.num_pseudoproducts == 1
        assert result.num_literals == 6
        assert result.covering_optimal
        assert_equivalent(result.form, func)

    def test_affine_subspace_on_set(self):
        func = BoolFunc(4, frozenset(Pseudocube.from_points(
            4, [0b0000, 0b0110, 0b1011, 0b1101]).points()))
        result = minimize_spp(func)
        assert result.num_pseudoproducts == 1
        assert_equivalent(result.form, func)

    def test_shortcut_not_taken_with_dont_cares(self):
        """With dc present the single coset need not be optimal, so the
        full pipeline runs."""
        func = BoolFunc(3, frozenset({0b000}), frozenset({0b111}))
        result = minimize_spp(func, covering="exact")
        # minterm (3 literals) beats the heavy 2-point coset (4 literals)
        assert result.num_literals == 3

    @given(small_funcs)
    @settings(max_examples=30, deadline=None)
    def test_shortcut_agrees_with_generation(self, func):
        """Whenever the shortcut fires, its literal count matches the
        exact pipeline run on the same function."""
        result = minimize_spp(func, covering="exact")
        if result.generation is None and func.on_set:
            candidates_result = _true_minimum_literals(func)
            cost = sum(
                literal_cost(pc) for pc in result.form.pseudoproducts
            )
            assert cost == candidates_result


class TestCandidatePruning:
    def test_pruned_covering_still_verifies(self):
        from repro.minimize.exact import cover_with
        from repro.minimize.eppp import generate_eppp

        func = BoolFunc(4, frozenset(range(3, 16)))
        generation = generate_eppp(func)
        form, optimal, _, _ = cover_with(
            func, generation.eppps, covering="exact", max_candidates=5
        )
        assert not optimal  # pruning forfeits the optimality proof
        assert_equivalent(form, func)

    def test_feasibility_witness_repair_loop(self):
        """When the most efficient candidates miss an on-point, the
        repair loop appends a witness from the pruned tail (the
        ``missing`` loop in ``_prune_candidates``)."""
        from repro.minimize.exact import _prune_candidates

        func = BoolFunc(4, frozenset({0, 1, 15}))
        pair = Pseudocube.from_points(4, (0, 1))       # eff 3/2: ranked first
        single0 = Pseudocube.from_points(4, (0,))      # eff 4
        single1 = Pseudocube.from_points(4, (1,))      # eff 4
        witness = Pseudocube.from_points(4, (15,))     # eff 4, listed last:
        # the only cover of point 15 sits beyond the keep horizon.
        candidates = [pair, single0, single1, witness]
        kept = _prune_candidates(func, candidates, literal_cost, 2)
        assert len(kept) == 3
        assert kept[:2] == [pair, single0]
        assert kept[2] is witness  # repaired in from the tail
        covered = set()
        for pc in kept:
            covered.update(pc.points())
        assert func.on_set <= covered

    def test_no_repair_when_keep_already_feasible(self):
        from repro.minimize.exact import _prune_candidates

        func = BoolFunc(4, frozenset({0, 1}))
        pair = Pseudocube.from_points(4, (0, 1))
        singles = [Pseudocube.from_points(4, (p,)) for p in (0, 1)]
        kept = _prune_candidates(func, [pair, *singles], literal_cost, 1)
        assert kept == [pair]

    def test_repair_stops_once_all_points_are_witnessed(self):
        """Only as many tail candidates are pulled in as the uncovered
        points require — not the whole tail."""
        from repro.minimize.exact import _prune_candidates

        func = BoolFunc(4, frozenset({0, 1, 14, 15}))
        pair = Pseudocube.from_points(4, (0, 1))
        tail_hit = Pseudocube.from_points(4, (14, 15))  # repairs both at once
        tail_spare = Pseudocube.from_points(4, (15,))
        kept = _prune_candidates(
            func, [pair, tail_hit, tail_spare], literal_cost, 1
        )
        assert tail_hit in kept
        assert tail_spare not in kept

    def test_exact_covering_on_pruned_instance_not_proved_optimal(self):
        """Even ``covering="exact"`` cannot claim optimality after the
        candidate list was pruned."""
        from repro.minimize.exact import cover_with
        from repro.minimize.eppp import generate_eppp

        func = BoolFunc(4, frozenset(range(3, 16)))
        generation = generate_eppp(func)
        full_form, full_optimal, _, _ = cover_with(
            func, generation.eppps, covering="exact"
        )
        assert full_optimal
        _, pruned_optimal, _, _ = cover_with(
            func, generation.eppps, covering="exact", max_candidates=3
        )
        assert not pruned_optimal


class TestGenerationFallbackHook:
    """The engine's degradation hook on minimize_spp (see repro.engine)."""

    def _hard_func(self):
        from repro.bench.suite import get_benchmark

        return get_benchmark("adr3")[2]

    def test_budget_exceeded_raises_without_fallback(self):
        from repro.minimize.eppp import GenerationBudgetExceeded
        import pytest

        with pytest.raises(GenerationBudgetExceeded):
            minimize_spp(self._hard_func(), max_pseudoproducts=10, on_limit="raise")

    def test_fallback_invoked_and_marked_non_optimal(self):
        from repro.minimize.heuristic import minimize_spp_k

        func = self._hard_func()
        calls = []

        def fallback(f):
            calls.append(f)
            return minimize_spp_k(f, 0)

        result = minimize_spp(
            func, max_pseudoproducts=10, on_limit="raise", fallback=fallback
        )
        assert calls == [func]
        assert result.covering_optimal is False
        assert_equivalent(result.form, func)

    def test_fallback_not_invoked_within_budget(self):
        func = BoolFunc(3, frozenset({1, 2}))

        def fallback(f):  # pragma: no cover — must not run
            raise AssertionError("fallback must not be called")

        result = minimize_spp(func, max_pseudoproducts=10_000, fallback=fallback)
        assert_equivalent(result.form, func)


class TestCostFunctions:
    def test_alternative_costs_run(self):
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))
        for cost in (literal_cost, factor_cost, product_cost):
            result = minimize_spp(func, covering="exact", cost=cost)
            assert_equivalent(result.form, func)

    def test_product_cost_minimizes_count(self):
        func = BoolFunc(3, frozenset({1, 2, 4, 7}))  # odd parity
        result = minimize_spp(func, covering="exact", cost=product_cost)
        assert result.num_pseudoproducts == 1  # x0 ⊕ x1 ⊕ x2


class TestDontCares:
    def test_dc_improves_cover(self):
        """on = {001}, dc = {011}: with the don't care the cover is the
        2-literal cube x0·x̄2 instead of a 3-literal minterm."""
        with_dc = minimize_spp(
            BoolFunc(3, frozenset({0b001}), frozenset({0b011})), covering="exact"
        )
        without = minimize_spp(BoolFunc(3, frozenset({0b001})), covering="exact")
        assert with_dc.num_literals < without.num_literals
        assert_equivalent(
            with_dc.form, BoolFunc(3, frozenset({0b001}), frozenset({0b011}))
        )
