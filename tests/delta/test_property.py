"""Property suite: the warm path is indistinguishable from cold.

For any function and any care-preserving edit within the threshold,
``warm_minimize`` must return exactly the form a cold
:func:`~repro.minimize.exact.minimize_spp` with the same parameters
would — including at the edit-size boundary and on the empty diff.
Care-*changing* edits must be refused, and :func:`reminimize` must then
fall back to a cold solve with identical output.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.boolfunc.function import BoolFunc
from repro.delta import (
    DeltaIneligible,
    build_context,
    eligibility,
    reminimize,
    toggle_points,
    warm_minimize,
)
from repro.minimize.exact import minimize_spp
from repro.verify import verify_form

funcs_with_dc = st.builds(
    lambda on, dc: BoolFunc(
        4, frozenset(on) - frozenset(dc), frozenset(dc) - frozenset(on)
    ),
    st.sets(st.integers(0, 15), min_size=2, max_size=12),
    st.sets(st.integers(0, 15), min_size=1, max_size=6),
)


@st.composite
def func_and_edit(draw, max_toggles=6):
    """A function plus a care-preserving toggle set of its care points."""
    func = draw(funcs_with_dc)
    care = sorted(func.care_set)
    if not care:
        return func, []
    k = draw(st.integers(0, min(max_toggles, len(care))))
    toggles = draw(
        st.lists(st.sampled_from(care), min_size=k, max_size=k, unique=True)
    )
    return func, toggles


class TestWarmColdEquivalence:
    @given(func_and_edit())
    @settings(max_examples=40, deadline=None)
    def test_greedy_warm_equals_cold(self, case):
        func, toggles = case
        ctx = build_context(func, minimize_spp(func))
        assume(ctx is not None)
        edited = toggle_points(func, toggles)
        assume(edited.on_set)
        edit = len(func.on_set ^ edited.on_set)
        assume(edit <= 8)
        warm = warm_minimize(ctx, edited)
        cold = minimize_spp(edited)
        assert warm.form == cold.form
        assert warm.covering_optimal == cold.covering_optimal
        assert verify_form(warm.form, edited)

    @given(func_and_edit(max_toggles=4))
    @settings(max_examples=20, deadline=None)
    def test_exact_warm_equals_cold(self, case):
        func, toggles = case
        result = minimize_spp(func, covering="exact")
        ctx = build_context(func, result, covering="exact")
        assume(ctx is not None)
        edited = toggle_points(func, toggles)
        assume(edited.on_set)
        assume(len(func.on_set ^ edited.on_set) <= 8)
        warm = warm_minimize(ctx, edited)
        cold = minimize_spp(edited, covering="exact")
        assert warm.form == cold.form
        assert warm.num_literals == cold.num_literals
        assert warm.covering_optimal == cold.covering_optimal

    @given(funcs_with_dc)
    @settings(max_examples=20, deadline=None)
    def test_empty_diff_is_identity(self, func):
        ctx = build_context(func, minimize_spp(func))
        assume(ctx is not None)
        warm = warm_minimize(ctx, func)
        assert warm.form == ctx.form


class TestBoundaryAndFallback:
    @given(func_and_edit())
    @settings(max_examples=30, deadline=None)
    def test_threshold_boundary(self, case):
        """Eligibility flips exactly at ``max_edit``: an edit of size k
        is warm under ``max_edit=k`` and cold under ``max_edit=k-1``."""
        func, toggles = case
        ctx = build_context(func, minimize_spp(func))
        assume(ctx is not None)
        edited = toggle_points(func, toggles)
        edit = len(func.on_set ^ edited.on_set)
        assume(edit >= 1)
        assert eligibility(ctx, edited, max_edit=edit) is None
        assert eligibility(ctx, edited, max_edit=edit - 1) == "edit-too-large"

    @given(func_and_edit(max_toggles=2), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_care_growing_edit_refused_then_matches_cold(self, case, extra):
        func, toggles = case
        ctx = build_context(func, minimize_spp(func))
        assume(ctx is not None)
        assume(extra not in func.care_set)
        edited = toggle_points(func, [*toggles, extra])
        try:
            warm_minimize(ctx, edited)
            raise AssertionError("care-changing edit must not go warm")
        except DeltaIneligible as exc:
            assert exc.reason == "care-set-changed"
        out = reminimize(ctx, edited)
        assert not out.warm
        assert out.result.form == minimize_spp(edited).form
