"""Tests for the near-duplicate index and the scheduler warm path."""

from repro.boolfunc.function import BoolFunc
from repro.delta import (
    DeltaIndex,
    build_context,
    onset_signature,
    toggle_points,
    warm_record_for,
)
from repro.engine import Job, run_batch
from repro.minimize.exact import minimize_spp
from repro.serialize import form_from_dict
from repro.verify import verify_form

FUNC = BoolFunc(4, frozenset({0, 1, 3, 6, 9, 12, 14}), frozenset({5, 10}))


def _ctx(func=FUNC, covering="greedy"):
    ctx = build_context(func, minimize_spp(func, covering=covering), covering=covering)
    assert ctx is not None
    return ctx


def _put(index, func=FUNC, covering="greedy"):
    job = Job(func, method="exact", covering=covering)
    index.put(job.content_hash, _ctx(func, covering))
    return job


class TestSignature:
    def test_deterministic_and_order_independent(self):
        assert onset_signature([3, 1, 9]) == onset_signature([9, 3, 1])
        assert onset_signature(FUNC.on_set) == onset_signature(sorted(FUNC.on_set))

    def test_near_duplicates_collide_in_some_band(self):
        a = onset_signature(FUNC.on_set)
        b = onset_signature(toggle_points(FUNC, [0]).on_set)
        assert any(x == y for x, y in zip(a, b))

    def test_disjoint_sets_differ(self):
        assert onset_signature({0, 1, 2}) != onset_signature({13, 14, 15})


class TestLookup:
    def test_near_duplicate_job_finds_base(self):
        index = DeltaIndex()
        _put(index)
        edited = toggle_points(FUNC, [0, 5])
        got = index.lookup(Job(edited, method="exact"))
        assert got is not None and got.func == FUNC
        assert index.stats()["lookups"] == 1

    def test_non_exact_job_never_looked_up(self):
        index = DeltaIndex()
        _put(index)
        assert index.lookup(Job(FUNC, method="heuristic")) is None
        assert index.stats()["lookups"] == 0

    def test_covering_mode_must_match(self):
        index = DeltaIndex()
        _put(index, covering="greedy")
        edited = toggle_points(FUNC, [0])
        job = Job(edited, method="exact", covering="exact")
        assert index.lookup(job) is None
        assert index.stats()["fallback_reasons"] == {"covering-mode-changed": 1}

    def test_edit_too_large_counted(self):
        index = DeltaIndex(max_edit=1)
        _put(index)
        edited = toggle_points(FUNC, [0, 5])  # symmetric diff of 2
        assert index.lookup(Job(edited, method="exact")) is None
        assert index.stats()["fallback_reasons"] == {"edit-too-large": 1}

    def test_smallest_edit_wins(self):
        index = DeltaIndex()
        near = toggle_points(FUNC, [0])
        _put(index)
        _put(index, near)
        got = index.lookup(Job(near, method="exact"))
        assert got is not None and got.func == near

    def test_drop_quarantines(self):
        index = DeltaIndex()
        job = _put(index)
        index.drop(job.content_hash)
        assert len(index) == 0
        assert index.lookup(Job(toggle_points(FUNC, [0]), method="exact")) is None


class TestLru:
    def test_capacity_evicts_oldest(self):
        index = DeltaIndex(capacity=2)
        funcs = [
            BoolFunc(3, frozenset({0, 1, 3}), frozenset({6})),
            BoolFunc(3, frozenset({1, 2, 4}), frozenset({7})),
            BoolFunc(3, frozenset({2, 5, 6}), frozenset({0})),
        ]
        for f in funcs:
            _put(index, f)
        stats = index.stats()
        assert stats["entries"] == 2
        assert stats["inserts"] == 3
        assert stats["evictions"] == 1
        # The first insert was evicted; its near-duplicates go cold.
        assert index.lookup(Job(funcs[0], method="exact")) is None


class TestWarmRecord:
    def test_record_is_full_engine_record(self):
        index = DeltaIndex()
        _put(index)
        edited = toggle_points(FUNC, [0, 5])
        job = Job(edited, method="exact")
        record = warm_record_for(job, index)
        assert record is not None
        assert record["kind"] == "engine_record"
        assert record["rung"] == "exact"
        assert record["extras"]["delta"]["warm"] is True
        assert record["extras"]["delta"]["edit"] == 2
        assert record["integrity"]["verified"]
        form = form_from_dict(record["form"])
        assert verify_form(form, edited)
        cold = minimize_spp(edited)
        assert form == cold.form
        assert index.stats()["warm_hits"] == 1

    def test_miss_returns_none(self):
        index = DeltaIndex()
        job = Job(FUNC, method="exact")
        assert warm_record_for(job, index) is None


class TestSchedulerIntegration:
    def test_run_batch_serves_edit_warm(self):
        index = DeltaIndex()
        base_job = Job(FUNC, method="exact", label="base")
        edited = toggle_points(FUNC, [0, 5])
        edit_job = Job(edited, method="exact", label="edited")

        first = run_batch([base_job], workers=0, delta_index=index)
        assert first.ok
        assert len(index) == 1  # the inline rung captured a context

        second = run_batch([edit_job], workers=0, delta_index=index)
        assert second.ok
        record = second.outcomes[0].record
        assert record["extras"]["delta"]["warm"] is True
        assert index.stats()["warm_hits"] == 1
        cold = run_batch([edit_job], workers=0)
        assert record["form"] == cold.outcomes[0].record["form"]
