"""Tests for minimization-context snapshots and the toggle vocabulary."""

import pytest

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.delta import build_context, toggle_points
from repro.kernels.coverage import masks_and_costs
from repro.minimize.exact import minimize_spp

FUNC = BoolFunc(3, frozenset({0, 1, 3, 6}), frozenset({5}))


def _context(func=FUNC, **kwargs):
    result = minimize_spp(func)
    return build_context(func, result, **kwargs)


class TestBuildContext:
    def test_snapshot_matches_direct_mask_pass(self):
        ctx = _context()
        assert ctx is not None
        assert ctx.rows == sorted(FUNC.on_set)
        masks, costs = masks_and_costs(ctx.rows, ctx.candidates)
        assert ctx.masks == masks
        assert ctx.costs == costs

    def test_snapshot_records_solver_parameters(self):
        result = minimize_spp(FUNC, covering="exact")
        ctx = build_context(
            FUNC, result, covering="exact", max_pseudoproducts=50_000
        )
        assert ctx.covering == "exact"
        assert ctx.max_pseudoproducts == 50_000
        assert ctx.form == result.form
        assert ctx.cost == result.num_literals
        assert ctx.covering_optimal == result.covering_optimal

    def test_affine_fast_path_has_no_context(self):
        """{0,3,5,6} is an affine subspace: minimize_spp returns the
        single-pseudocube fast path with no generation, so there is no
        candidate stream to snapshot."""
        func = BoolFunc(3, frozenset({0, 3, 5, 6}))
        result = minimize_spp(func)
        assert result.generation is None
        assert build_context(func, result) is None

    def test_oversized_generation_refused(self):
        result = minimize_spp(FUNC)
        assert build_context(FUNC, result, max_candidates=1) is None

    def test_truncated_generation_refused(self):
        result = minimize_spp(FUNC, max_pseudoproducts=3, on_limit="stop")
        assert result.generation.truncated
        assert build_context(FUNC, result) is None

    def test_staleness_detected_on_trie_mutation(self):
        ctx = _context()
        assert not ctx.is_stale()
        extra = Pseudocube.from_point(3, 2)
        if extra not in ctx.trie:
            ctx.trie.insert(extra)
        assert ctx.is_stale()


class TestTogglePoints:
    def test_on_point_moves_to_dc(self):
        out = toggle_points(FUNC, [0])
        assert 0 not in out.on_set
        assert 0 in out.dc_set

    def test_dc_point_moves_to_on(self):
        out = toggle_points(FUNC, [5])
        assert 5 in out.on_set
        assert 5 not in out.dc_set

    def test_off_point_joins_on_set(self):
        out = toggle_points(FUNC, [7])
        assert 7 in out.on_set
        assert out.care_set != FUNC.care_set

    def test_care_preserving_round_trip(self):
        assert toggle_points(toggle_points(FUNC, [0, 5]), [0, 5]) == FUNC

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            toggle_points(FUNC, [8])
        with pytest.raises(ValueError):
            toggle_points(FUNC, [-1])
