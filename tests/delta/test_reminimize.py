"""Tests for warm re-minimization: patch parity, equivalence, fallbacks."""

import pytest

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.delta import (
    DeltaIneligible,
    build_context,
    eligibility,
    reminimize,
    toggle_points,
    warm_minimize,
)
from repro.delta.reminimize import _patched_rows_and_masks
from repro.kernels.coverage import masks_and_costs
from repro.minimize.exact import minimize_spp
from repro.verify import verify_form

FUNC = BoolFunc(4, frozenset({0, 1, 3, 6, 9, 12, 14}), frozenset({5, 10}))


def _context(func=FUNC, covering="greedy"):
    result = minimize_spp(func, covering=covering)
    ctx = build_context(func, result, covering=covering)
    assert ctx is not None
    return ctx


class TestPatchParity:
    """The bit-surgered masks must equal a from-scratch mask pass."""

    @pytest.mark.parametrize(
        "toggles",
        [
            [0],  # one on-point retired
            [5],  # one dc point promoted (row appended)
            [0, 5],  # one of each
            [0, 1, 5, 10],  # several of each
            [],  # empty diff
        ],
    )
    def test_patched_masks_match_cold_pass(self, toggles):
        ctx = _context()
        edited = toggle_points(FUNC, toggles)
        rows, masks = _patched_rows_and_masks(ctx, edited, None)
        want_masks, _ = masks_and_costs(sorted(edited.on_set), ctx.candidates)
        assert rows == sorted(edited.on_set)
        assert masks == want_masks


class TestWarmEqualsCold:
    @pytest.mark.parametrize("covering", ["greedy", "exact"])
    @pytest.mark.parametrize("toggles", [[0], [5], [0, 5], [1, 3, 5]])
    def test_warm_form_is_bit_identical_to_cold(self, covering, toggles):
        ctx = _context(covering=covering)
        edited = toggle_points(FUNC, toggles)
        warm = warm_minimize(ctx, edited)
        cold = minimize_spp(edited, covering=covering)
        assert warm.form == cold.form
        assert warm.covering_optimal == cold.covering_optimal
        assert verify_form(warm.form, edited)

    def test_empty_diff_returns_base_form(self):
        ctx = _context()
        warm = warm_minimize(ctx, FUNC)
        assert warm.form == ctx.form

    def test_warm_result_charges_no_generation_time(self):
        ctx = _context()
        warm = warm_minimize(ctx, toggle_points(FUNC, [0]))
        assert warm.generation is None
        assert warm.seconds_generation == 0.0


class TestEligibility:
    def test_dimension_changed(self):
        ctx = _context()
        other = BoolFunc(3, frozenset({0, 1}))
        assert eligibility(ctx, other) == "dimension-changed"

    def test_care_set_changed(self):
        ctx = _context()
        edited = toggle_points(FUNC, [7])  # off→on grows the care set
        assert eligibility(ctx, edited) == "care-set-changed"

    def test_edit_at_threshold_is_warm(self):
        ctx = _context()
        edited = toggle_points(FUNC, [0, 5])  # symmetric diff of 2
        assert eligibility(ctx, edited, max_edit=2) is None

    def test_edit_past_threshold_goes_cold(self):
        ctx = _context()
        edited = toggle_points(FUNC, [0, 1, 5])  # symmetric diff of 3
        assert eligibility(ctx, edited, max_edit=2) == "edit-too-large"

    def test_context_stale(self):
        ctx = _context()
        extra = Pseudocube.from_point(4, 2)
        if extra not in ctx.trie:
            ctx.trie.insert(extra)
        assert eligibility(ctx, toggle_points(FUNC, [0])) == "context-stale"

    def test_warm_minimize_raises_on_ineligible(self):
        ctx = _context()
        with pytest.raises(DeltaIneligible) as exc:
            warm_minimize(ctx, toggle_points(FUNC, [7]))
        assert exc.value.reason == "care-set-changed"


class TestReminimize:
    def test_warm_path_reported(self):
        ctx = _context()
        out = reminimize(ctx, toggle_points(FUNC, [0, 5]))
        assert out.warm
        assert out.reason == "warm"
        assert out.edit_size == 2

    def test_cold_fallback_still_verifies(self):
        ctx = _context()
        edited = toggle_points(FUNC, [7])
        out = reminimize(ctx, edited)
        assert not out.warm
        assert out.reason == "care-set-changed"
        assert verify_form(out.result.form, edited)
        cold = minimize_spp(edited, covering=ctx.covering)
        assert out.result.form == cold.form

    def test_empty_onset_edit(self):
        """Toggling every on-point to dc leaves an empty on-set; the
        warm path must reproduce minimize_spp's trivial empty form."""
        ctx = _context(BoolFunc(3, frozenset({1, 2}), frozenset({4})))
        edited = toggle_points(ctx.func, [1, 2])
        assert not edited.on_set
        warm = warm_minimize(ctx, edited)
        cold = minimize_spp(edited)
        assert warm.form == cold.form
        assert warm.form.num_literals == 0
