"""Unit tests for repro.budget: ticks, deadlines, ceilings, tokens."""

from __future__ import annotations

import threading
import time

import pytest

from repro.budget import Budget, CancelToken, current_rss_mb
from repro.errors import BudgetExceeded, Cancelled


class TestCancelToken:
    def test_starts_clear(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no raise

    def test_cancel_sets_and_raises(self):
        token = CancelToken()
        token.cancel("client went away")
        assert token.cancelled
        with pytest.raises(Cancelled, match="client went away"):
            token.raise_if_cancelled()

    def test_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"


class TestBudgetDeadline:
    def test_unbounded_never_raises(self):
        budget = Budget()
        for _ in range(10):
            budget.check()
            budget.tick(10_000)

    def test_deadline_raises_with_reason(self):
        budget = Budget(seconds=0.01)
        time.sleep(0.02)
        with pytest.raises(BudgetExceeded) as info:
            budget.check()
        assert info.value.reason == "deadline"
        assert not isinstance(info.value, Cancelled)

    def test_remaining_and_expired(self):
        budget = Budget(seconds=60)
        assert not budget.expired()
        assert 0 < budget.remaining() <= 60
        assert Budget().remaining() is None

    def test_tick_amortizes_checks(self):
        # An already-blown deadline only surfaces when the tick counter
        # crosses the tick_every boundary — the hot path is two integer
        # operations, not a clock read.
        budget = Budget(seconds=0.001, tick_every=100)
        time.sleep(0.005)
        for _ in range(99):
            budget.tick()
        with pytest.raises(BudgetExceeded):
            budget.tick()

    def test_bulk_tick_counts_work(self):
        budget = Budget()
        budget.tick(500)
        budget.tick(11)
        assert budget.ticks == 511


class TestBudgetCeilings:
    def test_tick_cap(self):
        budget = Budget(max_ticks=100, tick_every=10)
        with pytest.raises(BudgetExceeded) as info:
            for _ in range(200):
                budget.tick()
        assert info.value.reason == "ticks"

    def test_memory_ceiling_uses_rss(self):
        rss = current_rss_mb()
        if rss is None:
            pytest.skip("RSS not measurable on this platform")
        with pytest.raises(BudgetExceeded) as info:
            Budget(memory_mb=0.001).check()
        assert info.value.reason == "memory"
        Budget(memory_mb=rss + 10_000).check()  # plenty of headroom

    def test_tick_every_validation(self):
        with pytest.raises(ValueError):
            Budget(tick_every=0)


class TestBudgetCancellation:
    def test_cancel_raises_cancelled(self):
        budget = Budget()
        budget.cancel("shutting down")
        assert budget.cancelled
        with pytest.raises(Cancelled, match="shutting down"):
            budget.check()

    def test_cancelled_is_budget_exceeded(self):
        # One except site catches both; exit codes stay distinct.
        assert issubclass(Cancelled, BudgetExceeded)
        assert Cancelled().exit_code != BudgetExceeded("x").exit_code

    def test_cancel_from_another_thread(self):
        budget = Budget(tick_every=1)
        stopped = threading.Event()

        def worker():
            try:
                while True:
                    budget.tick()
            except Cancelled:
                stopped.set()

        thread = threading.Thread(target=worker)
        thread.start()
        budget.cancel()
        assert stopped.wait(timeout=2.0)
        thread.join(timeout=2.0)


class TestBudgetChild:
    def test_child_shares_token(self):
        parent = Budget()
        child = parent.child(seconds=10)
        parent.cancel()
        with pytest.raises(Cancelled):
            child.check()

    def test_child_takes_min_deadline(self):
        parent = Budget(seconds=0.5)
        child = parent.child(seconds=100)
        # The attempt allowance cannot outlive the request budget.
        assert child.remaining() <= 0.5
        tighter = parent.child(seconds=0.01)
        assert tighter.remaining() <= 0.011

    def test_child_of_unbounded_parent(self):
        child = Budget().child(seconds=5)
        assert 0 < child.remaining() <= 5

    def test_child_inherits_then_overrides_ceilings(self):
        parent = Budget(memory_mb=256, max_ticks=1000)
        assert parent.child().memory_mb == 256
        assert parent.child().max_ticks == 1000
        assert parent.child(memory_mb=64).memory_mb == 64
        assert parent.child(max_ticks=10).max_ticks == 10
