"""Per-rung circuit breaker: stop re-attempting rungs that keep timing out.

The degradation ladder already handles a *single* slow job — the rung
times out, the next rung answers.  Under sustained load the same waste
repeats per request: every exact-method request on a hard function
burns its full per-attempt timeout on the exact rung before degrading.
The breaker remembers that: after ``threshold`` consecutive timeouts of
one rung on *similar-sized* jobs, that (rung, size-bucket) pair opens
and the ladder skips straight to the next rung (via the scheduler's
``rung_gate``).  After ``cooldown`` seconds the breaker goes half-open
and lets one probe attempt through — success closes it, another timeout
re-opens it for a fresh cooldown.

Size buckets are ``floor(log2(|on-set|))``: a rung that drowns on a
4096-point function says nothing about 16-point ones.  The final ladder
rung is never gated by the scheduler regardless of breaker state, so a
fully-open breaker still yields answers (from the cheap floor).
"""

from __future__ import annotations

import threading
import time

__all__ = ["RungBreaker"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class _State:
    __slots__ = ("status", "failures", "opened_at")

    def __init__(self) -> None:
        self.status = _CLOSED
        self.failures = 0
        self.opened_at = 0.0


def size_bucket(on_set_size: int) -> int:
    """Job-size bucket: floor(log2(on-set size)), 0 for empty."""
    return max(on_set_size, 1).bit_length() - 1


class RungBreaker:
    """Thread-safe breaker map keyed by (rung name, job-size bucket)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._states: dict[tuple[str, int], _State] = {}
        self.skips = 0  # attempts avoided while open
        self.quarantined: dict[str, int] = {}  # integrity mismatches by rung

    def _state(self, rung: str, size: int) -> _State:
        return self._states.setdefault((rung, size_bucket(size)), _State())

    def allow(self, rung: str, size: int) -> bool:
        """May this rung be attempted on a job of this size right now?"""
        with self._lock:
            state = self._state(rung, size)
            if state.status == _CLOSED:
                return True
            if state.status == _OPEN:
                if self._clock() - state.opened_at >= self.cooldown:
                    state.status = _HALF_OPEN  # admit exactly one probe
                    return True
                self.skips += 1
                return False
            # Half-open with a probe already in flight: stay shut until
            # the probe reports back.
            self.skips += 1
            return False

    def record_timeout(self, rung: str, size: int) -> None:
        with self._lock:
            state = self._state(rung, size)
            state.failures += 1
            if state.status == _HALF_OPEN or state.failures >= self.threshold:
                state.status = _OPEN
                state.opened_at = self._clock()

    def record_mismatch(self, rung: str, size: int) -> None:
        """An integrity failure (shadow verification, cache audit) on a
        result this rung produced.

        Counts into the per-rung quarantine tally and feeds the same
        trip logic as a timeout: a rung that keeps producing wrong
        covers on a size class is worse than a slow one, so
        ``threshold`` consecutive mismatches open its breaker and the
        ladder routes around it.
        """
        with self._lock:
            self.quarantined[rung] = self.quarantined.get(rung, 0) + 1
            state = self._state(rung, size)
            state.failures += 1
            if state.status == _HALF_OPEN or state.failures >= self.threshold:
                state.status = _OPEN
                state.opened_at = self._clock()

    def record_success(self, rung: str, size: int) -> None:
        with self._lock:
            state = self._state(rung, size)
            state.status = _CLOSED
            state.failures = 0

    def snapshot(self) -> dict[str, dict]:
        """Open/half-open entries for ``/stats`` (closed ones elided)."""
        with self._lock:
            return {
                f"{rung}/2^{bucket}": {
                    "status": state.status,
                    "failures": state.failures,
                }
                for (rung, bucket), state in self._states.items()
                if state.status != _CLOSED
            }
