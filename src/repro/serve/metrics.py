"""Latency histograms and Prometheus text exposition.

Two small, dependency-free pieces shared by the single-process service
(:mod:`repro.serve.server`) and the cluster coordinator
(:mod:`repro.cluster.coordinator`):

* :class:`LatencyHistogram` — a fixed-bucket (log-spaced) histogram of
  seconds.  Fixed buckets make ``observe`` O(log #buckets) and
  lock-cheap, quantiles are estimated by linear interpolation inside
  the owning bucket (the standard Prometheus ``histogram_quantile``
  estimate), and the bucket counts are directly exposable as a
  Prometheus ``histogram`` metric — so ``/stats`` percentiles and
  ``/metrics`` buckets are two views of the same counters.
* :func:`render_metrics` — renders a list of :class:`Metric` samples as
  `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  version 0.0.4 (``# HELP`` / ``# TYPE`` / samples with labels).

Neither imports anything outside the stdlib.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "Metric",
    "render_metrics",
]

# Upper bounds (seconds) of the fixed buckets: ~1ms .. 60s, roughly
# ×2.5 per step.  Chosen for a minimization service whose requests span
# sub-millisecond cache hits to multi-second exact solves; the +Inf
# bucket is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """Thread-safe fixed-bucket histogram of durations in seconds."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        index = bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds

    # -- reading -------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def counts(self) -> list[int]:
        """Per-bucket counts (last entry is the +Inf overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> list[int]:
        """Cumulative ``le`` counts, one per bound plus +Inf."""
        total = 0
        out = []
        for c in self.counts():
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0..1); None when empty.

        Linear interpolation inside the owning bucket, like Prometheus'
        ``histogram_quantile``.  Values in the +Inf bucket clamp to the
        highest finite bound (we cannot know how far past it they went).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        counts = self.counts()
        total = sum(counts)
        if total == 0:
            return None
        rank = q * total
        seen = 0
        for index, bucket_count in enumerate(counts):
            if seen + bucket_count >= rank and bucket_count > 0:
                if index >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                within = (rank - seen) / bucket_count
                return lower + (upper - lower) * min(max(within, 0.0), 1.0)
            seen += bucket_count
        return self.bounds[-1]  # pragma: no cover — rank <= total always

    def snapshot(self) -> dict[str, Any]:
        """The ``/stats`` view: count, sum, and headline percentiles."""
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum_seconds": total,
            "mean_seconds": (total / count) if count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


@dataclass
class Metric:
    """One Prometheus metric family and its samples.

    ``samples`` is a list of ``(suffix, labels, value)`` triples; the
    suffix is empty for plain counters/gauges and ``_bucket`` /
    ``_sum`` / ``_count`` for histogram series, which the format keeps
    under the *one* family header (``# TYPE name histogram``).
    """

    name: str
    help: str
    type: str = "gauge"  # counter | gauge | histogram
    samples: list[tuple[str, dict[str, str], float]] = field(default_factory=list)

    def add(self, value: float, **labels: str) -> "Metric":
        self.samples.append(("", dict(labels), float(value)))
        return self

    @classmethod
    def from_histogram(
        cls, name: str, help: str, hist: LatencyHistogram, **labels: str
    ) -> "Metric":
        """A ``histogram``-typed family with bucket/sum/count series."""
        metric = cls(name, help, "histogram")
        cumulative = hist.cumulative()
        for bound, count in zip(hist.bounds, cumulative):
            metric.samples.append(
                ("_bucket", dict(labels, le=_format_value(bound)), float(count))
            )
        metric.samples.append(
            ("_bucket", dict(labels, le="+Inf"),
             float(cumulative[-1] if cumulative else 0))
        )
        metric.samples.append(("_sum", dict(labels), hist.sum))
        metric.samples.append(("_count", dict(labels), float(hist.count)))
        return metric


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without the trailing .0."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def render_metrics(metrics: Iterable[Metric]) -> str:
    """Render metric families as Prometheus text exposition format.

    Families with the same name are merged under a single HELP/TYPE
    header (as the format requires), preserving first-seen order.
    """
    order: list[str] = []
    by_name: dict[str, list[Metric]] = {}
    for metric in metrics:
        if metric.name not in by_name:
            order.append(metric.name)
            by_name[metric.name] = []
        by_name[metric.name].append(metric)
    lines: list[str] = []
    for name in order:
        family = by_name[name]
        lines.append(f"# HELP {name} {family[0].help}")
        lines.append(f"# TYPE {name} {family[0].type}")
        for metric in family:
            for suffix, labels, value in metric.samples:
                series = f"{name}{suffix}"
                if labels:
                    rendered = ",".join(
                        f'{k}="{_escape_label(str(v))}"'
                        for k, v in sorted(labels.items())
                    )
                    lines.append(f"{series}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{series} {_format_value(value)}")
    return "\n".join(lines) + "\n"
