"""End-to-end deadline propagation over the ``X-Repro-Deadline`` header.

A client that can only use a result for the next N seconds says so once,
and every hop honors it: the header carries the **remaining seconds**
(a decimal float, not a wall-clock timestamp — no clock synchronization
needed between client, coordinator and workers).  The coordinator pins
the deadline to its monotonic clock on receipt, re-derives the remaining
time before every proxy attempt (so each hop *and each retry/hedge*
forwards a smaller value), and a request whose deadline has already
passed is **shed** — HTTP 503 with ``Retry-After`` — instead of
computed, at whichever hop first notices.  Inside a worker the remaining
time also caps the request's :class:`repro.budget.Budget`, so a
computation can never outlive the client's interest in its answer.

This module is deliberately tiny and stdlib-only so both the serve layer
and the cluster layer can import it without cycles; the cluster-facing
surface re-exports it from :mod:`repro.cluster.resilience`.
"""

from __future__ import annotations

from repro.errors import EXIT_BUDGET, ReproError

__all__ = ["DEADLINE_HEADER", "DeadlineExpired", "parse_deadline", "format_deadline"]

DEADLINE_HEADER = "X-Repro-Deadline"


class DeadlineExpired(ReproError):
    """The request's end-to-end deadline passed before work started.

    Mapped to HTTP 503 + ``Retry-After`` by the serving layers: the
    request was *shed*, not failed — the client already stopped caring,
    so the only wrong answer is to burn a worker slot computing one.
    """

    exit_code = EXIT_BUDGET
    code = "deadline-exceeded"

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


def parse_deadline(value: str | None) -> float | None:
    """Remaining seconds from a raw header value, or None.

    Malformed values are treated as absent rather than rejected — a
    deadline is advisory resilience metadata, and refusing the request
    over a bad header would invert its purpose.
    """
    if value is None:
        return None
    try:
        remaining = float(value)
    except ValueError:
        return None
    if remaining != remaining or remaining in (float("inf"), float("-inf")):
        return None
    return remaining


def format_deadline(remaining: float) -> str:
    """Header value for ``remaining`` seconds (floored at zero)."""
    return f"{max(remaining, 0.0):.6f}"
