"""repro.serve — an overload-safe HTTP/JSON minimization service.

Stdlib-only serving layer over :mod:`repro.engine`, designed around the
cooperative budgets of :mod:`repro.budget`:

* :mod:`repro.serve.server` — the threaded HTTP front-end
  (``POST /minimize``, ``/healthz``, ``/readyz``, ``/stats``) and the
  :class:`MinimizeService` lifecycle (start, graceful SIGTERM drain);
* :mod:`repro.serve.admission` — bounded concurrency + waiting room,
  shedding the excess with 429 + ``Retry-After``;
* :mod:`repro.serve.breaker` — a per-(rung, job-size) circuit breaker
  that stops re-attempting rungs that keep timing out;
* :mod:`repro.serve.watchdog` — RSS sampling with a soft ceiling
  (shrink the result cache) and a hard one (shed all new work);
* :mod:`repro.serve.shadow` — sampled post-response re-verification
  of served results (quarantine + per-rung breaker feed on mismatch).

Start one with ``spp-minimize serve`` or programmatically::

    from repro.serve import MinimizeService, ServeConfig

    service = MinimizeService(ServeConfig(port=0))  # 0 = ephemeral
    host, port = service.start()
    ...
    service.drain()
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import RungBreaker
from repro.serve.server import VERIFIED_HEADER, MinimizeService, ServeConfig
from repro.serve.shadow import ShadowVerifier
from repro.serve.watchdog import MemoryWatchdog

__all__ = [
    "AdmissionQueue",
    "MemoryWatchdog",
    "MinimizeService",
    "RungBreaker",
    "ServeConfig",
    "ShadowVerifier",
    "VERIFIED_HEADER",
]
