"""Memory watchdog: sample RSS, shrink the cache, then shed load.

The service's two big memory consumers are the in-memory result cache
(bounded in entries, not bytes — record size varies wildly with
function width) and in-flight minimizations (bounded per-request via
:class:`repro.budget.Budget` ceilings, but N requests add up).  The
watchdog closes the gap with a two-stage response keyed on process RSS:

* **soft ceiling** — evict the older half of the result-cache LRU
  (:meth:`repro.engine.cache.ResultCache.shrink`; disk-tier records
  survive, so this costs re-reads, not recomputes);
* **hard ceiling** — flip the admission queue's ``shed_all`` switch:
  new requests are refused with ``Retry-After`` until RSS recedes below
  the hard ceiling.  In-flight requests are never killed — their own
  budget ceilings bound them.

Sampling uses :func:`repro.budget.current_rss_mb`; where RSS cannot be
read (no ``/proc``, no ``resource``) the watchdog is inert.
"""

from __future__ import annotations

import threading

from repro.budget import current_rss_mb

__all__ = ["MemoryWatchdog"]


class MemoryWatchdog:
    """Daemon sampler enforcing soft (shrink) and hard (shed) ceilings."""

    def __init__(
        self,
        *,
        soft_mb: float | None = None,
        hard_mb: float | None = None,
        interval: float = 0.5,
        on_soft=None,
        on_hard=None,
        on_recover=None,
        sample=current_rss_mb,
    ) -> None:
        if soft_mb is not None and hard_mb is not None and soft_mb > hard_mb:
            raise ValueError("soft ceiling above hard ceiling")
        self.soft_mb = soft_mb
        self.hard_mb = hard_mb
        self.interval = interval
        self.on_soft = on_soft
        self.on_hard = on_hard
        self.on_recover = on_recover
        self._sample = sample
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.last_rss_mb: float | None = None
        self.soft_trips = 0
        self.hard_trips = 0
        self._shedding = False

    @property
    def shedding(self) -> bool:
        return self._shedding

    @property
    def enabled(self) -> bool:
        return self.soft_mb is not None or self.hard_mb is not None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    # -- sampling ------------------------------------------------------

    def poll_once(self) -> None:
        """One sampling step (public so tests can drive it directly)."""
        rss = self._sample()
        self.last_rss_mb = rss
        if rss is None:
            return
        if self.hard_mb is not None:
            if rss > self.hard_mb:
                if not self._shedding:
                    self._shedding = True
                    self.hard_trips += 1
                    if self.on_hard is not None:
                        self.on_hard(rss)
                return  # already shedding; soft relief is moot
            if self._shedding:
                self._shedding = False
                if self.on_recover is not None:
                    self.on_recover(rss)
        if self.soft_mb is not None and rss > self.soft_mb:
            self.soft_trips += 1
            if self.on_soft is not None:
                self.on_soft(rss)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()

    def snapshot(self) -> dict:
        return {
            "rss_mb": self.last_rss_mb,
            "soft_mb": self.soft_mb,
            "hard_mb": self.hard_mb,
            "soft_trips": self.soft_trips,
            "hard_trips": self.hard_trips,
            "shedding": self._shedding,
        }
