"""Bounded admission: worker slots, a finite waiting room, load shedding.

A long-running service dies by accepting work it cannot finish.  The
admission queue gives ``repro serve`` a hard intake shape: at most
``workers`` requests minimize concurrently, at most ``capacity`` more
may wait for a slot, and everything beyond that is **shed** immediately
with a structured :class:`repro.errors.Overloaded` (HTTP 429 +
``Retry-After``) instead of queueing unboundedly.  Shedding is the
correct overload behavior here because minimization requests are
retryable and idempotent (content-hashed jobs + result cache: a retry
of completed work is a cache hit).

Two service-wide switches piggyback on admission:

* ``close()`` — drain mode: every new request is refused so in-flight
  work can finish (SIGTERM handling).
* ``shed_all`` — the memory watchdog's hard-ceiling state: refuse new
  work until RSS recedes, without touching in-flight requests.
"""

from __future__ import annotations

import contextlib
import threading

from repro.errors import Overloaded

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Counting-semaphore admission with a bounded waiting room."""

    def __init__(
        self,
        workers: int,
        capacity: int,
        *,
        wait_timeout: float | None = 30.0,
        retry_after: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.workers = workers
        self.capacity = capacity
        self.wait_timeout = wait_timeout
        self.retry_after = retry_after
        self.shed_all = False  # set by the memory watchdog's hard ceiling
        self._slots = threading.Semaphore(workers)
        self._lock = threading.Lock()
        self._active = 0
        self._waiting = 0
        self._closed = False
        self._admitted = 0
        self._shed = 0

    # -- switches ------------------------------------------------------

    def close(self) -> None:
        """Stop admitting (drain mode); in-flight requests are untouched."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def accepting(self) -> bool:
        return not self._closed and not self.shed_all

    # -- admission -----------------------------------------------------

    @contextlib.contextmanager
    def admit(self):
        """Hold a worker slot for the ``with`` body, or shed.

        Raises :class:`Overloaded` when the service is draining, the
        watchdog is shedding, the waiting room is full, or a slot does
        not free up within ``wait_timeout``.
        """
        with self._lock:
            if self._closed:
                self._shed += 1
                raise Overloaded(
                    "service is draining", retry_after=self.retry_after
                )
            if self.shed_all:
                self._shed += 1
                raise Overloaded(
                    "service is shedding load (memory pressure)",
                    retry_after=self.retry_after,
                )
            # A free slot admits immediately; only slot-less requests
            # occupy the waiting room (capacity=0 = no waiting at all).
            acquired = self._slots.acquire(blocking=False)
            if acquired:
                self._active += 1
                self._admitted += 1
            else:
                if self._waiting >= self.capacity:
                    self._shed += 1
                    raise Overloaded(
                        f"admission queue full ({self.capacity} waiting)",
                        retry_after=self.retry_after,
                    )
                self._waiting += 1
        if not acquired:
            acquired = self._slots.acquire(timeout=self.wait_timeout)
            with self._lock:
                self._waiting -= 1
                if not acquired:
                    self._shed += 1
                else:
                    self._active += 1
                    self._admitted += 1
            if not acquired:
                raise Overloaded(
                    f"no worker slot freed within {self.wait_timeout}s",
                    retry_after=self.retry_after,
                )
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1
            self._slots.release()

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict[str, int | float | bool]:
        with self._lock:
            return {
                "workers": self.workers,
                "capacity": self.capacity,
                "retry_after": self.retry_after,
                "active": self._active,
                "waiting": self._waiting,
                "admitted": self._admitted,
                "shed": self._shed,
                "closed": self._closed,
                "shed_all": self.shed_all,
            }
