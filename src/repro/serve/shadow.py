"""Sampled shadow verification: re-check served responses off the hot path.

The serving tier answers from three sources — freshly computed records
(verified synchronously by the ladder), disk-cache hits (sampled by
verify-on-read auditing), and in-memory LRU hits (not re-checked at
all).  Shadow verification closes the remaining gap without touching
request latency: a sample of successful responses is re-verified on a
background thread *after* the response went out.

Budget awareness: each submission carries the request's remaining
end-to-end deadline as its allowance (a generous default when the
client sent none).  A request whose deadline is already spent is not
shadow-verified at all, and queued work whose allowance lapses before
the worker reaches it is dropped — under pressure the shadow lane sheds
itself, never the serving lane.  The queue is bounded for the same
reason: a full queue drops the sample instead of blocking the request
thread.

A mismatch cannot un-send the wrong response.  What it can do:

* purge the record from both cache tiers
  (:meth:`repro.engine.cache.ResultCache.quarantine_key`), so the next
  request recomputes;
* feed the per-rung quarantine counter on the
  :class:`~repro.serve.breaker.RungBreaker` — a rung that keeps
  producing wrong covers trips its breaker exactly like one that keeps
  timing out.

Counters are exposed through :meth:`snapshot` for ``/stats`` and
``/metrics``.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.serialize import form_from_dict
from repro.verify import verify_form

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.cache import ResultCache
    from repro.serve.breaker import RungBreaker

__all__ = ["ShadowVerifier"]

# Allowance granted to a sampled response whose client sent no deadline:
# long enough to verify any record the engine can produce, short enough
# that a backlog drains by shedding.
_DEFAULT_ALLOWANCE = 5.0


class ShadowVerifier:
    """Background re-verification of a sample of served results."""

    def __init__(
        self,
        *,
        rate: int = 8,
        queue_size: int = 64,
        breaker: "RungBreaker | None" = None,
        cache: "ResultCache | None" = None,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if queue_size < 1:
            raise ValueError("queue_size must be positive")
        self.rate = rate
        self.breaker = breaker
        self.cache = cache
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._tick = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._busy = False
        self.scheduled = 0      # responses picked by the sampler
        self.verified = 0       # records re-verified clean
        self.mismatches = 0     # records that failed re-verification
        self.dropped = 0        # samples lost to a full queue
        self.expired = 0        # samples shed because their allowance lapsed
        self.verify_seconds = 0.0

    # -- submission (request thread) -----------------------------------

    def consider(self, outcomes, remaining: float | None) -> bool:
        """Maybe enqueue this response's records for shadow verification.

        Called on the request thread after the response body is built;
        sampling is a round-robin over successful responses (every
        ``rate``-th; 0 disables).  ``remaining`` is the request's
        remaining end-to-end deadline — non-positive remaining skips the
        sample entirely.  Returns True iff the response was enqueued.
        """
        if self.rate == 0:
            return False
        with self._lock:
            self._tick += 1
            sampled = self._tick % self.rate == 0
        if not sampled:
            return False
        if remaining is not None and remaining <= 0:
            with self._lock:
                self.expired += 1
            return False
        items = []
        for outcome in outcomes:
            record = outcome.record
            if record is None or not isinstance(record.get("form"), dict):
                continue
            items.append(
                (
                    outcome.job.func,
                    outcome.job.content_hash,
                    record.get("rung", ""),
                    record["form"],
                )
            )
        if not items:
            return False
        allowance = _DEFAULT_ALLOWANCE if remaining is None else remaining
        with self._lock:
            self.scheduled += 1
        try:
            self._queue.put_nowait((time.monotonic(), allowance, items))
        except queue.Full:
            with self._lock:
                self.scheduled -= 1
                self.dropped += 1
            return False
        self._ensure_thread()
        return True

    # -- worker (shadow thread) ----------------------------------------

    def _ensure_thread(self) -> None:
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            if self._stopping:
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-shadow-verify", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while True:
            try:
                submitted, allowance, items = self._queue.get(timeout=0.5)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            self._busy = True
            try:
                if time.monotonic() - submitted > allowance:
                    with self._lock:
                        self.expired += 1
                    continue
                self._verify_items(items)
            finally:
                self._busy = False

    def _verify_items(self, items) -> None:
        t0 = time.perf_counter()
        for func, key, rung, form_dict in items:
            try:
                form = form_from_dict(form_dict)
                report = verify_form(form, func)
                ok = bool(report)
            except (KeyError, TypeError, ValueError):
                ok = False  # undecodable form is as wrong as a bad cover
            with self._lock:
                if ok:
                    self.verified += 1
                else:
                    self.mismatches += 1
            if not ok:
                if self.cache is not None:
                    self.cache.quarantine_key(key)
                if self.breaker is not None:
                    self.breaker.record_mismatch(rung, len(func.on_set))
        with self._lock:
            self.verify_seconds += time.perf_counter() - t0

    # -- lifecycle / introspection -------------------------------------

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait until queued work is fully processed (tests); True on success."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.empty() and not self._busy:
                return True
            time.sleep(0.01)
        return False

    def stop(self, timeout: float = 2.0) -> None:
        self._stopping = True
        with self._lock:
            thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "rate": self.rate,
                "scheduled": self.scheduled,
                "verified": self.verified,
                "mismatches": self.mismatches,
                "dropped": self.dropped,
                "expired": self.expired,
                "verify_seconds": round(self.verify_seconds, 6),
            }
