"""The ``repro serve`` HTTP/JSON service: minimization as a long-running
process.

Stdlib-only (``http.server``) threaded front-end over the batch engine.
Each request thread runs the engine **inline** (``workers=0``) under a
per-request :class:`repro.budget.Budget` — safe off the main thread
because deadlines are cooperative, not ``SIGALRM``-based.  The pieces:

* :class:`~repro.serve.admission.AdmissionQueue` bounds concurrency and
  sheds overload (429 + ``Retry-After``);
* :class:`~repro.serve.breaker.RungBreaker` skips ladder rungs that
  keep timing out on similar-sized jobs (via the scheduler's
  ``rung_gate``);
* :class:`~repro.serve.watchdog.MemoryWatchdog` shrinks the result
  cache at the soft RSS ceiling and flips admission to shed-all at the
  hard one;
* SIGTERM triggers a graceful drain: stop admitting, let in-flight
  requests finish within the grace window, cancel stragglers through
  their tokens, then shut the listener down.  The manifest journal is
  fsynced per completion, so everything finished before the drain is
  durable.

Endpoints::

    POST /minimize   {"pla": ...} | {"benchmark": ...}, options
    GET  /healthz    process liveness (200 while the process runs)
    GET  /readyz     admission state (503 when draining/shedding)
    GET  /stats      counters: admission, breaker, watchdog, cache,
                     latency percentiles (p50/p95/p99)
    GET  /metrics    the same counters as Prometheus text exposition
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import faults
from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.boolfunc.pla import parse_pla
from repro.budget import Budget
from repro.delta import DeltaIndex
from repro.engine.batch import SOURCE_CANCELLED, Manifest
from repro.engine.cache import ResultCache
from repro.engine.job import METHODS, Job
from repro.engine.ladder import Rung
from repro.engine.scheduler import run_batch
from repro.errors import (
    IntegrityError,
    Overloaded,
    ParseError,
    ReproError,
    UsageError,
)
from repro.integrity import (
    VERIFIED_FULL,
    VERIFIED_NONE,
    VERIFIED_SAMPLED,
    report_to_dict,
)
from repro.serialize import form_from_dict
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import RungBreaker
from repro.serve.deadline import DEADLINE_HEADER, DeadlineExpired, parse_deadline
from repro.serve.metrics import LatencyHistogram, Metric, render_metrics
from repro.serve.shadow import ShadowVerifier
from repro.serve.watchdog import MemoryWatchdog
from repro.verify import verify_form

__all__ = ["ServeConfig", "MinimizeService", "jobs_from_payload", "VERIFIED_HEADER"]

# Every /minimize response carries the weakest verification level among
# the records it returns: "full" (producer-verified or synchronously
# re-verified), "sampled" (audited on a cache read), or "none".
VERIFIED_HEADER = "X-Repro-Verified"

# Ladder rank of each method: a request's ``max_rung`` gates every rung
# ranked above it (the scheduler still never gates the final rung).
_RUNG_RANK = {"sp": 0, "heuristic": 1, "bounded": 2, "exact": 3}


def jobs_from_payload(payload: dict[str, Any], *, routing: bool = False) -> list[Job]:
    """Expand a ``POST /minimize`` body into engine jobs.

    Shared with the cluster coordinator, which needs the same expansion
    to compute the content-hash routing key without owning an engine.
    Raises :class:`UsageError` on malformed payloads.

    The near-duplicate request form puts the function spec under
    ``"base"`` and the edit under ``"delta"``::

        {"base": {"benchmark": "life6", "output": 0},
         "delta": {"toggles": [5, 9]}, ...options}

    Toggles move points on→dc, dc→on, or off→on (see
    :func:`repro.delta.toggle_points`); care-set-preserving edits are
    the warm-path sweet spot.  With ``routing=True`` the *base* jobs
    are returned instead of the toggled ones — the coordinator hashes
    those, so near-duplicates land on the worker holding the base
    context.
    """
    if not isinstance(payload, dict):
        raise UsageError("request body must be a JSON object")
    delta = payload.get("delta")
    if delta is not None:
        base = payload.get("base")
        if not isinstance(base, dict):
            raise UsageError('"delta" requires a "base" object with the function spec')
        if not isinstance(delta, dict):
            raise UsageError('"delta" must be a JSON object')
        merged = {k: v for k, v in payload.items() if k not in ("base", "delta")}
        merged.update(base)
        jobs = jobs_from_payload(merged)
        if routing:
            return jobs
        toggles = delta.get("toggles", [])
        if not isinstance(toggles, list) or not all(
            isinstance(t, int) and not isinstance(t, bool) for t in toggles
        ):
            raise UsageError('"delta.toggles" must be a list of integer points')
        from repro.delta.context import toggle_points

        out = []
        for job in jobs:
            try:
                func = toggle_points(job.func, toggles)
            except ValueError as exc:
                raise UsageError(str(exc)) from None
            out.append(replace(job, func=func, label=f"{job.label}+d{len(toggles)}"))
        return out
    method = payload.get("method", "exact")
    if method not in METHODS:
        raise UsageError(
            f"unknown method {method!r} (one of {', '.join(METHODS)})"
        )
    if "pla" in payload:
        func = parse_pla(str(payload["pla"]), name="request")
        name = str(payload.get("label", "request"))
    elif "benchmark" in payload:
        bench = str(payload["benchmark"])
        if bench not in BENCHMARKS:
            raise UsageError(f"unknown benchmark {bench!r}")
        func = get_benchmark(bench)
        name = bench
    else:
        raise UsageError('request needs "pla" text or a "benchmark" name')
    outputs = range(func.num_outputs)
    if payload.get("output") is not None:
        o = int(payload["output"])
        if not 0 <= o < func.num_outputs:
            raise UsageError(f"output {o} out of range")
        outputs = [o]
    jobs = []
    for o in outputs:
        fo = func[o]
        if not fo.on_set:
            continue
        jobs.append(
            Job(
                fo,
                method=method,
                k=int(payload.get("k", 0)),
                bound=int(payload.get("bound", 2)),
                covering=str(payload.get("covering", "greedy")),
                backend=str(payload.get("backend", "index")),
                max_pseudoproducts=payload.get("max_pseudoproducts"),
                label=f"{name}[{o}]",
            )
        )
    if not jobs:
        raise UsageError("every requested output is constant 0")
    return jobs


@dataclass
class ServeConfig:
    """Knobs of one service instance (all exposed as CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8351
    threads: int = 4             # concurrent minimizations
    queue_capacity: int = 8      # waiting room beyond the active slots
    wait_timeout: float = 30.0   # max wait for a slot before shedding
    retry_after: float = 1.0     # advisory Retry-After on shed responses
    default_timeout: float = 5.0     # per-attempt rung deadline
    default_budget: float = 30.0     # overall budget when none requested
    max_budget: float = 300.0        # ceiling on client-requested budgets
    memory_soft_mb: float | None = None
    memory_hard_mb: float | None = None
    watchdog_interval: float = 0.5
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    cache_entries: int = 1024
    cache_dir: str | None = None
    max_disk_entries: int | None = None  # shared disk tier cap (cluster)
    audit_rate: int = 16     # verify-on-read: audit every Nth disk load
    shadow_rate: int = 8     # shadow-verify every Nth response (0 = off)
    delta_entries: int = 64  # near-duplicate context LRU (0 = warm path off)
    delta_max_edit: int = 8  # on-set edit distance ceiling for warm reuse
    manifest_dir: str | None = None
    drain_grace: float = 10.0
    parent_pid: int | None = None  # drain when this process disappears


class MinimizeService:
    """Engine + admission + breaker + watchdog behind an HTTP listener."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.cache = ResultCache(
            max_entries=cfg.cache_entries,
            cache_dir=cfg.cache_dir,
            max_disk_entries=cfg.max_disk_entries,
            audit_rate=cfg.audit_rate,
        )
        self.manifest = (
            Manifest(cfg.manifest_dir) if cfg.manifest_dir is not None else None
        )
        self.admission = AdmissionQueue(
            cfg.threads,
            cfg.queue_capacity,
            wait_timeout=cfg.wait_timeout,
            retry_after=cfg.retry_after,
        )
        self.breaker = RungBreaker(
            threshold=cfg.breaker_threshold, cooldown=cfg.breaker_cooldown
        )
        self.shadow = ShadowVerifier(
            rate=cfg.shadow_rate, breaker=self.breaker, cache=self.cache
        )
        self.delta = (
            DeltaIndex(cfg.delta_entries, max_edit=cfg.delta_max_edit)
            if cfg.delta_entries > 0
            else None
        )
        self.watchdog = MemoryWatchdog(
            soft_mb=cfg.memory_soft_mb,
            hard_mb=cfg.memory_hard_mb,
            interval=cfg.watchdog_interval,
            on_soft=self._on_memory_soft,
            on_hard=self._on_memory_hard,
            on_recover=self._on_memory_recover,
        )
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._inflight: dict[int, Budget] = {}
        self._inflight_lock = threading.Lock()
        self._next_request_id = 0
        self._draining = False
        self._drained = threading.Event()
        self._started_at = time.monotonic()
        self.latency = LatencyHistogram()
        self._stats_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "budget_exceeded": 0,
            "cancelled": 0,
            "deadline_shed": 0,
            "integrity": 0,
        }

    # -- watchdog callbacks --------------------------------------------

    def _on_memory_soft(self, rss: float) -> None:
        self.cache.shrink()

    def _on_memory_hard(self, rss: float) -> None:
        self.admission.shed_all = True

    def _on_memory_recover(self, rss: float) -> None:
        if not self._draining:
            self.admission.shed_all = False

    # -- request parsing -----------------------------------------------

    def _budget_from(
        self, payload: dict[str, Any], cap: float | None = None
    ) -> Budget:
        cfg = self.config
        seconds = float(payload.get("budget_seconds", cfg.default_budget))
        seconds = min(max(seconds, 0.001), cfg.max_budget)
        if cap is not None:
            # The propagated end-to-end deadline wins over whatever the
            # payload asked for: a result the client will never read is
            # pure waste.
            seconds = min(seconds, max(cap, 0.001))
        memory_mb = payload.get("memory_mb")
        return Budget(
            seconds=seconds,
            memory_mb=float(memory_mb) if memory_mb is not None else None,
        )

    def _shed_deadline(self, remaining: float) -> None:
        """Refuse a request whose end-to-end deadline already passed."""
        with self._stats_lock:
            self._counters["deadline_shed"] += 1
        raise DeadlineExpired(
            f"end-to-end deadline expired {-remaining:.3f}s ago; "
            "shedding instead of computing",
            retry_after=self.config.retry_after,
        )

    def _gate_from(self, payload: dict[str, Any]):
        max_rung = payload.get("max_rung")
        if max_rung is not None and max_rung not in _RUNG_RANK:
            raise UsageError(
                f"unknown max_rung {max_rung!r} "
                f"(one of {', '.join(_RUNG_RANK)})"
            )
        cap = _RUNG_RANK[max_rung] if max_rung is not None else None

        def gate(job: Job, rung: Rung) -> bool:
            if cap is not None and _RUNG_RANK.get(rung.method, 0) > cap:
                return False
            return self.breaker.allow(rung.name, len(job.func.on_set))

        return gate

    # -- the one real endpoint -----------------------------------------

    def handle_minimize(
        self, payload: dict[str, Any], deadline: float | None = None
    ) -> tuple[int, dict, dict[str, str]]:
        """Run one minimization request; returns (HTTP status, body, headers).

        Raises :class:`Overloaded` when shed — the HTTP layer maps it
        to 429 + ``Retry-After`` — and :class:`DeadlineExpired` (503 +
        ``Retry-After``) when the propagated end-to-end ``deadline``
        (seconds remaining, from ``X-Repro-Deadline``) has already
        passed: such a request is shed *before* it costs a worker slot
        any compute, and a live deadline caps the request budget so the
        computation cannot outlive the client's interest.

        The returned headers carry ``X-Repro-Verified``: the weakest
        certificate level among the returned records (``full`` /
        ``sampled`` / ``none``).  With ``"verify": true`` in the payload
        every record is synchronously re-verified before responding —
        a failure becomes a 500 whose body carries the counterexamples
        (:class:`~repro.errors.IntegrityError`).  Independently of all
        that, a sample of successful responses is handed to the shadow
        verifier after the response is built (off the hot path, bounded
        by the request's remaining deadline).
        """
        received = time.monotonic()
        with self._stats_lock:
            self._counters["requests"] += 1
        if deadline is not None and deadline <= 0:
            self._shed_deadline(deadline)
        jobs = jobs_from_payload(payload)
        timeout = float(payload.get("timeout", self.config.default_timeout))
        started = time.monotonic()
        with self.admission.admit():
            remaining = None
            if deadline is not None:
                # The wait for an admission slot ran on the clock too.
                remaining = deadline - (time.monotonic() - received)
                if remaining <= 0:
                    self._shed_deadline(remaining)
            # Chaos/loadtest hook: a ``slow`` rule here injects a
            # deterministic service time into every admitted request —
            # including cache hits, which never reach a ladder rung.
            faults.maybe_fire("serve.request")
            budget = self._budget_from(payload, cap=remaining)
            request_id = self._register(budget)
            try:
                result = run_batch(
                    jobs,
                    workers=0,
                    timeout=timeout,
                    cache=self.cache,
                    manifest=self.manifest,
                    budget=budget,
                    rung_gate=self._gate_from(payload),
                    delta_index=self.delta,
                )
            finally:
                self._unregister(request_id)
        self.latency.observe(time.monotonic() - started)
        self._feed_breaker(result)
        synced = bool(payload.get("verify"))
        if synced:
            self._sync_verify(result)
        status, body = self._respond(
            result, budget, bool(payload.get("include_form"))
        )
        headers = {VERIFIED_HEADER: self._verified_level(result, synced=synced)}
        if status == 200:
            remaining = None
            if deadline is not None:
                remaining = deadline - (time.monotonic() - received)
            self.shadow.consider(result, remaining)
        return status, body, headers

    def _sync_verify(self, result) -> None:
        """Client-requested (``"verify": true``) pre-response verification.

        Re-checks every returned record's form against its spec before
        the response goes out — the paranoid mode that turns a wrong
        cached or computed answer into a structured 500 (with
        counterexamples) instead of a response.  A failing record is
        purged from the cache and fed to the per-rung quarantine
        counter, same as a shadow-verification mismatch.
        """
        for outcome in result:
            record = outcome.record
            if record is None or not isinstance(record.get("form"), dict):
                continue
            label = outcome.job.display_label
            try:
                form = form_from_dict(record["form"])
            except (KeyError, TypeError, ValueError) as exc:
                self._record_integrity_failure(outcome, record)
                raise IntegrityError(
                    f"stored form for {label} is undecodable: {exc}",
                    detail={"label": label},
                ) from exc
            report = verify_form(form, outcome.job.func)
            if not report:
                self._record_integrity_failure(outcome, record)
                raise IntegrityError(
                    f"result for {label} failed verification: misses "
                    f"{len(report.uncovered_on_points)} on-points, covers "
                    f"{len(report.covered_off_points)} off-points",
                    report=report,
                    detail={
                        "label": label,
                        "counterexamples": report_to_dict(report),
                    },
                )

    def _record_integrity_failure(self, outcome, record) -> None:
        with self._stats_lock:
            self._counters["integrity"] += 1
        self.cache.quarantine_key(outcome.job.content_hash)
        self.breaker.record_mismatch(
            record.get("rung", ""), len(outcome.job.func.on_set)
        )

    @staticmethod
    def _verified_level(result, synced: bool = False) -> str:
        """The weakest certificate level among the returned records."""
        if synced:
            return VERIFIED_FULL
        order = {VERIFIED_NONE: 0, VERIFIED_SAMPLED: 1, VERIFIED_FULL: 2}
        levels = []
        for outcome in result:
            record = outcome.record
            if record is None:
                continue
            cert = record.get("integrity") or {}
            levels.append(cert.get("verified", VERIFIED_NONE))
        if not levels:
            return VERIFIED_NONE
        return min(levels, key=lambda level: order.get(level, 0))

    def _feed_breaker(self, result) -> None:
        for outcome in result:
            size = len(outcome.job.func.on_set)
            for attempt in outcome.attempts:
                if attempt.get("status") == "timeout":
                    self.breaker.record_timeout(attempt["rung"], size)
            if outcome.ok and outcome.source == "computed":
                self.breaker.record_success(outcome.rung, size)

    def _respond(
        self, result, budget: Budget, include_form: bool
    ) -> tuple[int, dict]:
        results = []
        for outcome in result:
            entry: dict[str, Any] = {
                "label": outcome.job.display_label,
                "source": outcome.source,
            }
            if outcome.ok:
                record = outcome.record
                entry.update(
                    rung=record["rung"],
                    literals=record["literals"],
                    pseudoproducts=record["pseudoproducts"],
                    optimal=record.get("optimal", False),
                    degraded=record.get("degraded", False),
                    seconds=record.get("seconds"),
                )
                if include_form:
                    entry["form"] = record.get("form")
            else:
                entry["attempts"] = outcome.attempts
            results.append(entry)
        body: dict[str, Any] = {
            "ok": result.ok,
            "results": results,
            "seconds": result.seconds,
        }
        terminated = result.by_source(SOURCE_CANCELLED)
        if terminated:
            if budget.cancelled:
                code, status = "cancelled", 503
                message = f"request cancelled: {budget.token.reason}"
                key = "cancelled"
            else:
                code, status = "budget-exceeded", 408
                message = "request budget exhausted before completion"
                key = "budget_exceeded"
            body["error"] = {"code": code, "message": message}
            with self._stats_lock:
                self._counters[key] += 1
            return status, body
        with self._stats_lock:
            self._counters["completed" if result.ok else "failed"] += 1
        return 200, body

    # -- in-flight registry --------------------------------------------

    def _register(self, budget: Budget) -> int:
        with self._inflight_lock:
            self._next_request_id += 1
            request_id = self._next_request_id
            self._inflight[request_id] = budget
        return request_id

    def _unregister(self, request_id: int) -> None:
        with self._inflight_lock:
            self._inflight.pop(request_id, None)

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return len(self._inflight)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            counters = dict(self._counters)
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "inflight": self.inflight,
            "draining": self._draining,
            "counters": counters,
            "latency": self.latency.snapshot(),
            "admission": self.admission.snapshot(),
            "breaker": {
                "open": self.breaker.snapshot(),
                "skips": self.breaker.skips,
                "quarantined": dict(self.breaker.quarantined),
            },
            "shadow": self.shadow.snapshot(),
            "watchdog": self.watchdog.snapshot(),
            "cache": {
                "entries": len(self.cache),
                "counters": self.cache.stats.as_dict(),
                "stats": self.cache.stats.summary(),
            },
            "delta": self.delta.stats() if self.delta is not None else {},
        }

    def metrics_text(self) -> str:
        """The service's counters as Prometheus text exposition."""
        with self._stats_lock:
            counters = dict(self._counters)
        admission = self.admission.snapshot()
        cache = self.cache.stats.as_dict()
        metrics = [
            Metric(
                "repro_uptime_seconds", "Seconds since service start."
            ).add(time.monotonic() - self._started_at),
            Metric(
                "repro_inflight_requests", "Requests currently executing."
            ).add(self.inflight),
        ]
        requests = Metric(
            "repro_requests_total",
            "Terminal request outcomes by status.",
            "counter",
        )
        for key, value in sorted(counters.items()):
            if key != "requests":
                requests.add(value, status=key)
        requests.add(admission["shed"], status="shed")
        metrics.append(requests)
        metrics.append(
            Metric(
                "repro_admission_waiting", "Requests parked in the waiting room."
            ).add(admission["waiting"])
        )
        breaker = Metric(
            "repro_breaker_skips_total",
            "Ladder rungs skipped by an open circuit breaker.",
            "counter",
        ).add(self.breaker.skips)
        metrics.append(breaker)
        metrics.append(
            Metric(
                "repro_breaker_open", "Circuit breakers currently open."
            ).add(len(self.breaker.snapshot()))
        )
        quarantine = Metric(
            "repro_rung_quarantine_total",
            "Integrity mismatches attributed to a rung's results.",
            "counter",
        )
        for rung, count in sorted(self.breaker.quarantined.items()):
            quarantine.add(count, rung=rung or "unknown")
        metrics.append(quarantine)
        shadow = Metric(
            "repro_shadow_events_total",
            "Shadow-verification events by kind.",
            "counter",
        )
        for key, value in sorted(self.shadow.snapshot().items()):
            if key not in ("rate", "verify_seconds"):
                shadow.add(value, kind=key)
        metrics.append(shadow)
        if self.delta is not None:
            delta_stats = self.delta.stats()
            delta_metric = Metric(
                "repro_delta_events_total",
                "Near-duplicate warm-path events by kind.",
                "counter",
            )
            for key in ("lookups", "warm_hits", "fallbacks", "inserts", "evictions"):
                delta_metric.add(delta_stats[key], kind=key)
            metrics.append(delta_metric)
            metrics.append(
                Metric(
                    "repro_delta_entries",
                    "Minimization contexts in the near-duplicate LRU.",
                ).add(delta_stats["entries"])
            )
        cache_metric = Metric(
            "repro_cache_events_total",
            "Result-cache events by kind (memory/disk tiers).",
            "counter",
        )
        for key, value in sorted(cache.items()):
            cache_metric.add(value, kind=key)
        metrics.append(cache_metric)
        metrics.append(
            Metric("repro_cache_entries", "Records in the in-memory LRU.").add(
                len(self.cache)
            )
        )
        metrics.append(
            Metric.from_histogram(
                "repro_request_seconds",
                "End-to-end latency of admitted requests.",
                self.latency,
            )
        )
        return render_metrics(metrics)

    @property
    def ready(self) -> bool:
        return self.admission.accepting

    # -- lifecycle -----------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start serving on a daemon thread, return (host, port)."""
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._server.daemon_threads = True
        self.watchdog.start()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-listener",
            daemon=True,
        )
        self._server_thread.start()
        if self.config.parent_pid is not None:
            threading.Thread(
                target=self._watch_parent,
                name="repro-serve-parent-watch",
                daemon=True,
            ).start()
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def _watch_parent(self) -> None:
        """Drain when the supervising parent process disappears.

        Cluster workers are children of a coordinator; if it dies
        without draining them (SIGKILL, OOM), they must not linger as
        orphans holding ports and the shared cache lock path.
        """
        import os

        pid = self.config.parent_pid
        while not self._draining:
            try:
                os.kill(pid, 0)
            except (OSError, ProcessLookupError):
                self.drain(grace=1.0)
                return
            time.sleep(1.0)

    def drain(self, grace: float | None = None) -> None:
        """Graceful shutdown: stop admitting, finish or cancel in-flight.

        Requests that complete within the grace window land in the
        manifest journal as usual; stragglers are cancelled through
        their budget tokens and answered with the structured
        ``cancelled`` error.  Idempotent.
        """
        if self._draining:
            self._drained.wait()
            return
        self._draining = True
        self.admission.close()
        grace = self.config.drain_grace if grace is None else grace
        deadline = time.monotonic() + max(grace, 0.0)
        while self.inflight and time.monotonic() < deadline:
            time.sleep(0.02)
        with self._inflight_lock:
            stragglers = list(self._inflight.values())
        for budget in stragglers:
            budget.cancel("server draining")
        # Cancellation is cooperative: give the loops a moment to unwind
        # so their (cancelled) responses still go out before the
        # listener dies.
        deadline = time.monotonic() + 5.0
        while self.inflight and time.monotonic() < deadline:
            time.sleep(0.02)
        self.watchdog.stop()
        self.shadow.stop()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain on a helper thread (main thread only)."""
        import signal

        def _on_signal(signum, frame):
            threading.Thread(
                target=self.drain, name="repro-serve-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._drained.wait(timeout)


def _make_handler(service: MinimizeService):
    """An ``http.server`` handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"
        # Headers and body flush as separate writes; without TCP_NODELAY
        # that pairs Nagle with the peer's delayed ACK for a ~40ms stall
        # on every response.
        disable_nagle_algorithm = True

        # -- plumbing --------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 — stdlib name
            pass  # request logging would drown the CLI's own output

        def _send_json(
            self, status: int, body: dict, headers: dict[str, str] | None = None
        ) -> None:
            data = json.dumps(body).encode("ascii")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _error(
            self, status: int, code: str, message: str,
            extra: dict | None = None, **headers,
        ) -> None:
            error: dict[str, Any] = {"code": code, "message": message}
            if extra:
                error.update(extra)
            self._send_json(
                status, {"ok": False, "error": error}, headers=headers
            )

        # -- GET -------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — stdlib casing
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/readyz":
                if service.ready:
                    self._send_json(200, {"status": "ready"})
                else:
                    self._send_json(
                        503,
                        {"status": "draining" if service.admission.closed
                         else "shedding"},
                        headers={"Retry-After": str(service.config.retry_after)},
                    )
            elif self.path == "/stats":
                self._send_json(200, service.stats())
            elif self.path == "/metrics":
                data = service.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            else:
                self._error(404, "not-found", f"no such path {self.path!r}")

        # -- POST ------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802 — stdlib casing
            if self.path != "/minimize":
                self._error(404, "not-found", f"no such path {self.path!r}")
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, TypeError):
                self._error(400, "parse", "request body is not valid JSON")
                return
            deadline = parse_deadline(self.headers.get(DEADLINE_HEADER))
            try:
                status, body, headers = service.handle_minimize(payload, deadline)
            except DeadlineExpired as exc:
                self._error(
                    503, exc.code, str(exc),
                    **{"Retry-After": str(exc.retry_after)},
                )
            except Overloaded as exc:
                self._error(
                    429, exc.code, str(exc),
                    **{"Retry-After": str(exc.retry_after)},
                )
            except (UsageError, ParseError) as exc:
                self._error(400, exc.code, str(exc))
            except IntegrityError as exc:
                # Counterexamples (first few points + truncation flag)
                # instead of an opaque message: the client can replay
                # them against its own spec.
                self._error(500, exc.code, str(exc), extra=exc.detail or None)
            except ReproError as exc:
                self._error(500, exc.code, str(exc))
            else:
                self._send_json(status, body, headers=headers)

    return Handler
