"""Hash-map structure index — a drop-in alternative to the partition trie.

The partition trie's job in the minimization algorithms is to partition
pseudoproducts into same-structure classes.  Since the structure of a
pseudocube is a function of its direction space alone (Theorem 1 in
affine form), a dictionary keyed by the RREF direction basis realizes
the identical partition with one hash lookup per insertion.

This backend exists (a) as the fast default for the Python
implementation, where pointer-chasing tries pay a heavy constant
factor, and (b) as the ablation baseline quantifying what the trie's
prefix sharing buys (``benchmarks/test_ablation_backend.py``).  Both
backends expose the same protocol: ``insert``, ``__contains__``,
``groups``, ``items``, ``__len__``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.budget import Budget
from repro.core.pseudocube import Pseudocube
from repro.kernels.intern import BasisInterner

__all__ = ["StructureIndex"]


class StructureIndex:
    """Same-structure partition of pseudocubes, keyed by direction basis.

    Basis keys are interned on insertion, so structurally equal bases
    arriving as distinct tuples (the normal case — each comes from its
    own RREF computation) share one key object and later probes hit the
    dict's identity fast path.
    """

    def __init__(self) -> None:
        self._buckets: dict[tuple[int, ...], dict[int, Pseudocube]] = {}
        self._interner = BasisInterner()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def insert(self, pc: Pseudocube) -> bool:
        """Insert; returns True when the pseudocube was not present."""
        bucket = self._buckets.setdefault(self._interner.intern(pc.basis), {})
        if pc.anchor in bucket:
            return False
        bucket[pc.anchor] = pc
        self._size += 1
        return True

    def __contains__(self, pc: Pseudocube) -> bool:
        bucket = self._buckets.get(pc.basis)
        return bucket is not None and pc.anchor in bucket

    def groups(self, *, budget: Budget | None = None) -> Iterator[list[Pseudocube]]:
        """The same-structure classes (unifiable groups of Theorem 1)."""
        for bucket in self._buckets.values():
            if budget is not None:
                budget.tick()
            yield list(bucket.values())

    def items(self, *, budget: Budget | None = None) -> Iterator[Pseudocube]:
        for bucket in self._buckets.values():
            if budget is not None:
                budget.tick()
            yield from bucket.values()
