"""Hash-map structure index — a drop-in alternative to the partition trie.

The partition trie's job in the minimization algorithms is to partition
pseudoproducts into same-structure classes.  Since the structure of a
pseudocube is a function of its direction space alone (Theorem 1 in
affine form), a dictionary keyed by the RREF direction basis realizes
the identical partition with one hash lookup per insertion.

This backend exists (a) as the fast default for the Python
implementation, where pointer-chasing tries pay a heavy constant
factor, and (b) as the ablation baseline quantifying what the trie's
prefix sharing buys (``benchmarks/test_ablation_backend.py``).  Both
backends expose the same protocol: ``insert``, ``__contains__``,
``groups``, ``items``, ``__len__``.

Storage is columnar: buckets are keyed by the interner's stable dense
basis id (a small int) rather than the basis tuple itself, so probes
hash one machine int and the distinct bases live once, in id order, in
the interner's table.  :meth:`packed_arrays` exports the whole
partition in the ``(anchors, sizes, rows)`` layout the
:mod:`repro.kernels.gf2mat` batch kernels consume.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.budget import Budget
from repro.core.pseudocube import Pseudocube
from repro.kernels.intern import BasisInterner

__all__ = ["StructureIndex"]


class StructureIndex:
    """Same-structure partition of pseudocubes, keyed by direction basis.

    Basis keys are interned to a dense integer id on insertion, so
    structurally equal bases arriving as distinct tuples (the normal
    case — each comes from its own RREF computation) share one id and
    later probes hash a machine int instead of a tuple.  Bucket
    iteration order is first-insertion order of the basis, identical to
    the previous tuple-keyed layout because ids are allocated in
    first-intern order.
    """

    def __init__(self) -> None:
        # basis id -> anchor -> pseudocube; ids are dense and stable,
        # assigned by the interner in first-seen order.
        self._buckets: dict[int, dict[int, Pseudocube]] = {}
        self._interner = BasisInterner()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def insert(self, pc: Pseudocube) -> bool:
        """Insert; returns True when the pseudocube was not present."""
        bucket = self._buckets.setdefault(self._interner.intern_id(pc.basis), {})
        if pc.anchor in bucket:
            return False
        bucket[pc.anchor] = pc
        self._size += 1
        return True

    def __contains__(self, pc: Pseudocube) -> bool:
        ident = self._interner.lookup_id(pc.basis)
        if ident is None:
            return False
        bucket = self._buckets.get(ident)
        return bucket is not None and pc.anchor in bucket

    def groups(self, *, budget: Budget | None = None) -> Iterator[list[Pseudocube]]:
        """The same-structure classes (unifiable groups of Theorem 1)."""
        for bucket in self._buckets.values():
            if budget is not None:
                budget.tick()
            yield list(bucket.values())

    def items(self, *, budget: Budget | None = None) -> Iterator[Pseudocube]:
        for bucket in self._buckets.values():
            if budget is not None:
                budget.tick()
            yield from bucket.values()

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------

    def group_bases(self) -> list[tuple[int, ...]]:
        """The distinct bases in bucket iteration order (canonical tuples)."""
        basis_of = self._interner.basis_of
        return [basis_of(ident) for ident in self._buckets]

    def packed_arrays(self):
        """The whole partition as ``(anchors, sizes, rows)`` uint64 arrays.

        ``anchors`` concatenates every bucket's anchors in iteration
        order, ``sizes`` is the per-bucket count, and ``rows`` is the
        ``(groups, rank)`` basis matrix — the exact state layout of the
        packed generation loop in :mod:`repro.minimize.eppp`.  Requires
        all buckets to share one rank (always true for a per-degree
        candidate wave) and the numpy kernels to be available; returns
        ``None`` otherwise.
        """
        from repro.kernels import gf2mat

        if not gf2mat.AVAILABLE or not self._buckets:
            return None
        bases = self.group_bases()
        rank = len(bases[0])
        if any(len(b) != rank for b in bases):
            return None
        import numpy as np

        anchors = np.fromiter(
            (a for bucket in self._buckets.values() for a in bucket),
            dtype=np.uint64,
            count=self._size,
        )
        sizes = np.fromiter(
            (len(bucket) for bucket in self._buckets.values()),
            dtype=np.int64,
            count=len(self._buckets),
        )
        rows = np.array(bases, dtype=np.uint64).reshape(len(bases), rank)
        return anchors, sizes, rows
