"""Partition tries (Section 3.2) and the equivalent hash-map index."""

from repro.trie.index import StructureIndex
from repro.trie.nodes import C_NODE, NC_NODE, Leaf, TrieNode
from repro.trie.partition_trie import PartitionTrie

__all__ = [
    "C_NODE",
    "NC_NODE",
    "Leaf",
    "PartitionTrie",
    "StructureIndex",
    "TrieNode",
]
