"""The partition trie — the paper's central data structure (Section 3.2).

A partition trie stores a set of CEX expressions so that

* a root-to-leaf-parent path spells a *structure* (Definition 2), with
  every EXOR factor starting at its NC-node followed by its C-nodes in
  increasing order;
* the leaves under one parent are the complementation vectors of the
  expressions sharing that structure (Property 1).

Pseudoproducts that can be unified by Algorithm 1 are therefore exactly
the leaves with a common parent, which is what makes the minimization
algorithms of Sections 3.3/3.4 avoid the quadratic all-pairs structure
comparison of the original method.

The trie is generic in its payload; the minimizers store
:class:`~repro.core.pseudocube.Pseudocube` objects.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.budget import Budget
from repro.core.bitvec import bits_of, get_bit
from repro.core.cex import CexExpression
from repro.core.pseudocube import Pseudocube
from repro.kernels.intern import BasisInterner
from repro.trie.nodes import C_NODE, NC_NODE, Leaf, TrieNode

__all__ = ["PartitionTrie"]

T = TypeVar("T")

_FP_MASK = (1 << 64) - 1
_FP_MIX = 0x9E3779B97F4A7C15  # golden-ratio odd multiplier


def _leaf_token(structure: tuple[int, ...], vector: tuple[int, ...]) -> int:
    """64-bit token of one leaf's identity.

    Built from the interned-pivot structure and complementation vector
    only — ``hash`` over int tuples is deterministic across processes
    (PYTHONHASHSEED randomizes str/bytes, not ints), so the fingerprint
    is stable enough to persist inside context snapshots.
    """
    return ((hash((structure, vector)) * _FP_MIX) | 1) & _FP_MASK


def _path_of_structure(structure: tuple[int, ...]) -> list[tuple[str, int]]:
    """Flatten a structure into the trie path: for each factor, the
    NC-node of its non-canonical (highest) variable, then C-nodes in
    increasing order."""
    path: list[tuple[str, int]] = []
    for support in structure:
        variables = list(bits_of(support))
        nc = variables[-1]  # the non-canonical variable is the highest
        path.append((NC_NODE, nc))
        for v in variables[:-1]:
            path.append((C_NODE, v))
    return path


def _structure_and_vector(
    pc: Pseudocube, interner: BasisInterner
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Structure (factor supports) and complementation vector of a
    pseudocube.

    ``L[i] = 1`` iff the i-th non-canonical variable is *not*
    complemented, which in the affine form is bit ``j`` of the anchor
    (see Definition 1, rule 2).

    Pivots are a function of the basis alone, so they come from the
    interner's per-basis cache instead of being recomputed on every
    insert (the same reasoning as the cached ``pivot_mask`` slot on
    :class:`Pseudocube`).
    """
    pivots = interner.pivots(pc.basis)
    canonical = pc.canonical_mask
    supports = []
    vector = []
    for j in range(pc.n):
        if (canonical >> j) & 1:
            continue
        support = 1 << j
        for b, p in zip(pc.basis, pivots):
            if (b >> j) & 1:
                support |= 1 << p
        supports.append(support)
        vector.append(get_bit(pc.anchor, j))
    return tuple(supports), tuple(vector)


class PartitionTrie(Generic[T]):
    """A partition trie mapping CEX structures to leaf groups.

    The public operations mirror the paper: :meth:`insert` (extension of
    trie insertion honouring the node-kind constraints), :meth:`search`,
    and :meth:`groups` — the leaf sets with a common parent, i.e. the
    unifiable classes used by Algorithm 2.
    """

    def __init__(self) -> None:
        self.root: TrieNode[T] = TrieNode()
        self._size = 0
        # Interned bases with cached pivot tuples: repeated inserts of
        # same-structure pseudocubes (the common case — that sharing is
        # Theorem 1) compute pivots once per distinct basis.
        self._interner = BasisInterner()
        self._fingerprint = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def fingerprint(self) -> int:
        """Cheap structural fingerprint of the trie's leaf set.

        An order-independent 64-bit accumulation of per-leaf tokens
        (interned-pivot structure + complementation vector), maintained
        incrementally at the single mutation point
        (:meth:`insert_structure`).  Two tries hold the same expression
        set iff their leaf-token multisets match, so context snapshots
        (:mod:`repro.delta`) can detect staleness with one integer
        comparison instead of a full walk.
        """
        return (self._fingerprint ^ (self._size * _FP_MIX)) & _FP_MASK

    # ------------------------------------------------------------------
    # Insertion / search on raw (structure, vector) pairs
    # ------------------------------------------------------------------

    def insert_structure(
        self, structure: tuple[int, ...], vector: tuple[int, ...], payload: T
    ) -> bool:
        """Insert an expression given as (structure, complementations).

        Returns True if the expression was new, False if a leaf with the
        same structure and vector already existed (the payload is then
        left untouched — duplicate generation is expected and benign in
        the union steps).
        """
        node = self.root
        for kind, label in _path_of_structure(structure):
            node = node.ensure_child(kind, label)
        if vector in node.leaves:
            return False
        node.leaves[vector] = Leaf(vector, payload)
        self._size += 1
        self._fingerprint = (self._fingerprint + _leaf_token(structure, vector)) & _FP_MASK
        return True

    def search_structure(
        self, structure: tuple[int, ...], vector: tuple[int, ...]
    ) -> T | None:
        """Find the payload of an expression, or None."""
        node: TrieNode[T] | None = self.root
        for kind, label in _path_of_structure(structure):
            node = node.child(kind, label)
            if node is None:
                return None
        leaf = node.leaves.get(vector)
        return None if leaf is None else leaf.payload

    # ------------------------------------------------------------------
    # Pseudocube-level convenience (the payload is the pseudocube)
    # ------------------------------------------------------------------

    def insert(self, pc: Pseudocube) -> bool:
        """Insert a pseudocube keyed by its CEX structure/vector."""
        structure, vector = _structure_and_vector(pc, self._interner)
        return self.insert_structure(structure, vector, pc)  # type: ignore[arg-type]

    def insert_cex(self, cex: CexExpression) -> bool:
        """Insert a CEX expression, storing its pseudocube as payload."""
        return self.insert(cex.to_pseudocube())

    def __contains__(self, pc: Pseudocube) -> bool:
        structure, vector = _structure_and_vector(pc, self._interner)
        return self.search_structure(structure, vector) is not None

    # ------------------------------------------------------------------
    # Grouping — Property 1
    # ------------------------------------------------------------------

    def groups(self, *, budget: Budget | None = None) -> Iterator[list[T]]:
        """Yield the payload groups of leaves sharing a parent.

        By Property 1 each group holds expressions with the same
        structure, hence (Theorem 1) every pair in a group unifies.

        ``budget`` is ticked once per trie node visited, so walking a
        huge trie stays cancellable between groups.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if budget is not None:
                budget.tick()
            if node.leaves:
                yield [leaf.payload for leaf in node.leaves.values()]
            stack.extend(node.nc_children.values())
            stack.extend(node.c_children.values())

    def items(self, *, budget: Budget | None = None) -> Iterator[T]:
        """All payloads in the trie."""
        for group in self.groups(budget=budget):
            yield from group

    # ------------------------------------------------------------------
    # Rendering (figure 2)
    # ------------------------------------------------------------------

    def render(self, var: str = "x") -> str:
        """ASCII rendering of the trie (double circles = NC-nodes)."""
        lines: list[str] = []

        def walk(node: TrieNode[T], depth: int) -> None:
            if node.kind is not None:
                tag = f"(({var}{node.label}))" if node.kind == NC_NODE else f"({var}{node.label})"
                lines.append("  " * depth + tag)
            for vector in sorted(node.leaves):
                lines.append("  " * (depth + 1) + "[" + "".join(map(str, vector)) + "]")
            for child in node.ordered_children():
                walk(child, depth + (node.kind is not None))

        lines.append("(root)")
        walk(self.root, 1)
        return "\n".join(lines)
