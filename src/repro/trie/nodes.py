"""Nodes of the partition trie (Section 3.2 of the paper).

An internal node is either a *C-node* (canonical variable) or an
*NC-node* (non-canonical variable), labelled with a variable index; the
root is unlabelled.  Leaves are Boolean vectors recording the
complementations of the non-canonical variables along the root-to-leaf
path (``L[i] = 0`` ⇔ the i-th non-canonical variable is complemented).

Children of a node are ordered as in the paper: NC-nodes by increasing
label, then C-nodes by increasing label, then leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

__all__ = ["TrieNode", "Leaf", "NC_NODE", "C_NODE"]

NC_NODE = "NC"
C_NODE = "C"

T = TypeVar("T")


@dataclass(slots=True)
class Leaf(Generic[T]):
    """A leaf: the complementation vector plus the stored payload."""

    vector: tuple[int, ...]
    payload: T


@dataclass(slots=True)
class TrieNode(Generic[T]):
    """An internal node of the partition trie.

    ``kind`` is ``NC_NODE``/``C_NODE`` (or None for the root) and
    ``label`` the variable index (None for the root).  Dictionaries give
    O(1) child lookup; :meth:`ordered_children` yields them in the
    paper's display order.
    """

    kind: str | None = None
    label: int | None = None
    nc_children: dict[int, "TrieNode[T]"] = field(default_factory=dict)
    c_children: dict[int, "TrieNode[T]"] = field(default_factory=dict)
    leaves: dict[tuple[int, ...], Leaf[T]] = field(default_factory=dict)

    def child(self, kind: str, label: int) -> "TrieNode[T] | None":
        table = self.nc_children if kind == NC_NODE else self.c_children
        return table.get(label)

    def ensure_child(self, kind: str, label: int) -> "TrieNode[T]":
        """Return the child of the given kind/label, creating it if absent
        (the trie insertion step for one variable)."""
        table = self.nc_children if kind == NC_NODE else self.c_children
        node = table.get(label)
        if node is None:
            node = TrieNode(kind=kind, label=label)
            table[label] = node
        return node

    def ordered_children(self) -> list["TrieNode[T]"]:
        """Internal children in the paper's order: NC-nodes by label,
        then C-nodes by label."""
        return [self.nc_children[k] for k in sorted(self.nc_children)] + [
            self.c_children[k] for k in sorted(self.c_children)
        ]

    @property
    def is_leaf_parent(self) -> bool:
        return bool(self.leaves)
