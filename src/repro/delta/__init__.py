"""Incremental re-minimization — the delta-aware warm path.

Service traffic is dominated by near-duplicate functions: a handful of
on-set points added, dropped, or toggled between requests.  This
package turns "minimize f′ where f′ = f ⊕ {small edit}" into a patch
operation instead of a cold solve:

* :mod:`repro.delta.context` — :class:`MinimizationContext`, a reusable
  snapshot of a completed exact minimization (candidate list, packed
  coverage masks, partition-trie skeleton with its structural
  fingerprint, the base cover);
* :mod:`repro.delta.reminimize` — :func:`reminimize` /
  :func:`warm_minimize`, which classify the edit, patch the covering
  matrix by bit surgery, and re-solve with the identical solver (so a
  warm result is bit-identical to the cold one whenever the candidate
  list is reusable);
* :mod:`repro.delta.index` — :class:`DeltaIndex`, the engine-level
  near-duplicate LRU keyed by a banded-minhash on-set signature, plus
  :func:`warm_record_for`, which wraps a warm solve in the full engine
  record (verify_form + integrity certificate — reuse can never change
  answers, only speed).

The soundness argument rests on candidate-order purity: EPPP generation
is a pure function of the care set ``on ∪ dc`` alone, so any edit that
preserves the care set (on↔dc toggles) reuses the base candidate list
*verbatim*, in order.  Care-set-changing edits fall back to the cold
path — greedy covering is order-sensitive, so there is no sound way to
splice new candidates into the stream without risking a different
cover.
"""

from repro.delta.context import MinimizationContext, build_context, toggle_points
from repro.delta.index import DeltaIndex, onset_signature, warm_record_for
from repro.delta.reminimize import (
    DEFAULT_MAX_EDIT,
    DeltaIneligible,
    DeltaResult,
    eligibility,
    reminimize,
    warm_minimize,
)

__all__ = [
    "MinimizationContext",
    "build_context",
    "toggle_points",
    "DeltaIndex",
    "onset_signature",
    "warm_record_for",
    "DEFAULT_MAX_EDIT",
    "DeltaIneligible",
    "DeltaResult",
    "eligibility",
    "reminimize",
    "warm_minimize",
]
