"""Minimization context snapshots.

A :class:`MinimizationContext` captures everything a completed exact
minimization learned that is reusable for a near-duplicate function:

* the EPPP candidate list **in generation order** (order matters —
  greedy covering is order-sensitive, and bit-identical warm results
  depend on replaying the exact same column stream);
* the pre-drop coverage masks and costs over the base row list, so the
  covering matrix can be patched by bit surgery instead of rebuilt
  (candidates that covered nothing for the base on-set keep their
  positions — they may start covering rows after an edit);
* the partition-trie skeleton of the candidates with its interned
  basis table and structural :attr:`~repro.trie.PartitionTrie.fingerprint`
  (one integer comparison detects a stale/mutated snapshot);
* the base cover and the solver parameters that produced it, so the
  cold fallback can mirror them exactly.

Snapshots are only built from *untruncated* generations: a capped
generation's candidate stream is an artifact of where the cap landed,
not of the function, so nothing about it transfers to an edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.boolfunc.function import BoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.kernels.coverage import masks_and_costs
from repro.minimize.exact import SppResult
from repro.trie.partition_trie import PartitionTrie

__all__ = ["MinimizationContext", "build_context", "toggle_points"]

# Snapshots beyond this many candidates cost more to capture (mask pass
# + trie build) than the warm path saves on typical service functions.
MAX_CONTEXT_CANDIDATES = 100_000


@dataclass
class MinimizationContext:
    """Reusable state of one completed exact SPP minimization."""

    func: BoolFunc
    candidates: list[Pseudocube]
    rows: list[int]
    masks: list[int]
    costs: list[int]
    form: SppForm
    covering: str
    covering_optimal: bool
    backend: str
    max_pseudoproducts: int | None
    generation_seconds: float
    generation_comparisons: int
    covering_stats: dict | None
    trie: PartitionTrie = field(repr=False)
    trie_fingerprint: int = 0

    @property
    def cost(self) -> int:
        return self.form.num_literals

    @property
    def care_set(self) -> frozenset[int]:
        return self.func.care_set

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    def is_stale(self) -> bool:
        """True if the trie skeleton mutated since the snapshot."""
        return self.trie.fingerprint != self.trie_fingerprint


def build_context(
    func: BoolFunc,
    result: SppResult,
    *,
    covering: str = "greedy",
    backend: str = "index",
    max_pseudoproducts: int | None = None,
    max_candidates: int = MAX_CONTEXT_CANDIDATES,
) -> MinimizationContext | None:
    """Snapshot a cold minimization, or None when nothing transfers.

    Returns None for generation-free results (empty on-set, affine
    fast path — a cold re-solve of those is already trivial), for
    truncated generations (the candidate stream is cap-shaped, not
    function-shaped), and for candidate lists past ``max_candidates``
    (the snapshot would cost more than it saves).
    """
    generation = result.generation
    if generation is None or generation.truncated:
        return None
    candidates = list(generation.eppps)
    if not candidates or len(candidates) > max_candidates:
        return None
    rows = sorted(func.on_set)
    masks, costs = masks_and_costs(rows, candidates)
    trie: PartitionTrie = PartitionTrie()
    for pc in candidates:
        trie.insert(pc)
    return MinimizationContext(
        func=func,
        candidates=candidates,
        rows=rows,
        masks=masks,
        costs=costs,
        form=result.form,
        covering=covering,
        covering_optimal=result.covering_optimal,
        backend=backend,
        max_pseudoproducts=max_pseudoproducts,
        generation_seconds=result.seconds_generation,
        generation_comparisons=generation.total_comparisons,
        covering_stats=result.covering_stats,
        trie=trie,
        trie_fingerprint=trie.fingerprint,
    )


def toggle_points(func: BoolFunc, toggles: Iterable[int]) -> BoolFunc:
    """Apply point toggles: on→dc, dc→on, off→on.

    This is the edit vocabulary of the ``"delta"`` request form.  An
    on↔dc toggle preserves the care set (the warm-path sweet spot); an
    off→on toggle grows it and will route to the cold path.
    """
    on = set(func.on_set)
    dc = set(func.dc_set)
    space = 1 << func.n
    for p in toggles:
        if not 0 <= p < space:
            raise ValueError(f"toggle point {p} outside B^{func.n}")
        if p in on:
            on.discard(p)
            dc.add(p)
        elif p in dc:
            dc.discard(p)
            on.add(p)
        else:
            on.add(p)
    return BoolFunc(func.n, frozenset(on), frozenset(dc))
