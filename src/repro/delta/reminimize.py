"""Delta application — patch, don't recompute.

The warm path rests on **candidate-order purity**: EPPP generation is a
pure function of the care set ``on ∪ dc`` alone (the degree-0 bucket is
``sorted(care_set)`` and every later bucket/anchor order derives
deterministically from it).  So for a care-set-preserving edit (on↔dc
toggles) the base candidate list is reusable *verbatim, in order*, and
the only work left is the covering step:

1. patch the base coverage masks by bit surgery — delete the mask bits
   of retired rows, splice in the bits of appended rows (computed with
   the vectorized structure-grouped kernel over just the added points);
2. re-apply :func:`~repro.kernels.coverage.build_problem`'s zero-mask
   drop filter, producing a covering problem **bit-identical** to the
   one a cold solve would build;
3. run the identical solver.  Identical problem + deterministic solver
   ⇒ identical cover, so warm results match cold results bit for bit.
   In exact mode the prior cover is additionally passed as a warm-start
   upper bound (used only as a fallback incumbent when the node budget
   runs out — a proved search is unaffected).

Care-set-*changing* edits fall back to the cold path: greedy covering
is order-sensitive, so splicing freshly generated candidates into the
stream could change the answer.  The fallback mirrors the base solve's
parameters exactly.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.delta.context import MinimizationContext
from repro.kernels.coverage import coverage_masks
from repro.minimize import covering as cov
from repro.minimize.covering import CoveringProblem
from repro.minimize.exact import SppResult, minimize_spp

__all__ = [
    "DEFAULT_MAX_EDIT",
    "DeltaIneligible",
    "DeltaResult",
    "eligibility",
    "warm_minimize",
    "reminimize",
]

# Edits past this many toggled points go cold: the covering patch stays
# cheap, but a large edit is no longer "the same function with noise"
# and the near-duplicate index should not pretend otherwise.
DEFAULT_MAX_EDIT = 8


class DeltaIneligible(Exception):
    """The edit cannot be applied warm; carries the reason slug."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class DeltaResult:
    """Outcome of :func:`reminimize`."""

    result: SppResult
    warm: bool
    reason: str  # "warm" or the fallback reason slug
    edit_size: int
    seconds: float


def eligibility(
    base: MinimizationContext,
    func: BoolFunc,
    *,
    max_edit: int = DEFAULT_MAX_EDIT,
) -> str | None:
    """Why ``func`` cannot reuse ``base`` — or None when it can.

    Reason slugs: ``dimension-changed``, ``care-set-changed``,
    ``edit-too-large``, ``context-stale``.
    """
    if func.n != base.func.n:
        return "dimension-changed"
    if func.care_set != base.func.care_set:
        return "care-set-changed"
    if len(base.func.on_set ^ func.on_set) > max_edit:
        return "edit-too-large"
    if base.is_stale():
        return "context-stale"
    return None


def _patched_rows_and_masks(
    base: MinimizationContext, func: BoolFunc, budget: Budget | None
) -> tuple[list[int], list[int]]:
    """Bit-surgery the base coverage masks onto the edited on-set.

    Retired rows have their bit deleted (higher bits shift down);
    appended rows have a bit spliced in (higher bits shift up), with
    the new bits computed by one vectorized
    :func:`~repro.kernels.coverage.coverage_masks` pass over just the
    added points.  The output equals ``masks_and_costs(sorted(on′),
    candidates)`` exactly — asserted by the property suite.
    """
    on1 = base.func.on_set
    on2 = func.on_set
    removed = sorted(on1 - on2)
    added = sorted(on2 - on1)
    if not removed and not added:
        return list(base.rows), list(base.masks)
    rows2 = sorted(on2)
    # Delete highest positions first so lower ones stay valid.
    rem_pos = sorted((bisect_left(base.rows, p) for p in removed), reverse=True)
    # Insert in ascending final position so earlier splices are counted.
    add_pos = [bisect_left(rows2, p) for p in added]
    amasks = coverage_masks(added, base.candidates, budget=budget) if added else None
    out = []
    for j, mask in enumerate(base.masks):
        if budget is not None and j % 4096 == 0:
            budget.tick()
        for i in rem_pos:
            low = (1 << i) - 1
            mask = (mask & low) | ((mask >> 1) & ~low)
        if amasks is not None:
            am = amasks[j]
            for t, pos in enumerate(add_pos):
                low = (1 << pos) - 1
                mask = (mask & low) | ((mask & ~low) << 1) | (((am >> t) & 1) << pos)
        out.append(mask)
    return rows2, out


def warm_minimize(
    base: MinimizationContext,
    func: BoolFunc,
    *,
    max_edit: int = DEFAULT_MAX_EDIT,
    budget: Budget | None = None,
) -> SppResult:
    """Re-minimize ``func`` warm from ``base``; the result is
    bit-identical to a cold :func:`~repro.minimize.exact.minimize_spp`
    with the base's parameters (modulo the exact-mode warm-start, which
    only engages when the cold search would have failed to prove).

    Raises :class:`DeltaIneligible` when the edit cannot go warm.
    """
    reason = eligibility(base, func, max_edit=max_edit)
    if reason is not None:
        raise DeltaIneligible(reason)
    # Replicate minimize_spp's preamble on the edited function.
    if not func.on_set:
        return SppResult(SppForm(func.n, ()), 0, None, True, 0.0, 0.0)
    if not func.dc_set:
        t0 = time.perf_counter()
        try:
            single = Pseudocube.from_points(func.n, func.on_set)
        except ValueError:
            single = None
        if single is not None:
            return SppResult(
                form=SppForm(func.n, (single,)),
                num_candidates=1,
                generation=None,
                covering_optimal=True,
                seconds_generation=time.perf_counter() - t0,
                seconds_covering=0.0,
            )
    t0 = time.perf_counter()
    rows2, masks2 = _patched_rows_and_masks(base, func, budget)
    if budget is not None:
        budget.check()
    # build_problem's zero-mask drop, on the patched arrays.
    if 0 in masks2:
        keep = [i for i, mask in enumerate(masks2) if mask]
        problem = CoveringProblem(
            len(rows2),
            [masks2[i] for i in keep],
            [base.costs[i] for i in keep],
            [base.candidates[i] for i in keep],
        )
    else:
        problem = CoveringProblem(len(rows2), masks2, list(base.costs), list(base.candidates))
    seed = None
    if base.covering == "exact" and base.form.pseudoproducts:
        index_of: dict[Pseudocube, int] = {}
        for i, pc in enumerate(problem.payloads):
            index_of.setdefault(pc, i)
        seed = [index_of[pc] for pc in base.form.pseudoproducts if pc in index_of]
        if len(seed) != len(base.form.pseudoproducts):
            seed = None  # a prior column vanished; the old cover is no witness
    solution = cov.solve(problem, mode=base.covering, budget=budget, seed=seed)
    form = SppForm(func.n, tuple(solution.payloads))
    return SppResult(
        form=form,
        num_candidates=len(base.candidates),
        generation=None,
        covering_optimal=solution.optimal,
        seconds_generation=0.0,
        seconds_covering=time.perf_counter() - t0,
        covering_stats=solution.stats.as_dict() if solution.stats is not None else None,
    )


def reminimize(
    base: MinimizationContext,
    func: BoolFunc,
    *,
    max_edit: int = DEFAULT_MAX_EDIT,
    budget: Budget | None = None,
) -> DeltaResult:
    """Warm re-minimization with automatic cold fallback.

    Warm when the edit preserves the care set and stays under
    ``max_edit``; otherwise a cold solve mirroring the base parameters
    (same backend/covering/cap, ``on_limit="stop"``).  Either way the
    returned cover is one the cold path could have produced.
    """
    t0 = time.perf_counter()
    edit = len(base.func.on_set ^ func.on_set) if func.n == base.func.n else -1
    try:
        result = warm_minimize(base, func, max_edit=max_edit, budget=budget)
        return DeltaResult(result, True, "warm", edit, time.perf_counter() - t0)
    except DeltaIneligible as exc:
        result = minimize_spp(
            func,
            backend=base.backend,
            covering=base.covering,
            max_pseudoproducts=base.max_pseudoproducts,
            on_limit="stop",
            budget=budget,
        )
        return DeltaResult(result, False, exc.reason, edit, time.perf_counter() - t0)
