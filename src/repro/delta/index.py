"""The engine-level near-duplicate index.

:class:`DeltaIndex` is an LRU of recent exact-job contexts keyed by the
job content hash, with a **banded minhash** signature over the on-set
as the locality-sensitive shortlist: two functions whose on-sets agree
on most points collide in at least one band with high probability, so
a lookup inspects a handful of entries instead of all of them.  (The
last few MRU entries are additionally always scanned — service traffic
edits *recent* functions, and the deterministic scan makes warm-path
behaviour reproducible in tests and benches.)

:func:`warm_record_for` is the scheduler's entry point: look up a base
context, run the warm solve, and wrap it in a **full engine record** —
``verify_form`` plus a fresh integrity certificate, exactly like
:func:`repro.engine.ladder.execute_rung` — so a warm result is
indistinguishable from a cold one downstream and reuse can never change
answers, only speed.  Any integrity failure quarantines the context and
falls back cold.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Iterable
from typing import Any

from repro.budget import Budget
from repro.delta.context import MAX_CONTEXT_CANDIDATES, MinimizationContext, build_context
from repro.delta.reminimize import DEFAULT_MAX_EDIT, DeltaIneligible, warm_minimize
from repro.errors import BudgetExceeded, IntegrityError

__all__ = ["DeltaIndex", "onset_signature", "warm_record_for"]

_SIG_BANDS = 4
_SIG_ROWS = 2  # minhashes per band
_MASK64 = (1 << 64) - 1
# Fixed odd multipliers (splitmix64-style constants): the signature must
# be deterministic across processes and sessions.
_MIXERS = tuple(
    ((0x9E3779B97F4A7C15 * (k + 1)) | 1) & _MASK64 for k in range(_SIG_BANDS * _SIG_ROWS)
)
_MRU_SCAN = 8


def _minhash(points: Iterable[int], mixer: int) -> int:
    best = _MASK64
    for p in points:
        h = ((p + 1) * mixer) & _MASK64
        h ^= h >> 31
        if h < best:
            best = h
    return best


def onset_signature(on_set: Iterable[int]) -> tuple[int, ...]:
    """Banded minhash signature: ``_SIG_BANDS`` band keys, each combining
    ``_SIG_ROWS`` independent minhashes of the on-set."""
    pts = list(on_set)
    sig = []
    for band in range(_SIG_BANDS):
        acc = band
        for row in range(_SIG_ROWS):
            acc = (acc * 0x100000001B3 + _minhash(pts, _MIXERS[band * _SIG_ROWS + row])) & _MASK64
        sig.append(acc)
    return tuple(sig)


class _Entry:
    __slots__ = ("key", "ctx", "signature")

    def __init__(self, key: str, ctx: MinimizationContext, signature: tuple[int, ...]):
        self.key = key
        self.ctx = ctx
        self.signature = signature


class DeltaIndex:
    """LRU of minimization contexts with near-duplicate lookup.

    Thread-safe: the serving tier shares one index across request
    threads.  Counters (``lookups``, ``warm_hits``, ``fallbacks`` with
    a per-reason breakdown, ``inserts``, ``evictions``) feed ``/stats``
    and ``/metrics``.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        max_edit: int = DEFAULT_MAX_EDIT,
        max_candidates: int = MAX_CONTEXT_CANDIDATES,
    ) -> None:
        self.capacity = capacity
        self.max_edit = max_edit
        self.max_candidates = max_candidates
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bands: dict[tuple[int, int], set[str]] = {}
        self._lock = threading.Lock()
        self.lookups = 0
        self.warm_hits = 0
        self.inserts = 0
        self.evictions = 0
        self.fallback_reasons: dict[str, int] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Capture / insertion
    # ------------------------------------------------------------------

    def observe(self, job: Any, rung: Any, result: Any, record: dict) -> None:
        """Scheduler capture hook: snapshot a completed exact rung.

        Only top-rung (non-degraded) exact results are worth keeping —
        a degraded or truncated solve has no reusable candidate stream.
        """
        if getattr(rung, "method", None) != "exact" or record.get("truncated"):
            return
        ctx = build_context(
            job.func,
            result,
            covering=job.covering,
            backend=job.backend,
            max_pseudoproducts=job.max_pseudoproducts,
            max_candidates=self.max_candidates,
        )
        if ctx is not None:
            self.put(job.content_hash, ctx)

    def put(self, key: str, ctx: MinimizationContext) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key].ctx = ctx
                return
            entry = _Entry(key, ctx, onset_signature(ctx.func.on_set))
            self._entries[key] = entry
            for band, value in enumerate(entry.signature):
                self._bands.setdefault((band, value), set()).add(key)
            self.inserts += 1
            while len(self._entries) > self.capacity:
                _, victim = self._entries.popitem(last=False)
                self._unlink(victim)
                self.evictions += 1

    def _unlink(self, entry: _Entry) -> None:
        for band, value in enumerate(entry.signature):
            keys = self._bands.get((band, value))
            if keys is not None:
                keys.discard(entry.key)
                if not keys:
                    del self._bands[(band, value)]

    def drop(self, key: str) -> None:
        """Quarantine a context (e.g. after an integrity failure)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._unlink(entry)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, job: Any) -> MinimizationContext | None:
        """The best warm-eligible base context for ``job``, or None.

        Shortlist = banded-signature collisions ∪ the last ``_MRU_SCAN``
        MRU entries; each is gated on covering-mode equality, exact
        care-set equality, edit distance ≤ ``max_edit``, and candidate
        count within the job's effective cap.  A near miss (shortlisted
        but gated out) counts as a fallback with its reason.
        """
        if job.method != "exact":
            return None
        func = job.func
        with self._lock:
            self.lookups += 1
            if not self._entries:
                return None
            shortlist: OrderedDict[str, _Entry] = OrderedDict()
            for band, value in enumerate(onset_signature(func.on_set)):
                for key in self._bands.get((band, value), ()):
                    shortlist[key] = self._entries[key]
            for key in list(reversed(self._entries))[:_MRU_SCAN]:
                shortlist.setdefault(key, self._entries[key])
            from repro.engine.ladder import _DEFAULT_EXACT_CAP

            cap = job.max_pseudoproducts if job.max_pseudoproducts is not None else _DEFAULT_EXACT_CAP
            best: _Entry | None = None
            best_edit = -1
            near_miss: str | None = None
            for entry in shortlist.values():
                ctx = entry.ctx
                if ctx.func.n != func.n:
                    continue
                if ctx.covering != job.covering:
                    near_miss = near_miss or "covering-mode-changed"
                    continue
                if ctx.num_candidates > cap:
                    near_miss = near_miss or "cap-exceeded"
                    continue
                if ctx.care_set != func.care_set:
                    near_miss = near_miss or "care-set-changed"
                    continue
                edit = len(ctx.func.on_set ^ func.on_set)
                if edit > self.max_edit:
                    near_miss = near_miss or "edit-too-large"
                    continue
                if best is None or edit < best_edit:
                    best = entry
                    best_edit = edit
            if best is None:
                if near_miss is not None:
                    self.fallback_reasons[near_miss] = self.fallback_reasons.get(near_miss, 0) + 1
                return None
            self._entries.move_to_end(best.key)
            return best.ctx

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def count_warm_hit(self) -> None:
        with self._lock:
            self.warm_hits += 1

    def count_fallback(self, reason: str) -> None:
        with self._lock:
            self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "lookups": self.lookups,
                "warm_hits": self.warm_hits,
                "fallbacks": sum(self.fallback_reasons.values()),
                "inserts": self.inserts,
                "evictions": self.evictions,
                "fallback_reasons": dict(self.fallback_reasons),
            }


def warm_record_for(
    job: Any, index: DeltaIndex, *, budget: Budget | None = None
) -> dict | None:
    """Try the warm path for ``job``; a full engine record or None.

    The warm form goes through the same gauntlet as a cold rung —
    ``verify_form`` against the edited function, then a fresh
    :func:`~repro.integrity.make_certificate` — before a record is
    built.  A verification failure quarantines the base context and
    returns None (the cold path recomputes); so does any unexpected
    error: the warm path is an optimization and must never take a
    request down.
    """
    base = index.lookup(job)
    if base is None:
        return None
    from repro.engine.job import _SOLVER_VERSION, job_to_dict
    from repro.engine.ladder import RECORD_VERSION
    from repro.integrity import VERIFIED_FULL, make_certificate
    from repro.serialize import form_to_dict
    from repro.verify import verify_form

    func = job.func
    t0 = time.perf_counter()
    try:
        result = warm_minimize(base, func, max_edit=index.max_edit, budget=budget)
    except DeltaIneligible as exc:
        index.count_fallback(exc.reason)
        return None
    except BudgetExceeded:
        raise
    except Exception:  # noqa: BLE001 — warm path must never break serving
        index.count_fallback("warm-error")
        return None
    form = result.form
    v0 = time.perf_counter()
    report = verify_form(form, func)
    verify_ms = (time.perf_counter() - v0) * 1000.0
    if not report:
        index.drop(job.content_hash)
        index.count_fallback("verify-failed")
        return None
    certificate = make_certificate(
        func,
        form,
        solver_salt=_SOLVER_VERSION,
        claimed_cost=form.num_literals,
        verified=VERIFIED_FULL,
        verify_ms=verify_ms,
    )
    extras: dict[str, Any] = {
        "comparisons": base.generation_comparisons,
        "delta": {
            "warm": True,
            "edit": len(base.func.on_set ^ func.on_set),
            "base_cost": base.cost,
        },
    }
    if result.covering_stats is not None:
        extras["covering"] = result.covering_stats
    index.count_warm_hit()
    return {
        "version": RECORD_VERSION,
        "kind": "engine_record",
        "job": job_to_dict(job),
        "rung": "exact",
        "literals": form.num_literals,
        "pseudoproducts": form.num_pseudoproducts,
        "candidates": result.num_candidates,
        "seconds": time.perf_counter() - t0,
        "optimal": result.covering_optimal,
        "truncated": False,
        "form": form_to_dict(form),
        "integrity": certificate,
        "extras": extras,
    }
