"""Cooperative budgets — deadlines, cancellation and ceilings that work
anywhere.

The engine's original stop mechanism was ``SIGALRM``, which only fires
on the main thread of a POSIX process: inline runs from a worker
thread, the ``repro serve`` request threads, and non-POSIX platforms
all silently lost their deadlines.  This module replaces that with
*cooperative* checking: the minimization inner loops call
:meth:`Budget.tick` every iteration (amortized to one integer decrement;
a full check every ``tick_every`` ticks), and a blown budget raises a
structured :class:`repro.errors.BudgetExceeded` from inside the loop —
on any thread, on any platform.  ``SIGALRM`` remains as a main-thread
*backstop* for code paths that predate the instrumentation (see
``repro.engine.scheduler._deadline``).

Two classes:

* :class:`CancelToken` — a shareable cancel flag (a wrapped
  :class:`threading.Event`).  One token can govern many budgets: the
  serving layer hands every in-flight request a token and sets it on
  drain or client abandonment.
* :class:`Budget` — deadline + optional memory ceiling + optional tick
  cap + a token.  :meth:`Budget.child` derives a per-attempt budget
  (e.g. one ladder rung) that shares the parent's token and can only
  tighten the deadline, so the request-level budget always wins.

Typical wiring::

    budget = Budget(seconds=0.2, memory_mb=512)
    try:
        result = minimize_spp(func, budget=budget)
    except BudgetExceeded as exc:
        ...  # exc.reason in {"deadline", "memory", "ticks", "cancelled"}

Memory is sampled from ``/proc/self/statm`` (current RSS) when
available, falling back to ``resource.getrusage`` peak RSS — a
best-effort watchdog, not an allocator-level cap (pair with the
scheduler's ``RLIMIT_AS`` cap for hard enforcement in pool workers).
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import BudgetExceeded, Cancelled

__all__ = ["Budget", "CancelToken", "BudgetExceeded", "Cancelled", "current_rss_mb"]

# How many ticks pass between full (time/memory/flag) checks by default.
# Inner-loop iterations here are tens of microseconds, so 1024 ticks
# bounds the cancellation latency to a few tens of milliseconds while
# keeping the per-iteration cost to one integer decrement.
DEFAULT_TICK_EVERY = 1024

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_mb() -> float | None:
    """Resident set size of this process in MiB, or None if unknown.

    Prefers ``/proc/self/statm`` (current RSS, can go down); falls back
    to ``resource.getrusage`` (peak RSS, monotone) off Linux.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # pragma: no cover — no resource module
        return None
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if os.uname().sysname == "Darwin":  # pragma: no cover
        return rss_kb / (1024 * 1024)
    return rss_kb / 1024


class CancelToken:
    """A cancel flag shareable across budgets (and threads).

    ``cancel()`` is idempotent and thread-safe; the first caller's
    ``reason`` wins and is reported in the :class:`Cancelled` raised by
    every budget sharing the token.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason = "cancelled"

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise Cancelled(self._reason)


class Budget:
    """Deadline + cancel token + optional memory/tick ceilings.

    ``tick()`` is the hot-path call: one integer decrement per
    invocation, a full :meth:`check` every ``tick_every`` ticks.
    ``check()`` is the explicit call for loop boundaries (step
    transitions, per-group work) where immediate enforcement matters.
    """

    __slots__ = (
        "deadline",
        "memory_mb",
        "max_ticks",
        "tick_every",
        "token",
        "_ticks",
        "_countdown",
    )

    def __init__(
        self,
        *,
        seconds: float | None = None,
        deadline: float | None = None,
        memory_mb: float | None = None,
        max_ticks: int | None = None,
        tick_every: int = DEFAULT_TICK_EVERY,
        token: CancelToken | None = None,
    ) -> None:
        if tick_every < 1:
            raise ValueError("tick_every must be positive")
        if deadline is None and seconds is not None and seconds > 0:
            deadline = time.monotonic() + seconds
        self.deadline = deadline
        self.memory_mb = memory_mb if memory_mb and memory_mb > 0 else None
        self.max_ticks = max_ticks
        self.tick_every = tick_every
        self.token = token if token is not None else CancelToken()
        self._ticks = 0
        self._countdown = tick_every

    # -- state ---------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self.token.cancelled

    @property
    def ticks(self) -> int:
        """Ticks consumed so far (work-proportional progress counter)."""
        return self._ticks

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel every computation sharing this budget's token."""
        self.token.cancel(reason)

    def remaining(self) -> float | None:
        """Seconds until the deadline (None if unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    # -- enforcement ---------------------------------------------------

    def check(self) -> None:
        """Raise if any ceiling is blown.  Safe to call at any rate that
        is not a per-iteration hot path (use :meth:`tick` there)."""
        self.token.raise_if_cancelled()
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise BudgetExceeded("deadline exceeded", reason="deadline")
        if self.max_ticks is not None and self._ticks >= self.max_ticks:
            raise BudgetExceeded(
                f"tick budget of {self.max_ticks} exhausted", reason="ticks"
            )
        if self.memory_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss > self.memory_mb:
                raise BudgetExceeded(
                    f"memory ceiling exceeded ({rss:.0f} MiB > "
                    f"{self.memory_mb:.0f} MiB)",
                    reason="memory",
                )

    def tick(self, n: int = 1) -> None:
        """Count ``n`` units of work; every ``tick_every`` ticks, run a
        full :meth:`check`.  The no-violation path costs two integer
        operations."""
        self._ticks += n
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = self.tick_every
            self.check()

    # -- derivation ----------------------------------------------------

    def child(
        self,
        *,
        seconds: float | None = None,
        memory_mb: float | None = None,
        max_ticks: int | None = None,
        tick_every: int | None = None,
    ) -> Budget:
        """A tighter budget sharing this one's cancel token.

        The child's deadline is the minimum of the parent's and
        ``now + seconds`` — a per-attempt allowance can never outlive
        the request it belongs to.
        """
        deadline = self.deadline
        if seconds is not None and seconds > 0:
            attempt = time.monotonic() + seconds
            deadline = attempt if deadline is None else min(deadline, attempt)
        return Budget(
            deadline=deadline,
            memory_mb=memory_mb if memory_mb is not None else self.memory_mb,
            max_ticks=max_ticks if max_ticks is not None else self.max_ticks,
            tick_every=tick_every if tick_every is not None else self.tick_every,
            token=self.token,
        )

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        remaining = self.remaining()
        parts = []
        if remaining is not None:
            parts.append(f"remaining={remaining:.3f}s")
        if self.memory_mb is not None:
            parts.append(f"memory_mb={self.memory_mb:.0f}")
        if self.max_ticks is not None:
            parts.append(f"max_ticks={self.max_ticks}")
        if self.cancelled:
            parts.append("cancelled")
        return f"Budget({', '.join(parts)})"
