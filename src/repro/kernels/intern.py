"""Interned direction-basis table with stable ids and cached pivots.

EPPP generation, the structure trie, and the coverage kernels all key
dictionaries by the RREF direction basis — a tuple of ints.  Many
pseudocubes share the same basis (that sharing *is* Theorem 1), but the
tuples arrive from independent ``insert_vector`` calls, so equal bases
are usually distinct objects and every dict probe pays a full tuple
compare after the hash.  Interning collapses equal bases to one
canonical tuple, making the identity fast-path inside ``dict`` lookups
hit and keeping one copy of each basis alive instead of thousands.

Beyond canonicalisation the table hands out *stable integer ids*
(assigned densely in first-intern order) so columnar stores can key
buckets and arrays by a small int instead of a tuple, and caches the
pivot tuple of each distinct basis — the per-insert
``[gf2.pivot_of(b) for b in basis]`` recomputation in the partition
trie was pure waste, since pivots are a function of the basis alone
(the same observation behind the cached ``pivot_mask`` slot on
:class:`~repro.core.pseudocube.Pseudocube`).
"""

from __future__ import annotations

from repro.core import gf2

__all__ = ["BasisInterner"]


class BasisInterner:
    """Canonicalise basis tuples: equal tuples in, one shared object out.

    A dict-backed intern table mapping each distinct basis to a dense
    integer id.  ``intern`` returns the first tuple seen for each
    distinct value, so callers that key dicts by the result get
    identity-equal keys for structurally equal bases; ``intern_id``
    returns the id itself for columnar stores.  Per-basis derived data
    (the pivot tuple) is cached by id and computed at most once.
    """

    __slots__ = ("_ids", "_bases", "_pivots")

    def __init__(self) -> None:
        self._ids: dict[tuple[int, ...], int] = {}
        self._bases: list[tuple[int, ...]] = []
        self._pivots: list[tuple[int, ...] | None] = []

    def intern(self, basis: tuple[int, ...]) -> tuple[int, ...]:
        ident = self._ids.get(basis)
        if ident is None:
            self._ids[basis] = len(self._bases)
            self._bases.append(basis)
            self._pivots.append(None)
            return basis
        return self._bases[ident]

    def intern_id(self, basis: tuple[int, ...]) -> int:
        """The stable dense id of ``basis``, assigning one if new.

        Ids are allocated in first-intern order, so iteration orders
        keyed by id match orders keyed by the interned tuple exactly.
        """
        ident = self._ids.get(basis)
        if ident is None:
            ident = len(self._bases)
            self._ids[basis] = ident
            self._bases.append(basis)
            self._pivots.append(None)
        return ident

    def lookup_id(self, basis: tuple[int, ...]) -> int | None:
        """The id of ``basis`` if already interned, else None (no insert)."""
        return self._ids.get(basis)

    def basis_of(self, ident: int) -> tuple[int, ...]:
        """The canonical basis tuple for a stable id."""
        return self._bases[ident]

    def pivots(self, basis: tuple[int, ...]) -> tuple[int, ...]:
        """Cached pivot positions of ``basis`` (interning it if new)."""
        return self.pivots_of(self.intern_id(basis))

    def pivots_of(self, ident: int) -> tuple[int, ...]:
        """Cached pivot positions for an interned basis id."""
        cached = self._pivots[ident]
        if cached is None:
            cached = tuple(gf2.pivot_of(b) for b in self._bases[ident])
            self._pivots[ident] = cached
        return cached

    def bases(self) -> list[tuple[int, ...]]:
        """All distinct bases in id order (index ``i`` has id ``i``)."""
        return list(self._bases)

    def __len__(self) -> int:
        return len(self._bases)

    def clear(self) -> None:
        self._ids.clear()
        self._bases.clear()
        self._pivots.clear()
