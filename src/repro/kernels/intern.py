"""Interned direction-basis table.

EPPP generation, the structure trie, and the coverage kernels all key
dictionaries by the RREF direction basis — a tuple of ints.  Many
pseudocubes share the same basis (that sharing *is* Theorem 1), but the
tuples arrive from independent ``insert_vector`` calls, so equal bases
are usually distinct objects and every dict probe pays a full tuple
compare after the hash.  Interning collapses equal bases to one
canonical tuple, making the identity fast-path inside ``dict`` lookups
hit and keeping one copy of each basis alive instead of thousands.
"""

from __future__ import annotations

__all__ = ["BasisInterner"]


class BasisInterner:
    """Canonicalise basis tuples: equal tuples in, one shared object out.

    A plain dict-backed intern table.  ``intern`` returns the first
    tuple seen for each distinct value, so callers that key dicts by
    the result get identity-equal keys for structurally equal bases.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[tuple[int, ...], tuple[int, ...]] = {}

    def intern(self, basis: tuple[int, ...]) -> tuple[int, ...]:
        canonical = self._table.get(basis)
        if canonical is None:
            self._table[basis] = basis
            return basis
        return canonical

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()
