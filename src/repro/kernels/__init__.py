"""Bit-parallel coverage/membership kernels.

The minimization inner loops all reduce to one question — *which of
these rows does this candidate cover?* — asked thousands of times per
covering problem.  This package answers it with int bit-masks built in
structure-grouped passes (:mod:`repro.kernels.coverage`) instead of
per-point generator enumeration, and provides the interned-basis table
(:mod:`repro.kernels.intern`) the grouping dictionaries share keys
through.

:mod:`repro.kernels.bitmat` packs the resulting column masks into
uint64 matrices so the covering greedy's per-round gain computation is
a handful of NumPy ops (``HAVE_NUMPY`` gates the optional accelerator;
solvers fall back to the pure-Python heap path without it).
"""

from repro.kernels.bitmat import HAVE_NUMPY, BitMatrix
from repro.kernels.coverage import (
    build_cube_problem,
    build_problem,
    coverage_masks,
    cube_coverage_masks,
)
from repro.kernels.intern import BasisInterner

__all__ = [
    "HAVE_NUMPY",
    "BasisInterner",
    "BitMatrix",
    "build_cube_problem",
    "build_problem",
    "coverage_masks",
    "cube_coverage_masks",
]
