"""Packed bit-matrix acceleration for covering solvers.

The covering loops spend most of their time answering one vector
question — *how many uncovered rows does each column still cover?* —
once per selection round and once per improvement pass.  With columns
as Python ints that is one big-int ``&`` + ``bit_count`` per column per
round; with thousands of columns the interpreter loop dominates.

:class:`BitMatrix` packs the column masks once into a ``(columns,
words)`` ``uint64`` array so the whole gain vector is three NumPy ops
(``&``, ``bitwise_count``, row-sum).  NumPy is an *optional*
accelerator: when it is missing (``HAVE_NUMPY`` is False) the solvers
keep the pure-Python CELF heap path, and both paths are pinned
bit-for-bit equivalent by ``tests/minimize/test_lazy_greedy.py`` — the
key arithmetic (``gain / cost`` in IEEE-754 double) and the tie-break
order (key, then lowest column index) are identical by construction.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

try:  # gated: the container may lack numpy; solvers fall back to heaps
    import numpy as _np

    HAVE_NUMPY = hasattr(_np, "bitwise_count")
except ImportError:  # pragma: no cover — exercised via the fallback path
    _np = None
    HAVE_NUMPY = False

# ``REPRO_NO_NUMPY=1`` pins the pure-Python paths fleet-wide — the same
# switch ``kernels.gf2mat`` honours — so one env var exercises every
# fallback at once (the CI fallback-parity leg relies on this).
if os.environ.get("REPRO_NO_NUMPY"):
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "BitMatrix", "select_greedy"]

# Below this column count the per-call numpy overhead (packing aside,
# each round is ~10 vector dispatches) beats the heap's constant factor
# only marginally; the heap path also keeps tiny problems allocation-free.
MIN_COLUMNS_FOR_VECTOR = 192


class BitMatrix:
    """Column masks packed into a ``(num_columns, words)`` uint64 array.

    ``words = ceil(num_rows / 64)``; bit ``r`` of column ``j`` lives in
    ``matrix[j, r // 64] >> (r % 64)``.  Costs are carried alongside as
    an int64 vector so selection keys are computed without touching the
    Python cost list.
    """

    __slots__ = ("num_rows", "num_columns", "words", "matrix", "costs", "universe")

    def __init__(self, masks: Sequence[int], costs: Sequence[int], num_rows: int) -> None:
        if not HAVE_NUMPY:  # pragma: no cover — guarded by callers
            raise RuntimeError("BitMatrix requires numpy with bitwise_count")
        self.num_rows = num_rows
        self.num_columns = len(masks)
        words = max((num_rows + 63) // 64, 1)
        self.words = words
        nbytes = words * 8
        packed = b"".join(m.to_bytes(nbytes, "little") for m in masks)
        matrix = _np.frombuffer(packed, dtype="<u8").reshape(self.num_columns, words)
        self.matrix = matrix.astype(_np.uint64, copy=False)
        self.costs = _np.asarray(list(costs), dtype=_np.int64)
        self.universe = self.pack(((1 << num_rows) - 1) if num_rows else 0)

    def pack(self, mask: int):
        """One Python int mask → a ``(words,)`` uint64 vector."""
        return _np.frombuffer(
            mask.to_bytes(self.words * 8, "little"), dtype="<u8"
        ).astype(_np.uint64, copy=False)

    def unpack(self, vec) -> int:
        """Inverse of :meth:`pack`."""
        return int.from_bytes(_np.ascontiguousarray(vec, dtype="<u8").tobytes(), "little")

    def gains(self, covered):
        """Per-column count of still-uncovered rows each column covers."""
        return _np.bitwise_count(self.matrix & ~covered).sum(axis=1, dtype=_np.int64)


def select_greedy(
    bm: BitMatrix,
    strategy: str,
    forbidden: int,
    covered_mask: int,
    budget=None,
) -> list[int]:
    """Eager greedy selection rounds on the packed matrix.

    Selects columns until the cover is complete and returns their
    indices in selection order.  Bit-for-bit equivalent to the CELF
    heap in :func:`repro.minimize.covering._heap_select`: the ``ratio``
    strategy maximises ``(gain / cost, gain, -index)`` and the ``gain``
    strategy ``(gain, -cost, -index)``, with the division done in the
    same IEEE-754 double arithmetic as the Python path.

    ``budget`` is ticked once per selection round; raises ``ValueError``
    when no usable column covers a remaining row (infeasible, matching
    the heap path).
    """
    covered = bm.pack(covered_mask).copy()
    universe = bm.universe
    matrix = bm.matrix
    costs = bm.costs
    ratio = strategy == "ratio"
    picked: list[int] = []
    while not bool((covered == universe).all()):
        if budget is not None:
            budget.tick()
        gains = _np.bitwise_count(matrix & ~covered).sum(axis=1, dtype=_np.int64)
        if 0 <= forbidden < gains.shape[0]:
            gains[forbidden] = 0
        gain_max = int(gains.max(initial=0))
        if gain_max == 0:
            raise ValueError("covering problem is infeasible")
        if ratio:
            key = gains / costs
            cand = _np.flatnonzero(key == key.max())
            if cand.size > 1:
                g = gains[cand]
                cand = cand[g == g.max()]
        else:
            cand = _np.flatnonzero(gains == gain_max)
            if cand.size > 1:
                c = costs[cand]
                cand = cand[c == c.min()]
        j = int(cand[0])
        picked.append(j)
        covered |= matrix[j]
    return picked
