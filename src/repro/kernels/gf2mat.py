"""Bit-packed GF(2) linear algebra — the batched counterpart of
:mod:`repro.core.gf2`.

Every GF(2) vector over ``B^n`` with ``n <= 64`` fits one ``uint64``,
so a *batch* of vectors is a 1-D uint64 array and a *batch of bases* is
a 2-D ``(batch, rank)`` uint64 matrix — row ``r`` of basis ``b`` lives
in ``mat[b, r]``, padded with zero rows past each basis' rank when
ranks are mixed.  The generation front-end only ever holds bases of one
uniform rank per step (every degree-``k`` pseudocube has a rank-``k``
direction space), which is what makes whole-step batching practical:
one ``(groups, degree)`` matrix per step, no padding, no ragged rows.

The functions here mirror the :mod:`repro.core.gf2` API — ``rref``,
``insert_vector``/``insert_reduced_batch``, ``reduce_vectors``,
``pivot_masks``, ``span_points``, ``intersect_spaces`` — and are pinned
bit-identical to it by ``tests/kernels/test_gf2mat.py``.  NumPy is an
*optional* accelerator: ``AVAILABLE`` is False when numpy (with
``bitwise_count``) is missing **or** the ``REPRO_NO_NUMPY`` environment
variable is set, and every caller keeps the pure-Python path as the
pinned fallback, so outputs are unchanged to the bit either way.
"""

from __future__ import annotations

import os

try:  # gated: the container may lack numpy; callers fall back to core.gf2
    import numpy as _np

    _HAVE = hasattr(_np, "bitwise_count")
except ImportError:  # pragma: no cover — exercised via the fallback path
    _np = None
    _HAVE = False

#: Runtime gate consulted per call site (monkeypatchable in tests);
#: ``REPRO_NO_NUMPY=1`` pins the pure-Python ``core.gf2`` path fleet-wide.
AVAILABLE = _HAVE and not os.environ.get("REPRO_NO_NUMPY")

#: Vectors wider than this cannot share a uint64 with a tag in the
#: packed dedup keys; the generation front-end falls back past it.
MAX_PACKED_N = 32

__all__ = [
    "AVAILABLE",
    "MAX_PACKED_N",
    "pack_vectors",
    "unpack_vectors",
    "pack_basis",
    "unpack_basis",
    "rref",
    "insert_vector",
    "reduce_vectors",
    "insert_reduced_batch",
    "pivot_masks",
    "basis_literals",
    "span_points",
    "intersect_spaces",
    "pair_split",
    "unique_sorted_first",
    "unique_with_inverse",
]

_U64 = "uint64"


def _u(x):
    return _np.uint64(x)


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------

def pack_vectors(vectors):
    """A sequence of int vectors as a uint64 array."""
    return _np.array(list(vectors), dtype=_U64)


def unpack_vectors(arr) -> list[int]:
    """Inverse of :func:`pack_vectors` (Python ints)."""
    return [int(v) for v in arr.tolist()]


def pack_basis(basis: tuple[int, ...]):
    """One RREF basis tuple as a ``(rank,)`` uint64 row vector."""
    return _np.array(basis, dtype=_U64)


def unpack_basis(row, rank: int | None = None) -> tuple[int, ...]:
    """A packed basis row back to the canonical tuple form."""
    vals = row.tolist()
    if rank is not None:
        vals = vals[:rank]
    return tuple(int(v) for v in vals if v)


# ----------------------------------------------------------------------
# Single-basis operations (API mirror; the batched forms are below)
# ----------------------------------------------------------------------

def _lowbit(arr):
    """Lowest set bit of each element (0 stays 0)."""
    return arr & (_np.uint64(0) - arr)


def rref(vectors) -> tuple[int, ...]:
    """Canonical RREF basis of the span — packed
    :func:`repro.core.gf2.rref`.

    The elimination is sequential in the input vectors (RREF is), but
    each insertion updates the whole basis in one vector op.
    """
    rows = _np.zeros(0, dtype=_U64)
    for v in _np.asarray(vectors, dtype=_U64):
        rows = _insert_one(rows, v)
    return tuple(int(b) for b in rows.tolist())


def _insert_one(rows, v):
    """Insert ``v`` into a packed RREF basis; returns the new row array
    (the same array when ``v`` was dependent)."""
    if rows.size:
        # Reduce v by every row whose pivot it contains.
        piv = _lowbit(rows)
        for b, p in zip(rows.tolist(), piv.tolist()):
            if int(v) & p:
                v = v ^ _u(b)
    if int(v) == 0:
        return rows
    low = int(v) & -int(v)
    if rows.size:
        rows = _np.where((rows & _u(low)) != 0, rows ^ v, rows)
        pos = int(_np.count_nonzero(_lowbit(rows) < _u(low)))
    else:
        pos = 0
    return _np.concatenate([rows[:pos], _np.array([v], dtype=_U64), rows[pos:]])


def insert_vector(basis: tuple[int, ...], v: int) -> tuple[int, ...]:
    """Packed :func:`repro.core.gf2.insert_vector` (same contract: the
    input tuple is returned unchanged when ``v`` is in the span)."""
    rows = pack_basis(basis)
    out = _insert_one(rows, _u(v))
    if out is rows:
        return basis
    return tuple(int(b) for b in out.tolist())


def reduce_vectors(basis: tuple[int, ...], vectors):
    """Batched :func:`repro.core.gf2.reduce_vector`: reduce every
    element of ``vectors`` modulo ``span(basis)`` at once.

    One pass per basis row (rank passes total), each a whole-batch
    vector op.
    """
    vs = _np.asarray(vectors, dtype=_U64).copy()
    for b in basis:
        low = _u(b & -b)
        vs ^= _np.where((vs & low) != 0, _u(b), _u(0))
    return vs


def pivot_masks(mat):
    """Pivot-position mask of each basis in a ``(batch, rank)`` matrix —
    batched :func:`repro.core.gf2.pivot_mask`.  Padding zero rows
    contribute nothing."""
    if mat.ndim == 1:
        mat = mat[None, :]
    if mat.shape[1] == 0:
        return _np.zeros(mat.shape[0], dtype=_U64)
    return _np.bitwise_or.reduce(_lowbit(mat), axis=1)


def basis_literals(mat, n: int):
    """Literal count of any pseudocube with each basis — batched
    ``_basis_literals``: ``sum(popcount(row) - 1) + (n - rank)``.

    ``mat`` is ``(batch, rank)`` with **uniform** rank (no padding), the
    layout of one generation step.
    """
    if mat.ndim == 1:
        mat = mat[None, :]
    rank = mat.shape[1]
    if rank == 0:
        return _np.full(mat.shape[0], n, dtype=_np.int64)
    weights = _np.bitwise_count(mat).sum(axis=1, dtype=_np.int64)
    return weights - rank + (n - rank)


def span_points(basis: tuple[int, ...], offset: int = 0):
    """The coset ``offset + span(basis)`` in the exact Gray-code order
    of :func:`repro.core.gf2.span_points`, as a uint64 array.

    Built by subset-XOR doubling, then reindexed through the Gray code
    ``i ^ (i >> 1)`` so element ``i`` matches the generator's ``i``-th
    yield.
    """
    combos = _np.array([offset], dtype=_U64)
    for b in basis:
        combos = _np.concatenate([combos, combos ^ _u(b)])
    idx = _np.arange(combos.size, dtype=_np.uint64)
    return combos[idx ^ (idx >> _u(1))]


def intersect_spaces(
    basis_a: tuple[int, ...], basis_b: tuple[int, ...], n: int
) -> tuple[int, ...]:
    """Packed Zassenhaus — :func:`repro.core.gf2.intersect_spaces`.

    Pairs ``(v, v)`` / ``(w, 0)`` are packed into single uint64 words
    (first component in the low ``n`` bits), so this requires
    ``2n <= 64``.
    """
    if 2 * n > 64:
        raise ValueError(f"intersect_spaces needs 2n <= 64, got n={n}")
    rows = _np.zeros(0, dtype=_U64)
    for v in basis_a:
        rows = _insert_one(rows, _u(v | (v << n)))
    for w in basis_b:
        rows = _insert_one(rows, _u(w))
    low_mask = _u((1 << n) - 1)
    inter = rows[(rows & low_mask) == 0] >> _u(n)
    return rref(inter)


# ----------------------------------------------------------------------
# The generation-step kernels (uniform-rank batches)
# ----------------------------------------------------------------------

def insert_reduced_batch(parents, deltas):
    """Insert one **already-reduced** nonzero vector into each parent
    basis of a uniform-rank batch.

    ``parents`` is ``(batch, rank)`` (rows in RREF, pivots increasing
    along the row axis); ``deltas`` is ``(batch,)`` with every delta
    reduced modulo its parent (zero on the parent's pivot positions)
    and nonzero.  Returns the ``(batch, rank + 1)`` child bases, again
    in RREF with increasing pivots — exactly
    ``gf2.insert_vector(parent, delta)`` row for row.
    """
    rank = parents.shape[1] if parents.ndim == 2 else 0
    if rank == 0:
        return deltas[:, None].copy()
    pivot = _lowbit(deltas)
    # Rows containing the delta's pivot position absorb the delta; row
    # pivots are unchanged (a row's own pivot is below any absorbed bit).
    cleaned = _np.where(
        (parents & pivot[:, None]) != 0, parents ^ deltas[:, None], parents
    )
    # Append the delta, then sort each row set by pivot value: parent
    # pivots are already increasing and all rank+1 pivots are distinct,
    # so the row-wise argsort is exactly the RREF insertion slot.  The
    # gather uses flat take — np.take_along_axis's broadcasting wrapper
    # costs more than this whole function at generation-step sizes.
    combo = _np.concatenate([cleaned, deltas[:, None]], axis=1)
    order = _lowbit(combo).argsort(axis=1)
    width = rank + 1
    flat_base = _np.arange(0, deltas.shape[0] * width, width)[:, None]
    return combo.take(order + flat_base)


# pair_split is a pure function of (sizes, limit) and step shapes repeat
# heavily — the bench repeats each function and real traffic is mostly
# near-duplicate functions — so small decoded streams are memoized.
# Entries are immutable by convention: callers only read the arrays.
_PAIR_CACHE: dict[tuple[bytes, int | None], tuple] = {}
_PAIR_CACHE_MAX = 128
_PAIR_CACHE_MAX_PAIRS = 1 << 16


def pair_split(sizes, limit: int | None = None):
    """Row-major upper-triangle pair indices for a whole batch of
    groups at once.

    Given group sizes ``[g_0, g_1, ...]`` returns ``(group, i, j)``
    arrays of length ``sum g*(g-1)/2``, ordered exactly like the nested
    scalar loops: groups in order, within a group ``(0,1), (0,2), ...,
    (0,g-1), (1,2), ...`` — the order the pinned pure-Python path
    visits pairs in, which is what makes first-occurrence dedup
    reproduce its insertion order.

    ``limit`` truncates the stream to its first ``limit`` pairs without
    materializing the rest — the generation front-end passes its
    comparison-cap bound so an overflowing step costs O(cap), not
    O(pairs), exactly like the scalar loop's early break.

    Callers must treat the returned arrays as read-only (they may be
    served from a small memo keyed on the size vector).
    """
    sizes = _np.asarray(sizes, dtype=_np.int64)
    key = (sizes.tobytes(), limit)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        return cached
    out = _pair_split_compute(sizes, limit)
    if out[0].size <= _PAIR_CACHE_MAX_PAIRS:
        if len(_PAIR_CACHE) >= _PAIR_CACHE_MAX:
            _PAIR_CACHE.pop(next(iter(_PAIR_CACHE)))
        _PAIR_CACHE[key] = out
    return out


def _pair_split_compute(sizes, limit: int | None):
    counts = sizes * (sizes - 1) // 2
    cum = _np.cumsum(counts)
    total = int(cum[-1]) if cum.size else 0
    take = counts
    if limit is not None and limit < total:
        ngroups = int(_np.searchsorted(cum, limit, side="left")) + 1
        take = counts[:ngroups].copy()
        take[ngroups - 1] -= int(cum[ngroups - 1]) - limit
        total = limit
    group = _np.repeat(_np.arange(take.shape[0], dtype=_np.int64), take)
    offsets = _np.concatenate([_np.zeros(1, dtype=_np.int64), _np.cumsum(take)])
    r = _np.arange(total, dtype=_np.int64) - offsets[group]
    g = sizes[group]
    b = 2 * g - 1
    # Row i starts at rank i*(b-i)/2; invert the quadratic with a float
    # sqrt, then correct the (at most off-by-one) rounding exactly.
    i = ((b - _np.sqrt((b * b - 8 * r).astype(_np.float64))) // 2).astype(_np.int64)
    i = _np.clip(i, 0, g - 2)
    too_big = i * (b - i) // 2 > r
    i = _np.where(too_big, i - 1, i)
    nxt = (i + 1) * (b - i - 1) // 2
    i = _np.where(nxt <= r, i + 1, i)
    j = r - i * (b - i) // 2 + i + 1
    return group, i, j


# Dense first-occurrence dedup scratch.  For narrow keys a direct
# scatter into a table beats any sort: write positions back-to-front so
# the lowest (first) stream position wins, then one linear scan of the
# table yields the distinct keys in sorted order with their first
# occurrences.  The table is epoch-tagged (entries below ``_DENSE_BASE``
# are stale) so it is reused across calls without clearing.
_DENSE_MAXVAL = 1 << 16
_DENSE_TABLE = None
_DENSE_BASE = 0


def _dense_scatter(keys, maxval: int):
    """Scatter stream positions into the scratch table, back-to-front.
    Returns ``(view, base)``: ``view[k] - base`` is the first stream
    position of key ``k`` wherever ``view >= base``; smaller entries
    are stale leftovers from earlier calls."""
    global _DENSE_TABLE, _DENSE_BASE
    if _DENSE_TABLE is None or _DENSE_TABLE.size < maxval:
        _DENSE_TABLE = _np.zeros(max(maxval, 1 << 12), dtype=_np.int64)
        _DENSE_BASE = 1
    size = int(keys.size)
    base = _DENSE_BASE
    _DENSE_BASE = base + size
    table = _DENSE_TABLE
    table[keys[::-1]] = _np.arange(base + size - 1, base - 1, -1, dtype=_np.int64)
    return table[:maxval], base


def _dense_first(keys, maxval: int):
    """(sorted distinct keys, first occurrence index of each) by direct
    scatter — no sort.  Requires ``maxval <= _DENSE_MAXVAL``."""
    view, base = _dense_scatter(keys, maxval)
    fresh = view >= base
    uniq = fresh.nonzero()[0].astype(_U64)
    return uniq, view[fresh] - base


def dense_first_inverse(keys, maxval: int):
    """(first occurrence index per sorted distinct key, inverse map
    from each stream position to its key's dense rank) — the
    ``np.unique(..., return_index=True, return_inverse=True)`` pair for
    narrow keys, with no sort."""
    view, base = _dense_scatter(keys, maxval)
    fresh = view >= base
    rank = fresh.cumsum()
    return view[fresh] - base, rank[keys] - 1


def _argsort_keys(keys, maxval: int | None):
    """Argsort of integer keys, choosing the cheapest kind.

    numpy's stable sort on (u)int16 is a radix sort — ~3× faster than
    the uint64 quicksort at generation-step sizes — so keys known to be
    narrow are downcast first.  Returns ``(order, stable)``: when
    ``stable`` is False, equal keys appear in arbitrary order.
    """
    if maxval is not None and maxval < (1 << 16):
        return keys.astype(_np.uint16).argsort(kind="stable"), True
    return keys.argsort(), False


def unique_sorted_first(keys, maxval: int | None = None):
    """``np.unique(keys, return_index=True)``, cheaper.

    With narrow keys (``maxval < 2**16``) a radix argsort is stable and
    first occurrences fall out of the sorted order directly; otherwise
    a plain quicksort loses the tie order and each key's first
    occurrence is recovered as a per-run minimum over original
    positions — both beat the stable uint64 argsort ``np.unique``
    needs for ``return_index``.  Narrower still (``maxval`` at most
    2**16) skips sorting entirely via the dense scatter table.
    """
    if (
        maxval is not None
        and keys.size
        and 0 < maxval <= _DENSE_MAXVAL
        and maxval <= max(4096, int(keys.size) << 5)
    ):
        return _dense_first(keys, maxval)
    order, stable = _argsort_keys(keys, maxval)
    sk = keys[order]
    run_start = _np.empty(sk.size, dtype=bool)
    run_start[0] = True
    _np.not_equal(sk[1:], sk[:-1], out=run_start[1:])
    run_idx = run_start.nonzero()[0]
    if stable:
        return sk[run_idx], order[run_idx]
    return sk[run_idx], _np.minimum.reduceat(order, run_idx)


def unique_with_inverse(keys, maxval: int | None = None):
    """``np.unique(keys, return_inverse=True)``, cheaper (radix argsort
    for narrow keys, no wrapper overhead)."""
    order, _ = _argsort_keys(keys, maxval)
    sk = keys[order]
    run_start = _np.empty(sk.size, dtype=bool)
    run_start[0] = True
    _np.not_equal(sk[1:], sk[:-1], out=run_start[1:])
    inv = _np.empty(keys.size, dtype=_np.int64)
    inv[order] = run_start.cumsum() - 1
    return sk[run_start.nonzero()[0]], inv
