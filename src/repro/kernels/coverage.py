"""Structure-grouped coverage kernels.

Covering problems represent each candidate as an int mask over the row
list (bit ``i`` set iff the candidate covers ``rows[i]``).  The legacy
construction enumerated every candidate's ``2^m`` points through a
generator and probed a dict per point; this module replaces it with a
**structure-grouped** pass, exactly the Theorem 1 grouping one level
down: candidates are bucketed by direction basis, and each group's span
geometry (the XOR combinations of its basis vectors) is computed once
and shared by every member.

Per-group mask construction is specialised by degree:

* ``m <= 4`` — the span's XOR offsets are precomputed per group and the
  per-candidate mask is a single unrolled ``|``-chain of dict probes
  (no generator frames, no per-point loop machinery; this is where the
  measured 2–3× over the legacy path comes from, because real EPPP sets
  are dominated by degree 2–4 candidates);
* ``m >= 5`` — the span offset list is materialised by doubling
  (``span += [s ^ b for s in span]``) and shared across the group.

Degree-0 groups collapse to one dict probe per candidate.  Points
outside the row set (don't-cares) simply miss the dict and contribute
nothing, matching the legacy semantics.

Cubes (the SP side) get a genuinely bit-parallel path: the row list is
transposed once into per-variable bitboards and each cube's mask is an
AND-chain of literal boards — ``O(fixed literals)`` big-int operations
per cube instead of ``2^free`` point probes.

Every kernel takes the cooperative :class:`~repro.budget.Budget` and
ticks it once per group batch (one tick unit per candidate), so
cancellation and deadlines keep firing inside covering construction.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.budget import Budget
from repro.core.pseudocube import Pseudocube
from repro.minimize.covering import CoveringProblem
from repro.minimize.cost import literal_cost
from repro.minimize.qm import Cube

__all__ = [
    "coverage_masks",
    "masks_and_costs",
    "cube_coverage_masks",
    "build_problem",
    "build_cube_problem",
]


def _masks_and_costs(
    rows: Sequence[int],
    candidates: Sequence[Pseudocube],
    cost_of,
    budget: Budget | None,
) -> tuple[list[int], list[int]]:
    """The shared structure-grouped pass.

    Returns per-candidate ``(masks, costs)`` in candidate order.  When
    ``cost_of`` is None or :func:`~repro.minimize.cost.literal_cost`,
    costs come from the basis-literal formula inlined once per group
    (the cost of a pseudocube's CEX depends on its direction basis
    alone); any other callable is invoked per candidate.
    """
    ncand = len(candidates)
    masks = [0] * ncand
    costs = [0] * ncand
    if not rows or not ncand:
        return masks, costs
    point_bit = {p: 1 << pos for pos, p in enumerate(rows)}
    g = point_bit.get
    fast_cost = cost_of is None or cost_of is literal_cost
    groups: dict[tuple[int, ...], list[int]] = {}
    groups_get = groups.get
    for idx, pc in enumerate(candidates):
        b = pc.basis
        grp = groups_get(b)
        if grp is None:
            groups[b] = [idx]
        else:
            grp.append(idx)
    cands = candidates
    n = cands[0].n
    bit_count = int.bit_count
    for basis, idxs in groups.items():
        if budget is not None:
            budget.tick(len(idxs))
        m = len(basis)
        if fast_cost:
            gcost = n - m
            for b in basis:
                gcost += bit_count(b) - 1
            if gcost < 1:
                gcost = 1
        if m == 0:
            for idx in idxs:
                pc = cands[idx]
                masks[idx] = g(pc.anchor, 0)
                costs[idx] = gcost if fast_cost else cost_of(pc)
        elif m == 1:
            b0 = basis[0]
            for idx in idxs:
                pc = cands[idx]
                a = pc.anchor
                masks[idx] = g(a, 0) | g(a ^ b0, 0)
                costs[idx] = gcost if fast_cost else cost_of(pc)
        elif m == 2:
            b0, b1 = basis
            c3 = b0 ^ b1
            for idx in idxs:
                pc = cands[idx]
                a = pc.anchor
                masks[idx] = g(a, 0) | g(a ^ b0, 0) | g(a ^ b1, 0) | g(a ^ c3, 0)
                costs[idx] = gcost if fast_cost else cost_of(pc)
        elif m == 3:
            b0, b1, b2 = basis
            c3 = b0 ^ b1
            c5 = b0 ^ b2
            c6 = b1 ^ b2
            c7 = c3 ^ b2
            for idx in idxs:
                pc = cands[idx]
                a = pc.anchor
                masks[idx] = (
                    g(a, 0) | g(a ^ b0, 0) | g(a ^ b1, 0) | g(a ^ c3, 0)
                    | g(a ^ b2, 0) | g(a ^ c5, 0) | g(a ^ c6, 0) | g(a ^ c7, 0)
                )
                costs[idx] = gcost if fast_cost else cost_of(pc)
        elif m == 4:
            b0, b1, b2, b3 = basis
            c3 = b0 ^ b1
            c5 = b0 ^ b2
            c6 = b1 ^ b2
            c7 = c3 ^ b2
            c9 = b0 ^ b3
            c10 = b1 ^ b3
            c11 = c3 ^ b3
            c12 = b2 ^ b3
            c13 = c5 ^ b3
            c14 = c6 ^ b3
            c15 = c7 ^ b3
            for idx in idxs:
                pc = cands[idx]
                a = pc.anchor
                masks[idx] = (
                    g(a, 0) | g(a ^ b0, 0) | g(a ^ b1, 0) | g(a ^ c3, 0)
                    | g(a ^ b2, 0) | g(a ^ c5, 0) | g(a ^ c6, 0) | g(a ^ c7, 0)
                    | g(a ^ b3, 0) | g(a ^ c9, 0) | g(a ^ c10, 0) | g(a ^ c11, 0)
                    | g(a ^ c12, 0) | g(a ^ c13, 0) | g(a ^ c14, 0) | g(a ^ c15, 0)
                )
                costs[idx] = gcost if fast_cost else cost_of(pc)
        else:
            span = [0]
            for b in basis:
                span += [s ^ b for s in span]
            for idx in idxs:
                pc = cands[idx]
                a = pc.anchor
                acc = 0
                for s in span:
                    acc |= g(a ^ s, 0)
                masks[idx] = acc
                costs[idx] = gcost if fast_cost else cost_of(pc)
    return masks, costs


def coverage_masks(
    rows: Sequence[int],
    candidates: Sequence[Pseudocube],
    *,
    budget: Budget | None = None,
) -> list[int]:
    """Covering-row masks for pseudocube ``candidates`` over ``rows``.

    ``masks[i]`` has bit ``j`` set iff ``rows[j] in candidates[i]``.
    Rows the candidate does not contain — and candidate points outside
    ``rows`` (e.g. don't-cares) — contribute nothing.
    """
    masks, _ = _masks_and_costs(rows, candidates, None, budget)
    return masks


def masks_and_costs(
    rows: Sequence[int],
    candidates: Sequence[Pseudocube],
    *,
    cost_of=literal_cost,
    budget: Budget | None = None,
) -> tuple[list[int], list[int]]:
    """Per-candidate ``(masks, costs)`` *before* the zero-mask drop.

    This is :func:`build_problem` minus the final filter: candidate ``i``
    keeps its position even when it covers no row.  Context snapshots
    (:mod:`repro.delta`) need the undropped arrays, because a candidate
    that is useless for the base on-set can start covering rows after a
    small edit.
    """
    return _masks_and_costs(rows, candidates, cost_of, budget)


def build_problem(
    rows: Sequence[int],
    candidates: Sequence[Pseudocube],
    *,
    cost_of=literal_cost,
    budget: Budget | None = None,
) -> CoveringProblem[Pseudocube]:
    """A :class:`CoveringProblem` over ``rows`` with pseudocube columns.

    Produces exactly what ``build_covering(rows, candidates,
    covered_rows_of=points, cost_of=cost_of)`` produced — same column
    order, same dropped zero-coverage candidates — via the grouped
    kernel instead of per-point enumeration.
    """
    masks, costs = _masks_and_costs(rows, candidates, cost_of, budget)
    if 0 not in masks:
        return CoveringProblem(len(rows), masks, costs, list(candidates))
    keep = [i for i, mask in enumerate(masks) if mask]
    return CoveringProblem(
        len(rows),
        [masks[i] for i in keep],
        [costs[i] for i in keep],
        [candidates[i] for i in keep],
    )


def _row_boards(rows: Sequence[int], n: int) -> list[int]:
    """Transpose the row list: ``boards[v]`` is the bitboard of row
    positions whose point has variable ``v`` set."""
    boards = [0] * n
    for pos, p in enumerate(rows):
        bit = 1 << pos
        while p:
            low = p & -p
            boards[low.bit_length() - 1] |= bit
            p ^= low
    return boards


def cube_coverage_masks(
    rows: Sequence[int],
    cubes: Sequence[Cube],
    n: int,
    *,
    budget: Budget | None = None,
) -> list[int]:
    """Covering-row masks for QM ``cubes``: one AND-chain of literal
    bitboards per cube — ``O(fixed literals)`` big-int ops instead of
    ``2^free`` point probes."""
    ncubes = len(cubes)
    masks = [0] * ncubes
    if not rows or not ncubes:
        return masks
    boards = _row_boards(rows, n)
    universe = (1 << len(rows)) - 1
    inv = [universe ^ b for b in boards]
    for idx, cube in enumerate(cubes):
        if budget is not None:
            budget.tick()
        acc = universe
        values = cube.values
        fixed = ((1 << n) - 1) & ~cube.mask
        while fixed and acc:
            low = fixed & -fixed
            fixed ^= low
            v = low.bit_length() - 1
            acc &= boards[v] if values & low else inv[v]
        masks[idx] = acc
    return masks


def build_cube_problem(
    rows: Sequence[int],
    cubes: Sequence[Cube],
    n: int,
    *,
    cost_of,
    budget: Budget | None = None,
) -> CoveringProblem[Cube]:
    """A :class:`CoveringProblem` with cube columns (the SP baseline),
    column-order compatible with the legacy per-point build."""
    masks = cube_coverage_masks(rows, cubes, n, budget=budget)
    keep_masks: list[int] = []
    costs: list[int] = []
    payloads: list[Cube] = []
    for mask, cube in zip(masks, cubes):
        if mask:
            keep_masks.append(mask)
            costs.append(cost_of(cube))
            payloads.append(cube)
    return CoveringProblem(len(rows), keep_masks, costs, payloads)
