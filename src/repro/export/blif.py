"""BLIF export of SPP forms.

An SPP form is a three-level OR–AND–EXOR network; the standard exchange
format downstream EDA tools (SIS, ABC, mockturtle, …) accept is
Berkeley Logic Interchange Format.  The writer emits one ``.names``
node per EXOR factor (its truth table is the parity pattern), one AND
node per pseudoproduct, and a final OR node, preserving the paper's
three-level structure so gate counts remain inspectable after import.

Single-literal factors are wired straight into the AND node (no
gratuitous buffer nodes); complemented single literals use the
``.names`` inverter pattern.
"""

from __future__ import annotations

import io

from repro.core.bitvec import bits_of, popcount
from repro.core.cex import cex_of
from repro.core.spp_form import SppForm

__all__ = ["spp_to_blif"]


def _exor_names(out_net: str, inputs: list[str], parity: int, sink: io.StringIO) -> None:
    """Emit a .names node computing XOR(inputs) ^ parity."""
    sink.write(f".names {' '.join(inputs)} {out_net}\n")
    width = len(inputs)
    for assignment in range(1 << width):
        ones = assignment.bit_count()
        if (ones & 1) ^ parity:
            bits = "".join(str((assignment >> i) & 1) for i in range(width))
            sink.write(f"{bits} 1\n")


def spp_to_blif(
    form: SppForm,
    model: str = "spp",
    input_names: list[str] | None = None,
    output_name: str = "f",
) -> str:
    """Serialize an SPP form as a single-output BLIF model."""
    n = form.n
    if input_names is None:
        input_names = [f"x{i}" for i in range(n)]
    if len(input_names) != n:
        raise ValueError("need one input name per variable")

    sink = io.StringIO()
    sink.write(f".model {model}\n")
    sink.write(f".inputs {' '.join(input_names)}\n")
    sink.write(f".outputs {output_name}\n")

    product_nets: list[str] = []
    factor_counter = 0
    for p_index, pc in enumerate(form.pseudoproducts):
        cex = cex_of(pc)
        factor_nets: list[str] = []
        for factor in cex.factors:
            variables = [input_names[i] for i in bits_of(factor.support)]
            if popcount(factor.support) == 1 and factor.parity == 0:
                factor_nets.append(variables[0])
                continue
            net = f"g{factor_counter}"
            factor_counter += 1
            _exor_names(net, variables, factor.parity, sink)
            factor_nets.append(net)
        product_net = f"p{p_index}"
        product_nets.append(product_net)
        if factor_nets:
            sink.write(f".names {' '.join(factor_nets)} {product_net}\n")
            sink.write("1" * len(factor_nets) + " 1\n")
        else:  # the constant-1 pseudoproduct (whole space)
            sink.write(f".names {product_net}\n1\n")

    if product_nets:
        sink.write(f".names {' '.join(product_nets)} {output_name}\n")
        for i in range(len(product_nets)):
            pattern = ["-"] * len(product_nets)
            pattern[i] = "1"
            sink.write("".join(pattern) + " 1\n")
    else:  # empty sum: constant 0
        sink.write(f".names {output_name}\n")
    sink.write(".end\n")
    return sink.getvalue()
