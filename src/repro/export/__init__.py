"""Netlist export: SPP forms to BLIF and structural Verilog."""

from repro.export.blif import spp_to_blif
from repro.export.verilog import spp_to_verilog

__all__ = ["spp_to_blif", "spp_to_verilog"]
