"""Structural Verilog export of SPP forms.

Emits a combinational module with one continuous assignment per output:
the OR of AND-of-EXOR terms, exactly mirroring the three-level SPP
network (synthesizers see the intended XOR structure instead of a
flattened SOP).
"""

from __future__ import annotations

import io

from repro.core.bitvec import bits_of
from repro.core.cex import cex_of
from repro.core.spp_form import SppForm

__all__ = ["spp_to_verilog"]


def _factor_expr(factor, input_names: list[str]) -> str:
    terms = " ^ ".join(input_names[i] for i in bits_of(factor.support))
    if factor.parity:
        return f"~({terms})" if " ^ " in terms else f"~{terms}"
    return f"({terms})" if " ^ " in terms else terms


def _product_expr(pc, input_names: list[str]) -> str:
    cex = cex_of(pc)
    if not cex.factors:
        return "1'b1"
    return " & ".join(_factor_expr(f, input_names) for f in cex.factors)


def spp_to_verilog(
    forms: dict[str, SppForm],
    module: str = "spp",
    input_names: list[str] | None = None,
) -> str:
    """Serialize one or more SPP forms (name → form) as a Verilog module.

    All forms must range over the same input space.
    """
    if not forms:
        raise ValueError("need at least one output form")
    widths = {form.n for form in forms.values()}
    if len(widths) != 1:
        raise ValueError("all outputs must share the input space")
    n = widths.pop()
    if input_names is None:
        input_names = [f"x{i}" for i in range(n)]
    if len(input_names) != n:
        raise ValueError("need one input name per variable")

    sink = io.StringIO()
    outputs = list(forms)
    sink.write(f"module {module} (\n")
    for name in input_names:
        sink.write(f"    input  wire {name},\n")
    for i, name in enumerate(outputs):
        comma = "," if i + 1 < len(outputs) else ""
        sink.write(f"    output wire {name}{comma}\n")
    sink.write(");\n\n")
    for name, form in forms.items():
        if form.num_pseudoproducts == 0:
            sink.write(f"  assign {name} = 1'b0;\n")
            continue
        products = [
            "(" + _product_expr(pc, input_names) + ")"
            for pc in form.pseudoproducts
        ]
        joined = "\n               | ".join(products)
        sink.write(f"  assign {name} = {joined};\n")
    sink.write("\nendmodule\n")
    return sink.getvalue()
