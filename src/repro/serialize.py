"""JSON serialization of functions, pseudocubes and SPP forms.

Long minimization runs (the full paper tables take CPU-hours) need
restartable artifacts: this module round-trips the library's value
types through plain JSON-compatible dicts.

The wire format is versioned and intentionally explicit — bases and
anchors as hex strings, point sets as sorted lists — so artifacts stay
diffable and survive library refactors.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.core.pseudocube import Pseudocube
from repro.core.spp_form import SppForm
from repro.errors import CorruptRecordError

__all__ = [
    "form_to_dict",
    "form_from_dict",
    "func_to_dict",
    "func_from_dict",
    "dumps",
    "loads",
    "canonical_dumps",
    "checksum_of",
    "wrap_checksum",
    "unwrap_checksum",
    "dump_json_file",
    "load_json_file",
]

_VERSION = 1


def _pc_to_dict(pc: Pseudocube) -> dict[str, Any]:
    return {
        "anchor": format(pc.anchor, "x"),
        "basis": [format(b, "x") for b in pc.basis],
    }


def _pc_from_dict(n: int, data: dict[str, Any]) -> Pseudocube:
    return Pseudocube(
        n,
        int(data["anchor"], 16),
        tuple(int(b, 16) for b in data["basis"]),
    )


def form_to_dict(form: SppForm) -> dict[str, Any]:
    """SPP form → JSON-compatible dict."""
    return {
        "version": _VERSION,
        "kind": "spp_form",
        "n": form.n,
        "pseudoproducts": [_pc_to_dict(pc) for pc in form.pseudoproducts],
    }


def form_from_dict(data: dict[str, Any]) -> SppForm:
    """Inverse of :func:`form_to_dict` (validates the representation)."""
    _check(data, "spp_form")
    n = data["n"]
    return SppForm(
        n, tuple(_pc_from_dict(n, pc) for pc in data["pseudoproducts"])
    )


def func_to_dict(func: BoolFunc | MultiBoolFunc) -> dict[str, Any]:
    """Boolean function → JSON-compatible dict."""
    if isinstance(func, MultiBoolFunc):
        return {
            "version": _VERSION,
            "kind": "multi_bool_func",
            "n": func.n,
            "name": func.name,
            "outputs": [func_to_dict(f) for f in func.outputs],
        }
    return {
        "version": _VERSION,
        "kind": "bool_func",
        "n": func.n,
        "on": sorted(func.on_set),
        "dc": sorted(func.dc_set),
    }


def func_from_dict(data: dict[str, Any]) -> BoolFunc | MultiBoolFunc:
    """Inverse of :func:`func_to_dict`."""
    if data.get("kind") == "multi_bool_func":
        _check(data, "multi_bool_func")
        outputs = tuple(func_from_dict(d) for d in data["outputs"])
        return MultiBoolFunc(data["n"], outputs, name=data.get("name", ""))
    _check(data, "bool_func")
    return BoolFunc(
        data["n"], frozenset(data["on"]), frozenset(data.get("dc", ()))
    )


def _check(data: dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(f"expected kind {kind!r}, found {data.get('kind')!r}")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators.

    Content hashing (``repro.engine.job``) and on-disk cache records
    require byte-stable encodings; plain ``json.dumps`` preserves dict
    insertion order, which is an implementation detail of the caller.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def checksum_of(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON encoding."""
    return hashlib.sha256(canonical_dumps(obj).encode("ascii")).hexdigest()


def wrap_checksum(obj: Any) -> dict[str, Any]:
    """Envelope ``obj`` with a checksum over its canonical encoding."""
    return {"kind": "checked_record", "sha256": checksum_of(obj), "payload": obj}


def unwrap_checksum(data: Any, *, path: str | Path | None = None) -> Any:
    """Verify and strip a checksum envelope.

    Pre-checksum records (no envelope) pass through unchanged so old
    cache dirs and manifests stay readable.  A mismatch raises
    :class:`~repro.errors.CorruptRecordError`.
    """
    if not (isinstance(data, dict) and data.get("kind") == "checked_record"):
        return data
    payload = data.get("payload")
    if data.get("sha256") != checksum_of(payload):
        raise CorruptRecordError(
            "record checksum mismatch", path=str(path) if path else None
        )
    return payload


def dump_json_file(
    path: str | Path,
    obj: Any,
    *,
    checksum: bool = False,
    fsync: bool = False,
    site: str | None = None,
) -> None:
    """Atomically write ``obj`` as canonical JSON to ``path``.

    Written via a same-directory temp file + ``os.replace`` so a reader
    (or a resumed batch) never observes a half-written record.  With
    ``checksum=True`` the object is wrapped in a sha256 envelope that
    :func:`load_json_file` verifies on read; with ``fsync=True`` the
    temp file (and, best-effort, its directory) is flushed to stable
    storage before the rename, so the record survives power loss as
    well as process death.

    ``site`` names this write for :mod:`repro.faults`: an active fault
    plan may corrupt or truncate the serialized text *before* it is
    written (simulating a torn write that slipped past the rename), and
    a ``crash`` rule at the same site kills the process *between* the
    temp-file write and the rename — the exact window the atomic
    protocol must make harmless.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = canonical_dumps(wrap_checksum(obj) if checksum else obj)
    if site is not None:
        from repro import faults

        text = faults.mangle(site, text)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    if fsync:
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, text.encode("ascii"))
            os.fsync(fd)
        finally:
            os.close(fd)
    else:
        tmp.write_text(text, encoding="ascii")
    if site is not None:
        from repro import faults

        faults.maybe_fire(site)  # crash here = die with only the tmp on disk
    os.replace(tmp, path)
    if fsync:
        try:  # directory fsync makes the rename itself durable (POSIX)
            dfd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)
        except OSError:  # pragma: no cover — non-POSIX / odd filesystems
            pass


def load_json_file(path: str | Path) -> Any:
    """Read a JSON file written by :func:`dump_json_file`.

    Undecodable content raises :class:`~repro.errors.CorruptRecordError`
    (a ``ValueError``, so pre-taxonomy handlers still catch it); a
    checksum envelope is verified and stripped transparently.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="ascii"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CorruptRecordError(
            f"unreadable JSON record: {exc}", path=str(path)
        ) from exc
    return unwrap_checksum(data, path=path)


def dumps(obj: SppForm | BoolFunc | MultiBoolFunc) -> str:
    """Serialize any supported object to a JSON string."""
    if isinstance(obj, SppForm):
        return json.dumps(form_to_dict(obj))
    return json.dumps(func_to_dict(obj))


def loads(text: str) -> SppForm | BoolFunc | MultiBoolFunc:
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "spp_form":
        return form_from_dict(data)
    return func_from_dict(data)
