"""Result certificates and independent re-verification.

The engine already refuses to *produce* a wrong cover — every ladder
rung runs :func:`repro.verify.verify_form` before building its record.
But a record outlives the process that proved it: it sits in the disk
cache, travels through the cluster, and is replayed from manifests.
This module is the trust layer for that afterlife:

* :func:`make_certificate` stamps a record with an **integrity
  envelope** ``{spec_hash, form_hash, cost_recomputed, solver_salt,
  verified, verify_ms}``.  The cost is recomputed from the form through
  the CEX expression builder (:func:`repro.core.cex.cex_of`) — a
  different code path from the closed-form ``Pseudocube.num_literals``
  the solvers use — so a cost-accounting bug in either path is caught
  by the other.
* :func:`check_certificate` re-derives everything the envelope claims
  from the record it travels with and raises
  :class:`~repro.errors.IntegrityError` on any disagreement.  It is
  what verify-on-read cache auditing and serve-tier shadow verification
  call; its ``detail`` dict is surfaced verbatim in HTTP 500 bodies.

Certificates are *self-describing but not self-certifying*: the
envelope hashes bind spec to form, and the semantic check re-verifies
the form against the spec the caller trusts (the request body, the
job's own truth table) — never against a spec recovered from the
suspect record.
"""

from __future__ import annotations

import time
from typing import Any

from repro.boolfunc.function import BoolFunc
from repro.core.cex import cex_of
from repro.core.spp_form import SppForm
from repro.errors import IntegrityError
from repro.serialize import checksum_of, form_to_dict, func_to_dict
from repro.verify import VerificationReport, verify_form

__all__ = [
    "CERTIFICATE_VERSION",
    "VERIFIED_FULL",
    "VERIFIED_SAMPLED",
    "VERIFIED_NONE",
    "spec_hash",
    "form_hash",
    "recompute_cost",
    "make_certificate",
    "check_certificate",
    "report_to_dict",
]

CERTIFICATE_VERSION = 1

# ``verified`` levels, weakest to strongest.  ``none`` means the
# envelope's hashes and recomputed cost were produced but no semantic
# check ran at stamping time; ``sampled`` means this record was picked
# by a sampling audit (cache verify-on-read, serve shadow verification)
# and passed; ``full`` means the producer verified it synchronously.
VERIFIED_NONE = "none"
VERIFIED_SAMPLED = "sampled"
VERIFIED_FULL = "full"

_LEVELS = (VERIFIED_NONE, VERIFIED_SAMPLED, VERIFIED_FULL)


def spec_hash(func: BoolFunc) -> str:
    """Content hash of the specification (canonical function dict)."""
    return checksum_of(func_to_dict(func))


def form_hash(form: SppForm) -> str:
    """Content hash of the produced form (canonical form dict)."""
    return checksum_of(form_to_dict(form))


def recompute_cost(form: SppForm) -> int:
    """Literal cost of ``form``, recomputed independently of the solver.

    Builds the CEX expression of every pseudoproduct and counts literals
    factor by factor, instead of trusting the cached
    ``SppForm.num_literals`` (which sums the closed-form
    ``popcount``-based ``Pseudocube.num_literals``).  The two paths are
    proved equal in the core tests; at runtime their agreement is the
    certificate's cost check.
    """
    pseudoproducts = getattr(form, "pseudoproducts", None)
    if pseudoproducts is None:  # non-SPP forms: fall back to the form's own count
        return form.num_literals
    return sum(cex_of(pc).num_literals for pc in pseudoproducts)


def make_certificate(
    func: BoolFunc,
    form: SppForm,
    *,
    solver_salt: str,
    claimed_cost: int | None = None,
    verified: str = VERIFIED_NONE,
    verify_ms: float = 0.0,
) -> dict[str, Any]:
    """Build the integrity envelope for a (spec, form) pair.

    ``claimed_cost`` is the literal count the solver reported; when
    given, it must agree with the independent recompute or this raises
    :class:`IntegrityError` immediately — a wrong cost claim is caught
    at stamping time, not at audit time.
    """
    if verified not in _LEVELS:
        raise ValueError(f"unknown verified level {verified!r}")
    cost = recompute_cost(form)
    if claimed_cost is not None and claimed_cost != cost:
        raise IntegrityError(
            f"cost mismatch: solver claims {claimed_cost} literals, "
            f"independent recompute finds {cost}",
            detail={"claimed_cost": claimed_cost, "cost_recomputed": cost},
        )
    return {
        "version": CERTIFICATE_VERSION,
        "spec_hash": spec_hash(func),
        "form_hash": form_hash(form),
        "cost_recomputed": cost,
        "solver_salt": solver_salt,
        "verified": verified,
        "verify_ms": round(verify_ms, 3),
    }


def report_to_dict(report: VerificationReport) -> dict[str, Any]:
    """JSON-compatible rendering of a verification report.

    The counterexample lists are already capped by ``verify_form``'s
    ``max_counterexamples``; ``truncated`` says whether they are
    complete.  This is the shape HTTP 500 bodies embed.
    """
    return {
        "ok": report.ok,
        "uncovered_on_points": list(report.uncovered_on_points),
        "covered_off_points": list(report.covered_off_points),
        "truncated": report.truncated,
    }


def check_certificate(
    record: dict[str, Any],
    func: BoolFunc,
    form: SppForm,
    *,
    expected_salt: str | None = None,
    semantic: bool = True,
    max_counterexamples: int = 8,
) -> dict[str, Any]:
    """Audit ``record`` against the trusted spec ``func``.

    Re-derives every claim in the record's ``integrity`` envelope:

    * ``spec_hash`` must match the trusted spec (a record keyed to the
      wrong function — hash collision in the cache layer, a routing
      bug — is an integrity failure, not a miss);
    * ``form_hash`` must match the form actually stored in the record
      (a checksum-valid but semantically mutated payload breaks here);
    * the recomputed literal cost must match both the envelope's
      ``cost_recomputed`` and the record's top-level ``literals``;
    * with ``semantic=True`` the form is re-verified against the spec
      point by point.

    Records without an envelope (pre-integrity cache dirs) are audited
    semantically only.  Returns an *updated* envelope (``verified`` is
    raised to ``sampled`` if a semantic check ran and the stamped level
    was ``none``; ``verify_ms`` reflects this audit) — callers decide
    whether to write it back.  Raises
    :class:`~repro.errors.IntegrityError` on any mismatch.
    """
    t0 = time.perf_counter()
    cert = record.get("integrity")
    detail: dict[str, Any] = {}
    if expected_salt is not None:
        detail["expected_salt"] = expected_salt

    fh = form_hash(form)
    cost = recompute_cost(form)
    claimed = record.get("literals")
    if claimed is not None and claimed != cost:
        raise IntegrityError(
            f"record claims {claimed} literals, recompute finds {cost}",
            detail={**detail, "claimed_cost": claimed, "cost_recomputed": cost},
        )
    if cert is not None:
        sh = spec_hash(func)
        if cert.get("spec_hash") != sh:
            raise IntegrityError(
                "certificate spec_hash does not match the trusted spec",
                detail={**detail, "spec_hash": sh,
                        "certificate_spec_hash": cert.get("spec_hash")},
            )
        if cert.get("form_hash") != fh:
            raise IntegrityError(
                "certificate form_hash does not match the stored form",
                detail={**detail, "form_hash": fh,
                        "certificate_form_hash": cert.get("form_hash")},
            )
        if cert.get("cost_recomputed") != cost:
            raise IntegrityError(
                f"certificate cost {cert.get('cost_recomputed')} disagrees "
                f"with recompute {cost}",
                detail={**detail, "cost_recomputed": cost,
                        "certificate_cost": cert.get("cost_recomputed")},
            )
    if semantic:
        report = verify_form(form, func, max_counterexamples=max_counterexamples)
        if not report:
            raise IntegrityError(
                f"stored form is not equivalent to its spec: misses "
                f"{len(report.uncovered_on_points)} on-points, covers "
                f"{len(report.covered_off_points)} off-points"
                + (" (scan truncated)" if report.truncated else ""),
                report=report,
                detail={**detail, "counterexamples": report_to_dict(report)},
            )
    verify_ms = (time.perf_counter() - t0) * 1000.0
    level = (cert or {}).get("verified", VERIFIED_NONE)
    if semantic and level == VERIFIED_NONE:
        level = VERIFIED_SAMPLED
    return {
        "version": CERTIFICATE_VERSION,
        "spec_hash": (cert or {}).get("spec_hash") or spec_hash(func),
        "form_hash": fh,
        "cost_recomputed": cost,
        "solver_salt": (cert or {}).get("solver_salt", expected_salt or ""),
        "verified": level,
        "verify_ms": round(verify_ms, 3),
    }
