"""Fixed-width table rendering for the benchmark harness.

Keeps the harness output looking like the paper's tables without
pulling in a formatting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object) -> str:
    """Render one cell; None becomes the paper's ``*`` marker."""
    if value is None:
        return "*"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
