"""Seeded random-function families for the fuzz harness.

Each family stresses a different corner of the pipeline:

* ``dense`` — on-probability ~1/2; large covering tables, many EPPP
  candidates, exercises mincov reduction and branch-and-bound.
* ``sparse`` — a handful of on-points; degenerate tables where a
  single pseudocube often suffices, exercises the trivial paths.
* ``arith-like`` — parity / carry / majority style functions with
  real EXOR structure, where SPP forms should beat SP decisively
  (the paper's motivating class).
* ``dc-heavy`` — large don't-care sets; exercises dc exploitation in
  generation and covering, and the dc edge cases of the metamorphic
  checks.
* ``near-dup`` — moderate density with a guaranteed non-empty dc set;
  shaped so care-preserving on/dc toggles exist, which is what the
  ``delta-warm`` check needs to exercise the incremental warm path.

Everything is driven by a caller-supplied :class:`random.Random` so a
seed fully determines the corpus.
"""

from __future__ import annotations

import random

from repro.boolfunc.function import BoolFunc

__all__ = ["FAMILIES", "FAMILY_WEIGHTS", "draw_function"]


def _dense(rng: random.Random, n: int) -> BoolFunc:
    space = 1 << n
    on = frozenset(p for p in range(space) if rng.random() < 0.5)
    if not on:
        on = frozenset({rng.randrange(space)})
    return BoolFunc(n, on)


def _sparse(rng: random.Random, n: int) -> BoolFunc:
    space = 1 << n
    k = rng.randint(1, max(2, space // 8))
    on = frozenset(rng.randrange(space) for _ in range(k))
    return BoolFunc(n, on or frozenset({0}))


def _arith_like(rng: random.Random, n: int) -> BoolFunc:
    """Parity-, carry- and majority-flavoured structured functions."""
    mask = rng.randrange(1, 1 << n)
    flavour = rng.randrange(3)
    if flavour == 0:
        # Parity of a random subset of inputs, optionally AND-gated on
        # one more variable — pure EXOR structure.
        gate = 1 << rng.randrange(n)
        fn = lambda p: ((p & mask).bit_count() & 1) and (p & gate or gate == mask)  # noqa: E731
        if rng.random() < 0.5:
            fn = lambda p: (p & mask).bit_count() & 1  # noqa: E731
    elif flavour == 1:
        # Carry-out of adding two halves of the input word.
        half = max(1, n // 2)
        lo_mask = (1 << half) - 1
        fn = lambda p: ((p & lo_mask) + (p >> half)) >> half & 1  # noqa: E731
    else:
        # Majority over the masked bits (threshold at half).
        width = mask.bit_count()
        fn = lambda p: (p & mask).bit_count() * 2 > width  # noqa: E731
    func = BoolFunc.from_lambda(n, fn)
    if not func.on_set:
        return BoolFunc(n, frozenset({rng.randrange(1 << n)}))
    return func


def _dc_heavy(rng: random.Random, n: int) -> BoolFunc:
    space = 1 << n
    on: set[int] = set()
    dc: set[int] = set()
    for p in range(space):
        r = rng.random()
        if r < 0.25:
            on.add(p)
        elif r < 0.6:
            dc.add(p)
    if not on:
        on = {rng.randrange(space)}
        dc -= on
    return BoolFunc(n, frozenset(on), frozenset(dc))


def _near_dup(rng: random.Random, n: int) -> BoolFunc:
    space = 1 << n
    on: set[int] = set()
    dc: set[int] = set()
    for p in range(space):
        r = rng.random()
        if r < 0.35:
            on.add(p)
        elif r < 0.50:
            dc.add(p)
    if not on:
        on = {rng.randrange(space)}
        dc -= on
    if not dc:
        # The delta-warm check toggles on<->dc inside the care set, so
        # draws with some dc mass make both toggle directions reachable.
        pool = sorted(set(range(space)) - on)
        if pool:
            dc = {rng.choice(pool)}
    return BoolFunc(n, frozenset(on), frozenset(dc - on))


FAMILIES = {
    "dense": _dense,
    "sparse": _sparse,
    "arith-like": _arith_like,
    "dc-heavy": _dc_heavy,
    "near-dup": _near_dup,
}

FAMILY_WEIGHTS = {
    "dense": 0.20,
    "sparse": 0.25,
    "arith-like": 0.20,
    "dc-heavy": 0.20,
    "near-dup": 0.15,
}


def draw_function(
    rng: random.Random,
    *,
    n_min: int = 3,
    n_max: int = 6,
    families: list[str] | None = None,
) -> tuple[str, BoolFunc]:
    """Draw ``(family_name, func)`` with ``n`` uniform in the range."""
    names = list(families) if families else list(FAMILIES)
    unknown = [f for f in names if f not in FAMILIES]
    if unknown:
        raise ValueError(f"unknown fuzz families: {', '.join(unknown)}")
    weights = [FAMILY_WEIGHTS.get(f, 0.25) for f in names]
    family = rng.choices(names, weights=weights, k=1)[0]
    n = rng.randint(n_min, n_max)
    return family, FAMILIES[family](rng, n)
