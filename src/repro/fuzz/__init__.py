"""Differential and metamorphic fuzzing of the minimization stack.

:mod:`repro.fuzz.generators` draws seeded random functions from
weighted families (dense, sparse, arith-like, dc-heavy);
:mod:`repro.fuzz.harness` runs every engine rung over each draw and
checks cross-rung equivalence against a brute-force truth-table
oracle, exact-below-heuristic cost sanity, and metamorphic invariants
(permutation, input negation, Shannon cofactor).  Failures are shrunk
and written as replayable JSON artifacts.

Entry point: ``spp-minimize fuzz --seed N --budget 60``.
"""

from repro.fuzz.generators import FAMILIES, FAMILY_WEIGHTS, draw_function
from repro.fuzz.harness import (
    CHECKS,
    PLANT_BUGS,
    FuzzFailure,
    FuzzReport,
    replay_artifact,
    run_fuzz,
    run_trial,
    shrink_function,
)

__all__ = [
    "CHECKS",
    "FAMILIES",
    "FAMILY_WEIGHTS",
    "PLANT_BUGS",
    "FuzzFailure",
    "FuzzReport",
    "draw_function",
    "replay_artifact",
    "run_fuzz",
    "run_trial",
    "shrink_function",
]
