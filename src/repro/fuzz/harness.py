"""Differential + metamorphic fuzz harness over the engine rungs.

For every drawn function the harness runs all four engine rungs
(exact, bounded-2, heuristic-k0, sp) and checks:

* **differential** — every returned form is replayed against a
  brute-force truth-table oracle (independent of
  :mod:`repro.verify`): 1 on every on-point, 0 on every off-point.
* **cost-sanity** — when every covering was solved to proved
  optimality and the exact generation was not truncated, the paper's
  cost chain must hold: ``exact <= bounded-2 <= sp`` and
  ``exact <= heuristic-k0``.
* **metamorphic-permutation** — permuting input variables commutes
  with minimization *semantically*, and the exact SP cost is
  invariant (cubes map to cubes literal-for-literal).  The exact SPP
  cost is deliberately **not** asserted equal: pseudocube literal
  counts depend on the coordinate frame, and permutation can change
  the optimum (observed: 17 vs 18 literals on a 5-variable function,
  both proved optimal).
* **metamorphic-negation** — translating the input space by a mask
  (negating variables) maps pseudocubes to pseudocubes of identical
  literal count, so the proved-optimal exact SPP cost must be equal.
* **metamorphic-cofactor** — minimizing a Shannon cofactor still
  verifies against the cofactor.
* **delta-warm** — a care-preserving on/dc toggle of the function is
  re-minimized through the incremental warm path
  (:func:`repro.delta.warm_minimize`) and must return the same form as
  a cold exact solve of the edited function, and pass the oracle.

Any failure is shrunk (greedy ddmin over the on- and dc-sets) and
written as a replayable JSON artifact under ``results/fuzz/``.

The ``plant_bug`` hook mutates one rung's output before checking —
used by tests and CI to prove the harness detects, shrinks, and
reports a wrong cover end to end.
"""

from __future__ import annotations

import json
import random
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.boolfunc.function import BoolFunc
from repro.budget import Budget
from repro.core.spp_form import SppForm
from repro.errors import BudgetExceeded
from repro.fuzz.generators import draw_function
from repro.minimize.bounded import minimize_spp_bounded
from repro.minimize.exact import minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.serialize import func_from_dict, func_to_dict

__all__ = [
    "CHECKS",
    "PLANT_BUGS",
    "FuzzFailure",
    "FuzzReport",
    "replay_artifact",
    "run_fuzz",
    "run_trial",
    "shrink_function",
]

ARTIFACT_VERSION = 1

CHECKS = (
    "differential",
    "cost-sanity",
    "metamorphic-permutation",
    "metamorphic-negation",
    "metamorphic-cofactor",
    "delta-warm",
)

# Generation cap for the exact rung so a single dense draw cannot eat
# the whole fuzz budget; cost checks are skipped on truncation.
_EXACT_CAP = 50_000

# The rung whose output a planted bug mutates before checking.
_PLANT_TARGET = "heuristic-k0"


@dataclass
class FuzzFailure:
    """One failed check on one function."""

    check: str
    message: str
    rung: str = ""
    detail: dict = field(default_factory=dict)


@dataclass
class FuzzReport:
    """Outcome of a :func:`run_fuzz` campaign."""

    seed: int
    trials: int
    elapsed_seconds: float
    family_counts: dict[str, int]
    failures: list[dict]

    @property
    def ok(self) -> bool:
        return not self.failures


# ---------------------------------------------------------------------------
# Planted bugs
# ---------------------------------------------------------------------------


def _plant_drop_cover(form: SppForm, func: BoolFunc) -> SppForm:
    """Remove every pseudoproduct covering one on-point — a guaranteed
    wrong cover (the differential oracle must catch it)."""
    if not func.on_set or not form.pseudoproducts:
        return form
    victim = min(func.on_set)
    kept = tuple(pc for pc in form.pseudoproducts if victim not in pc.points())
    return SppForm(form.n, kept)


PLANT_BUGS = {"drop-cover": _plant_drop_cover}


# ---------------------------------------------------------------------------
# Oracle and transforms
# ---------------------------------------------------------------------------


def _oracle_mismatches(form: SppForm, func: BoolFunc, limit: int = 4) -> list[dict]:
    """Brute-force truth-table comparison, first ``limit`` mismatches."""
    out: list[dict] = []
    for p in range(1 << func.n):
        want = func.evaluate(p)
        if want is None:
            continue
        got = form.evaluate(p)
        if got != want:
            out.append({"point": p, "expected": want, "got": got})
            if len(out) >= limit:
                break
    return out


def _permute_points(points, perm: list[int], n: int) -> frozenset[int]:
    out = set()
    for p in points:
        q = 0
        for i in range(n):
            if (p >> i) & 1:
                q |= 1 << perm[i]
        out.add(q)
    return frozenset(out)


def _permute_func(func: BoolFunc, perm: list[int]) -> BoolFunc:
    return BoolFunc(
        func.n,
        _permute_points(func.on_set, perm, func.n),
        _permute_points(func.dc_set, perm, func.n),
    )


def _translate_func(func: BoolFunc, mask: int) -> BoolFunc:
    return BoolFunc(
        func.n,
        frozenset(p ^ mask for p in func.on_set),
        frozenset(p ^ mask for p in func.dc_set),
    )


def _budget(seconds: float | None) -> Budget | None:
    return None if seconds is None else Budget(seconds=seconds)


def _exact(func: BoolFunc, seconds: float | None = None):
    return minimize_spp(
        func,
        covering="exact",
        max_pseudoproducts=_EXACT_CAP,
        on_limit="stop",
        budget=_budget(seconds),
    )


def _untruncated(result) -> bool:
    return result.generation is None or not result.generation.truncated


_RUNGS = (
    ("exact", _exact),
    ("bounded-2", lambda f, s=None: minimize_spp_bounded(
        f, 2, covering="exact", budget=_budget(s))),
    ("heuristic-k0", lambda f, s=None: minimize_spp_k(f, 0, budget=_budget(s))),
    ("sp", lambda f, s=None: minimize_sp(f, covering="exact", budget=_budget(s))),
)


# ---------------------------------------------------------------------------
# One trial
# ---------------------------------------------------------------------------


def run_trial(
    func: BoolFunc,
    *,
    seed: int = 0,
    plant_bug: str | None = None,
    checks=None,
    rung_budget: float | None = None,
) -> list[FuzzFailure]:
    """Run every enabled check on ``func``; return the failures.

    ``seed`` drives the metamorphic draws (permutation, mask,
    cofactor variable) so a trial is exactly reproducible.  A crash in
    any rung is itself a failure (check ``"crash"``), never an
    exception out of the harness.  ``rung_budget`` bounds each
    minimizer call in seconds; a rung that runs out of budget is
    skipped, not reported — a slow solve is not a wrong one.
    """
    enabled = set(checks) if checks is not None else set(CHECKS)
    rng = random.Random(seed)
    failures: list[FuzzFailure] = []
    results: dict[str, object] = {}

    for rung, minimize in _RUNGS:
        try:
            results[rung] = minimize(func, rung_budget)
        except BudgetExceeded:
            continue
        except Exception as exc:  # noqa: BLE001 — a crash is a finding
            failures.append(
                FuzzFailure("crash", f"{type(exc).__name__}: {exc}", rung=rung)
            )

    # -- differential: every form vs the truth-table oracle ------------
    if "differential" in enabled:
        for rung, result in results.items():
            form = result.form
            if plant_bug is not None and rung == _PLANT_TARGET:
                form = PLANT_BUGS[plant_bug](form, func)
            bad = _oracle_mismatches(form, func)
            if bad:
                failures.append(
                    FuzzFailure(
                        "differential",
                        f"{rung} form disagrees with truth-table oracle",
                        rung=rung,
                        detail={"counterexamples": bad},
                    )
                )

    # -- cost sanity ---------------------------------------------------
    if "cost-sanity" in enabled and all(r in results for r, _ in _RUNGS):
        exact, two = results["exact"], results["bounded-2"]
        spp0, sp = results["heuristic-k0"], results["sp"]
        if (
            exact.covering_optimal
            and _untruncated(exact)
            and two.covering_optimal
            and sp.covering_optimal
        ):
            chain = (
                ("exact", exact.num_literals, "bounded-2", two.num_literals),
                ("bounded-2", two.num_literals, "sp", sp.num_literals),
                ("exact", exact.num_literals, "heuristic-k0", spp0.num_literals),
            )
            for lo_name, lo, hi_name, hi in chain:
                if lo > hi:
                    failures.append(
                        FuzzFailure(
                            "cost-sanity",
                            f"{lo_name} cost {lo} exceeds {hi_name} cost {hi}",
                            rung=lo_name,
                            detail={lo_name: lo, hi_name: hi},
                        )
                    )

    # -- metamorphic -----------------------------------------------------
    exact = results.get("exact")

    if "metamorphic-permutation" in enabled and exact is not None:
        perm = list(range(func.n))
        rng.shuffle(perm)
        permuted = _permute_func(func, perm)
        try:
            p_exact = _exact(permuted, rung_budget)
            p_sp = minimize_sp(
                permuted, covering="exact", budget=_budget(rung_budget)
            )
            sp = results.get("sp")
            bad = _oracle_mismatches(p_exact.form, permuted)
            if bad:
                failures.append(
                    FuzzFailure(
                        "metamorphic-permutation",
                        "exact form of permuted function fails oracle",
                        rung="exact",
                        detail={"perm": perm, "counterexamples": bad},
                    )
                )
            if (
                sp is not None
                and sp.covering_optimal
                and p_sp.covering_optimal
                and sp.num_literals != p_sp.num_literals
            ):
                failures.append(
                    FuzzFailure(
                        "metamorphic-permutation",
                        "optimal SP cost changed under variable permutation "
                        f"({sp.num_literals} vs {p_sp.num_literals})",
                        rung="sp",
                        detail={"perm": perm},
                    )
                )
        except BudgetExceeded:
            pass
        except Exception as exc:  # noqa: BLE001
            failures.append(
                FuzzFailure(
                    "crash", f"{type(exc).__name__}: {exc}", rung="permutation"
                )
            )

    if "metamorphic-negation" in enabled and exact is not None:
        mask = rng.randrange(1, 1 << func.n)
        negated = _translate_func(func, mask)
        try:
            n_exact = _exact(negated, rung_budget)
            bad = _oracle_mismatches(n_exact.form, negated)
            if bad:
                failures.append(
                    FuzzFailure(
                        "metamorphic-negation",
                        "exact form of negated function fails oracle",
                        rung="exact",
                        detail={"mask": mask, "counterexamples": bad},
                    )
                )
            if (
                exact.covering_optimal
                and _untruncated(exact)
                and n_exact.covering_optimal
                and _untruncated(n_exact)
                and exact.num_literals != n_exact.num_literals
            ):
                failures.append(
                    FuzzFailure(
                        "metamorphic-negation",
                        "optimal SPP cost changed under input negation "
                        f"({exact.num_literals} vs {n_exact.num_literals})",
                        rung="exact",
                        detail={"mask": mask},
                    )
                )
        except BudgetExceeded:
            pass
        except Exception as exc:  # noqa: BLE001
            failures.append(
                FuzzFailure("crash", f"{type(exc).__name__}: {exc}", rung="negation")
            )

    if "delta-warm" in enabled and exact is not None and _untruncated(exact):
        from repro.delta import (
            DeltaIneligible,
            build_context,
            toggle_points,
            warm_minimize,
        )

        try:
            ctx = build_context(
                func, exact, covering="exact", max_pseudoproducts=_EXACT_CAP
            )
            care = sorted(func.care_set)
            if ctx is not None and care:
                toggles = rng.sample(care, rng.randint(1, min(3, len(care))))
                edited = toggle_points(func, toggles)
                if edited.on_set:
                    warm = warm_minimize(
                        ctx, edited, budget=_budget(rung_budget)
                    )
                    cold = _exact(edited, rung_budget)
                    bad = _oracle_mismatches(warm.form, edited)
                    if bad:
                        failures.append(
                            FuzzFailure(
                                "delta-warm",
                                "warm re-minimized form fails oracle on "
                                "edited function",
                                rung="exact",
                                detail={
                                    "toggles": sorted(toggles),
                                    "counterexamples": bad,
                                },
                            )
                        )
                    if warm.form != cold.form:
                        failures.append(
                            FuzzFailure(
                                "delta-warm",
                                "warm re-minimization differs from cold solve "
                                f"({warm.num_literals} vs "
                                f"{cold.num_literals} literals)",
                                rung="exact",
                                detail={"toggles": sorted(toggles)},
                            )
                        )
        except (BudgetExceeded, DeltaIneligible):
            pass
        except Exception as exc:  # noqa: BLE001
            failures.append(
                FuzzFailure("crash", f"{type(exc).__name__}: {exc}", rung="delta")
            )

    if "metamorphic-cofactor" in enabled:
        variable = rng.randrange(func.n)
        value = rng.randrange(2)
        restricted = func.cofactor(variable, value)
        if restricted.on_set:
            try:
                r_exact = _exact(restricted, rung_budget)
                bad = _oracle_mismatches(r_exact.form, restricted)
                if bad:
                    failures.append(
                        FuzzFailure(
                            "metamorphic-cofactor",
                            f"exact form of cofactor x{variable}={value} fails oracle",
                            rung="exact",
                            detail={
                                "variable": variable,
                                "value": value,
                                "counterexamples": bad,
                            },
                        )
                    )
            except BudgetExceeded:
                pass
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    FuzzFailure(
                        "crash", f"{type(exc).__name__}: {exc}", rung="cofactor"
                    )
                )

    return failures


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _with_sets(func: BoolFunc, on, dc) -> BoolFunc:
    on = frozenset(on)
    return BoolFunc(func.n, on, frozenset(dc) - on)


def shrink_function(func: BoolFunc, predicate) -> BoolFunc:
    """Greedy ddmin over the dc- and on-sets.

    ``predicate(candidate)`` must return True iff the candidate still
    exhibits the failure.  Returns the smallest function found (the
    original if nothing could be removed)."""
    current = func
    for attr in ("dc_set", "on_set"):
        pts = sorted(getattr(current, attr))
        chunk = len(pts) // 2 or 1
        while chunk >= 1 and pts:
            i = 0
            while i < len(pts):
                keep = pts[:i] + pts[i + chunk :]
                if attr == "on_set" and not keep:
                    i += chunk
                    continue
                if attr == "on_set":
                    cand = _with_sets(current, keep, current.dc_set)
                else:
                    cand = _with_sets(current, current.on_set, keep)
                if predicate(cand):
                    current = cand
                    pts = keep
                else:
                    i += chunk
            if chunk == 1:
                break
            chunk //= 2
    return current


# ---------------------------------------------------------------------------
# Campaign driver and artifacts
# ---------------------------------------------------------------------------


def _failure_to_dict(failure: FuzzFailure) -> dict:
    return {
        "check": failure.check,
        "rung": failure.rung,
        "message": failure.message,
        "detail": failure.detail,
    }


def run_fuzz(
    *,
    seed: int,
    budget: float = 60.0,
    max_trials: int | None = None,
    max_failures: int = 10,
    n_min: int = 3,
    n_max: int = 6,
    families: list[str] | None = None,
    plant_bug: str | None = None,
    out_dir: str | Path = "results/fuzz",
    rung_budget: float | None = 5.0,
    log=None,
) -> FuzzReport:
    """Run a seeded fuzz campaign until the time budget or trial cap.

    Every failure is shrunk and written as a replayable artifact under
    ``out_dir/seed<seed>/``; the campaign stops early after
    ``max_failures`` distinct failing trials.
    """
    if plant_bug is not None and plant_bug not in PLANT_BUGS:
        raise ValueError(
            f"unknown plant bug {plant_bug!r}; known: {', '.join(PLANT_BUGS)}"
        )
    rng = random.Random(seed)
    t0 = time.monotonic()
    trial = 0
    family_counts: Counter = Counter()
    failures: list[dict] = []
    artifact_dir = Path(out_dir) / f"seed{seed}"

    while time.monotonic() - t0 < budget:
        if max_trials is not None and trial >= max_trials:
            break
        trial += 1
        trial_seed = rng.getrandbits(32)
        family, func = draw_function(rng, n_min=n_min, n_max=n_max, families=families)
        family_counts[family] += 1
        found = run_trial(
            func, seed=trial_seed, plant_bug=plant_bug, rung_budget=rung_budget
        )
        if found:
            first = found[0]

            def still_fails(cand: BoolFunc) -> bool:
                redo = run_trial(
                    cand,
                    seed=trial_seed,
                    plant_bug=plant_bug,
                    checks=(first.check,) if first.check in CHECKS else None,
                    rung_budget=rung_budget,
                )
                return any(f.check == first.check for f in redo)

            shrunk = shrink_function(func, still_fails)
            shrunk_failures = run_trial(
                shrunk, seed=trial_seed, plant_bug=plant_bug, rung_budget=rung_budget
            )
            artifact = {
                "version": ARTIFACT_VERSION,
                "seed": seed,
                "trial": trial - 1,
                "trial_seed": trial_seed,
                "family": family,
                "plant_bug": plant_bug,
                "failures": [_failure_to_dict(f) for f in found],
                "shrunk_failures": [_failure_to_dict(f) for f in shrunk_failures],
                "func": func_to_dict(func),
                "shrunk_func": func_to_dict(shrunk),
                "shrunk_on_points": len(shrunk.on_set),
            }
            artifact_dir.mkdir(parents=True, exist_ok=True)
            path = artifact_dir / f"trial{trial - 1:05d}_{first.check}.json"
            path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
            artifact["path"] = str(path)
            artifact["repro"] = f"spp-minimize fuzz --replay {path}"
            failures.append(artifact)
            if log is not None:
                log(
                    f"trial {trial - 1} [{family}]: {first.check} — {first.message} "
                    f"(shrunk to {len(shrunk.on_set)} on-points, artifact {path})"
                )
            if len(failures) >= max_failures:
                break

    return FuzzReport(
        seed=seed,
        trials=trial,
        elapsed_seconds=time.monotonic() - t0,
        family_counts=dict(family_counts),
        failures=failures,
    )


def replay_artifact(path: str | Path, *, shrunk: bool = True) -> list[FuzzFailure]:
    """Re-run the checks recorded in a fuzz artifact; return failures."""
    data = json.loads(Path(path).read_text())
    func = func_from_dict(data["shrunk_func" if shrunk else "func"])
    return run_trial(
        func, seed=data["trial_seed"], plant_bug=data.get("plant_bug")
    )
