"""Semantic verification of synthesized forms.

Minimization bugs usually manifest as a cover that is merely *almost*
right; every example, benchmark and test in this repository can assert
full semantic equivalence through this module:

* a form must cover every on-set point;
* a form must not cover any off-set point (covering dc-points is fine);
* two forms are equivalent iff they cover the same points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc
from repro.core.spp_form import SppForm

__all__ = ["VerificationReport", "verify_form", "assert_equivalent", "equivalent"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of checking a form against a specification.

    ``truncated`` means the scan stopped at the counterexample cap:
    the listed points are the first ones found, not all of them.
    """

    ok: bool
    uncovered_on_points: tuple[int, ...]
    covered_off_points: tuple[int, ...]
    truncated: bool = False

    def __bool__(self) -> bool:
        return self.ok


def verify_form(
    form: SppForm, func: BoolFunc, *, max_counterexamples: int = 8
) -> VerificationReport:
    """Check that ``form`` implements ``func``.

    The form's on-set must include the function's on-set and avoid its
    off-set; don't-care points may fall either way.

    The check streams point-by-point — on-set points through
    ``form.evaluate``, the form's points against the function's care
    set — so it never materializes the form's on-set or the function's
    off-set (the latter is the full complement of the care set, i.e.
    ``2^n`` minus a few rows for sparse specifications).  Scanning
    stops after ``max_counterexamples`` failures; the report's
    ``truncated`` flag says whether the lists are complete.
    """
    if form.n != func.n:
        raise ValueError("form and function over different spaces")
    if max_counterexamples < 1:
        raise ValueError("max_counterexamples must be positive")
    uncovered: list[int] = []
    truncated = False
    for p in sorted(func.on_set):
        if not form.evaluate(p):
            uncovered.append(p)
            if len(uncovered) >= max_counterexamples:
                truncated = True
                break
    spurious: list[int] = []
    if not truncated:
        on, dc = func.on_set, func.dc_set
        pseudoproducts = getattr(form, "pseudoproducts", None)
        if pseudoproducts is not None:
            seen: set[int] = set()
            for pseudoproduct in pseudoproducts:
                for p in pseudoproduct.points():
                    if p in on or p in dc or p in seen:
                        continue
                    seen.add(p)
                    spurious.append(p)
                    if len(spurious) >= max_counterexamples:
                        truncated = True
                        break
                if truncated:
                    break
        else:
            # Forms without enumerable products (e.g. AND-OR-EXOR):
            # sweep the off-set through evaluate, still capped.
            for p in range(1 << form.n):
                if p in on or p in dc or not form.evaluate(p):
                    continue
                spurious.append(p)
                if len(spurious) >= max_counterexamples:
                    truncated = True
                    break
        spurious.sort()
    return VerificationReport(
        not uncovered and not spurious and not truncated,
        tuple(uncovered),
        tuple(spurious),
        truncated,
    )


def assert_equivalent(form: SppForm, func: BoolFunc) -> None:
    """Raise AssertionError with a counterexample if the form is wrong."""
    report = verify_form(form, func)
    if report.uncovered_on_points:
        point = report.uncovered_on_points[0]
        raise AssertionError(f"form misses on-set point {point:#x}")
    if report.covered_off_points:
        point = report.covered_off_points[0]
        raise AssertionError(f"form covers off-set point {point:#x}")


def equivalent(a: SppForm, b: SppForm) -> bool:
    """True iff the two forms compute the same function."""
    return a.n == b.n and a.on_set() == b.on_set()
