"""Semantic verification of synthesized forms.

Minimization bugs usually manifest as a cover that is merely *almost*
right; every example, benchmark and test in this repository can assert
full semantic equivalence through this module:

* a form must cover every on-set point;
* a form must not cover any off-set point (covering dc-points is fine);
* two forms are equivalent iff they cover the same points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc
from repro.core.spp_form import SppForm

__all__ = ["VerificationReport", "verify_form", "assert_equivalent", "equivalent"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of checking a form against a specification."""

    ok: bool
    uncovered_on_points: tuple[int, ...]
    covered_off_points: tuple[int, ...]

    def __bool__(self) -> bool:
        return self.ok


def verify_form(form: SppForm, func: BoolFunc) -> VerificationReport:
    """Check that ``form`` implements ``func``.

    The form's on-set must include the function's on-set and avoid its
    off-set; don't-care points may fall either way.
    """
    if form.n != func.n:
        raise ValueError("form and function over different spaces")
    covered = form.on_set()
    uncovered = tuple(sorted(func.on_set - covered))
    spurious = tuple(sorted(covered & func.off_set))
    return VerificationReport(not uncovered and not spurious, uncovered, spurious)


def assert_equivalent(form: SppForm, func: BoolFunc) -> None:
    """Raise AssertionError with a counterexample if the form is wrong."""
    report = verify_form(form, func)
    if report.uncovered_on_points:
        point = report.uncovered_on_points[0]
        raise AssertionError(f"form misses on-set point {point:#x}")
    if report.covered_off_points:
        point = report.covered_off_points[0]
        raise AssertionError(f"form covers off-set point {point:#x}")


def equivalent(a: SppForm, b: SppForm) -> bool:
    """True iff the two forms compute the same function."""
    return a.n == b.n and a.on_set() == b.on_set()
