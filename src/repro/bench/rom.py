"""ROM-style surrogate benchmarks.

The ``max*``, ``prom*`` and ``lin.rom`` rows of the paper's tables are
PLA dumps of ROM contents; the files are not redistributable here, so
deterministic surrogates with the same (inputs, outputs) signature are
generated instead:

* :func:`random_rom` — unstructured contents (density-matched noise):
  the hard, incompressible case, like the paper's ``prom*``/``max*``;
* :func:`linear_rom` — affine GF(2) outputs: the maximally XOR-friendly
  case standing in for ``lin.rom``, where SPP forms collapse to a few
  literals while SP forms stay large.
"""

from __future__ import annotations

from repro.bench.prng import SplitMix64
from repro.boolfunc.function import BoolFunc, MultiBoolFunc

__all__ = ["random_rom", "linear_rom"]


def random_rom(
    name: str, n_inputs: int, n_outputs: int, *, seed: int, density: float = 0.5
) -> MultiBoolFunc:
    """A ROM with i.i.d. contents at the given on-set density."""
    rng = SplitMix64(seed)
    on_sets: list[set[int]] = [set() for _ in range(n_outputs)]
    for point in range(1 << n_inputs):
        for o in range(n_outputs):
            if rng.chance(density):
                on_sets[o].add(point)
    outputs = tuple(BoolFunc(n_inputs, frozenset(s)) for s in on_sets)
    return MultiBoolFunc(n_inputs, outputs, name=name)


def linear_rom(
    name: str, n_inputs: int, n_outputs: int, *, seed: int
) -> MultiBoolFunc:
    """A ROM whose every output is a random affine GF(2) function.

    Output ``o`` is ``parity(point & support_o) ^ constant_o`` with a
    random nonzero support — each output is a single pseudoproduct, the
    best case for SPP minimization.
    """
    rng = SplitMix64(seed)
    outputs = []
    for _ in range(n_outputs):
        support = rng.nonzero_mask(n_inputs)
        constant = rng.below(2)
        on = frozenset(
            p for p in range(1 << n_inputs) if ((p & support).bit_count() & 1) ^ constant
        )
        outputs.append(BoolFunc(n_inputs, on))
    return MultiBoolFunc(n_inputs, tuple(outputs), name=name)
