"""The paper's published experimental numbers (Tables 1–3, Figs. 3–4).

Stored verbatim so the benchmark harness can print paper-vs-measured
side by side.  A ``None`` reproduces the paper's ``*`` ("the algorithm
did not terminate after 2 days on a Pentium III 450").

Note on Table 3's ``Av`` column: the paper defines it as
``(|SP| - |SPP|)/2`` but the printed values match the midpoint
``(|SP| + |SPP|)/2`` (e.g. addm4: (1299+520)/2 ≈ 910); the definition
is a typo and we use the midpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "FIG34_TEXT_POINTS",
]


@dataclass(frozen=True)
class Table1Row:
    """SP vs SPP comparison (per multi-output function)."""

    function: str
    sp_primes: int
    sp_literals: int
    sp_products: int
    spp_eppps: int
    spp_literals: int
    spp_products: int


@dataclass(frozen=True)
class Table2Row:
    """EPPP construction CPU seconds, naive [5] vs Algorithm 2, for one
    output of one function (``cs8(1)`` = first output of cs8)."""

    function: str
    output: int
    literals: int
    seconds_naive: int | None  # None = did not finish in 2 days
    seconds_alg2: int


@dataclass(frozen=True)
class Table3Row:
    """Heuristic SPP_0 vs exact SPP (per multi-output function)."""

    function: str
    average: int | None  # midpoint (|SP|+|SPP|)/2; None where starred
    spp0_literals: int
    spp0_seconds: int
    spp_literals: int | None
    spp_seconds: int | None


TABLE1: list[Table1Row] = [
    Table1Row("addm4", 352, 1299, 212, 191133, 520, 74),
    Table1Row("adr4", 75, 340, 75, 7158, 72, 14),
    Table1Row("dist", 279, 829, 150, 48753, 422, 64),
    Table1Row("ex5", 650, 828, 307, 273695, 723, 253),
    Table1Row("exps", 950, 3007, 499, 63083, 1918, 273),
    Table1Row("life", 224, 672, 84, 2100, 144, 18),
    Table1Row("lin.rom", 827, 2165, 451, 39280, 1235, 227),
    Table1Row("m3", 212, 693, 131, 13768, 423, 74),
    Table1Row("m4", 441, 984, 211, 110198, 646, 123),
    Table1Row("max128", 338, 795, 191, 15504, 492, 108),
    Table1Row("max512", 416, 923, 154, 298623, 517, 76),
    Table1Row("mlp4", 206, 709, 143, 24982, 318, 61),
    Table1Row("newcond", 55, 208, 31, 46889, 122, 15),
    Table1Row("newtpla2", 15, 74, 15, 17146, 74, 15),
    Table1Row("p1", 205, 362, 100, 476360, 232, 44),
    Table1Row("prom2", 2298, 6647, 940, 341557, 3477, 383),
    Table1Row("radd", 75, 340, 75, 6600, 72, 14),
    Table1Row("root", 133, 346, 71, 37324, 220, 39),
    Table1Row("test1", 1066, 1000, 184, 444407, 534, 73),
]

TABLE2: list[Table2Row] = [
    Table2Row("cs8", 1, 124, 783, 4),
    Table2Row("cs8", 2, 93, 12945, 21),
    Table2Row("addm4", 2, 101, 74, 2),
    Table2Row("addm4", 4, 104, None, 146),
    Table2Row("prom1", 15, 213, 40, 1),
    Table2Row("prom1", 31, 278, None, 41),
    Table2Row("max128", 20, 7, 4097, 7),
    Table2Row("m3", 3, 13, 7039, 9),
    Table2Row("m4", 0, 5, None, 4023),
    Table2Row("risc", 2, 12, 10, 1),
    Table2Row("ex5", 50, 9, None, 3973),
    Table2Row("max512", 5, 208, None, 204),
]

TABLE3: list[Table3Row] = [
    Table3Row("alu", None, 41, 51050, None, None),
    Table3Row("addm4", 910, 939, 16, 520, 27340),
    Table3Row("add6", None, 1212, 7454, None, None),
    Table3Row("amd", None, 905, 96826, None, None),
    Table3Row("dist", 626, 639, 23, 422, 61925),
    Table3Row("f51m", 233, 216, 13, 146, 339),
    Table3Row("max512", 720, 693, 40, 517, 12609),
    Table3Row("max1024", None, 1098, 192, None, None),
    Table3Row("mlp4", 586, 643, 7, 318, 778),
    Table3Row("m4", 815, 785, 64, 646, 18123),
    Table3Row("newcond", 165, 166, 12, 122, 15587),
]

# Data points for figures 3/4 quoted in the running text (Section 4).
FIG34_TEXT_POINTS = {
    "dist": {
        "sp_literals": 829,
        "sp_seconds": 12,
        "spp_k": {0: (639, 23), 6: (462, 11285), 7: (422, 61925)},
    },
    "f51m": {
        "sp_literals": None,
        "sp_seconds": None,
        "spp_k": {0: (216, 13), 7: (146, 339)},
    },
}
