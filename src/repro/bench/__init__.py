"""Benchmark functions (exact constructions + documented surrogates)
and the paper's published numbers."""

from repro.bench.suite import BENCHMARKS, BenchmarkSpec, benchmark_names, get_benchmark

__all__ = ["BENCHMARKS", "BenchmarkSpec", "benchmark_names", "get_benchmark"]
