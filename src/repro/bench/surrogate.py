"""Structured surrogates for unavailable MCNC PLAs.

For benchmark rows whose PLA has no mathematical definition (``m3``,
``ex5``, ``p1``, ``test1``, …) we generate a *mixed-structure* function:
each output is a seeded composition of

* cube terms (AND of literals) — the SP-friendly part,
* affine terms (XOR chains, possibly guarded by a small cube) — the
  part SPP minimization exploits,

OR-ed together.  This mirrors what control-logic PLAs look like (mostly
cubes with some arithmetic-flavoured columns) and keeps the paper's
qualitative SP-vs-SPP gap observable without pretending to reproduce
the exact function.  Generation is bit-for-bit deterministic in the
seed (see :mod:`repro.bench.prng`).
"""

from __future__ import annotations

from repro.bench.prng import SplitMix64
from repro.boolfunc.function import BoolFunc, MultiBoolFunc

__all__ = ["arithmetic_mix"]


def _cube_term(rng: SplitMix64, n: int) -> tuple[int, int]:
    """A random cube: (care mask, values)."""
    width = 1 + rng.below(max(n - 1, 1))
    care = rng.nonzero_mask(n, weight=width / n)
    values = rng.mask(n) & care
    return care, values


def _affine_term(rng: SplitMix64, n: int) -> tuple[int, int, int, int]:
    """A random guarded XOR: (xor support, parity, guard mask, guard values)."""
    support = rng.nonzero_mask(n, weight=0.4)
    parity = rng.below(2)
    if rng.chance(0.5):
        guard_care, guard_values = _cube_term(rng, n)
        # Keep guards narrow so terms stay reasonably large.
        guard_care &= rng.mask(n, weight=0.3)
        guard_values &= guard_care
    else:
        guard_care = guard_values = 0
    return support, parity, guard_care, guard_values


def arithmetic_mix(
    name: str,
    n_inputs: int,
    n_outputs: int,
    *,
    seed: int,
    cube_terms: int = 3,
    affine_terms: int = 2,
) -> MultiBoolFunc:
    """A multi-output function mixing cube and guarded-XOR terms."""
    rng = SplitMix64(seed)
    outputs = []
    space = 1 << n_inputs
    for _ in range(n_outputs):
        cubes = [_cube_term(rng, n_inputs) for _ in range(cube_terms)]
        affines = [_affine_term(rng, n_inputs) for _ in range(affine_terms)]
        on = set()
        for p in range(space):
            value = 0
            for care, values in cubes:
                if (p & care) == values:
                    value = 1
                    break
            if not value:
                for support, parity, guard_care, guard_values in affines:
                    if (p & guard_care) == guard_values and (
                        ((p & support).bit_count() & 1) ^ parity
                    ):
                        value = 1
                        break
            if value:
                on.add(p)
        outputs.append(BoolFunc(n_inputs, frozenset(on)))
    return MultiBoolFunc(n_inputs, tuple(outputs), name=name)
