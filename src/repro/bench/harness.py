"""Experiment harness regenerating the paper's tables and figures.

Each ``run_*`` function reproduces the measurement behind one table or
figure and returns dataclasses mirroring the paper's columns;
``render_*`` prints them side by side with the published values
(:mod:`repro.bench.paper_data`).

Absolute CPU times are not comparable — the paper ran a C
implementation on a Pentium III 450 — so the claims under test are the
shape claims: SPP ≈ half of SP, Algorithm 2 ≫ the naive algorithm,
``SPP_0`` roughly midway between SP and SPP at a fraction of the exact
cost, and the literal/time trade-off in ``k``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.paper_data import TABLE1, TABLE2, TABLE3
from repro.bench.suite import get_benchmark
from repro.boolfunc.function import BoolFunc
from repro.minimize.eppp import GenerationBudgetExceeded, generate_eppp
from repro.minimize.exact import cover_with, minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.naive import generate_eppp_naive
from repro.minimize.sp import minimize_sp
from repro.report import render_table
from repro.verify import assert_equivalent

__all__ = [
    "Table1Measurement",
    "Table2Measurement",
    "Table3Measurement",
    "SweepPoint",
    "QUICK_TABLE1",
    "QUICK_TABLE2",
    "QUICK_TABLE3",
    "QUICK_FIG34",
    "FULL_TABLE2",
    "FULL_TABLE3",
    "FULL_FIG34",
    "run_table1_row",
    "run_table2_row",
    "run_table3_row",
    "run_spp_k_sweep",
    "run_table1_rows",
    "run_table2_rows",
    "run_table3_rows",
    "run_fig34_sweeps",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_fig34",
]

# Instances cheap enough for the default (quick) benchmark mode; the
# full paper lists live in paper_data and are reachable with --full.
QUICK_TABLE1 = [
    "adr2", "adr3", "mlp2", "dist3", "csa2", "life6", "bcd7seg", "adr4", "life",
]
QUICK_TABLE2 = [
    ("adr3", 2),
    ("dist3", 1),
    ("csa2", 2),
    ("life6", 0),
    ("life7", 0),
    ("mlp2", 2),
]
QUICK_TABLE3 = ["adr3", "dist3", "mlp2", "csa2", "life6"]
QUICK_FIG34 = ["dist3", "life6"]

# Full-table row lists (reachable with --full): every paper row whose
# benchmark function is registered.
FULL_TABLE2 = [(row.function, row.output) for row in TABLE2]
FULL_TABLE3 = [row.function for row in TABLE3]
FULL_FIG34 = ["dist", "f51m"]


@dataclass
class Table1Measurement:
    """One row of Table 1 (whole multi-output function, outputs summed)."""

    function: str
    sp_primes: int
    sp_literals: int
    sp_products: int
    spp_eppps: int
    spp_literals: int
    spp_products: int
    seconds_sp: float
    seconds_spp: float
    truncated: bool = False
    # Mincov reduction report for the SPP covering steps, summed over
    # outputs (counts added, passes maxed); None when no output
    # produced one.
    covering_stats: dict | None = None


def _merge_covering_stats(acc: dict | None, stats: dict | None) -> dict | None:
    """Accumulate per-output reduction reports into one row summary."""
    if stats is None:
        return acc
    if acc is None:
        return dict(stats)
    for key, value in stats.items():
        if key == "passes":
            acc[key] = max(acc.get(key, 0), value)
        elif isinstance(value, bool) or not isinstance(value, int):
            acc[key] = value
        else:
            acc[key] = acc.get(key, 0) + value
    return acc


@dataclass
class Table2Measurement:
    """One row of Table 2 (single output; EPPP construction times)."""

    function: str
    output: int
    literals: int
    seconds_naive: float | None
    seconds_alg2: float
    comparisons_naive: int | None
    comparisons_alg2: int


@dataclass
class Table3Measurement:
    """One row of Table 3 (SPP_0 heuristic vs exact SPP)."""

    function: str
    average: float
    spp0_literals: int
    spp0_seconds: float
    spp_literals: int | None
    spp_seconds: float | None


@dataclass
class SweepPoint:
    """One point of the figures 3/4 sweep."""

    function: str
    k: int
    literals: int
    seconds: float


def _outputs(name: str) -> list[BoolFunc]:
    func = get_benchmark(name)
    return [f for f in func.outputs if f.on_set]


def run_table1_row(
    name: str,
    *,
    covering: str = "greedy",
    max_pseudoproducts: int | None = None,
    verify: bool = True,
) -> Table1Measurement:
    """Minimize every output of ``name`` with SP and SPP (Algorithm 2),
    summing the paper's per-function metrics."""
    measurement = Table1Measurement(name, 0, 0, 0, 0, 0, 0, 0.0, 0.0)
    for fo in _outputs(name):
        t0 = time.perf_counter()
        sp = minimize_sp(fo, covering=covering)
        measurement.seconds_sp += time.perf_counter() - t0
        spp = minimize_spp(
            fo,
            covering=covering,
            max_pseudoproducts=max_pseudoproducts,
            on_limit="stop",
        )
        if verify:
            assert_equivalent(sp.form, fo)
            assert_equivalent(spp.form, fo)
        measurement.sp_primes += sp.num_primes
        measurement.sp_literals += sp.num_literals
        measurement.sp_products += sp.num_products
        measurement.spp_eppps += spp.num_candidates
        measurement.spp_literals += spp.num_literals
        measurement.spp_products += spp.num_pseudoproducts
        measurement.seconds_spp += spp.seconds
        measurement.covering_stats = _merge_covering_stats(
            measurement.covering_stats, spp.covering_stats
        )
        if spp.generation is not None and spp.generation.truncated:
            measurement.truncated = True
    return measurement


def run_table2_row(
    name: str,
    output: int,
    *,
    naive_timeout: float | None = 60.0,
    covering: str = "greedy",
    max_pseudoproducts: int | None = None,
) -> Table2Measurement:
    """EPPP-construction time, naive [5] vs Algorithm 2, for one output.

    ``max_pseudoproducts`` caps Algorithm 2's generation (XOR-heavy
    outputs of wide functions can have astronomically many
    pseudoproducts); a capped run still yields a verified upper-bound
    cover, and the naive side is given the same cap.
    """
    fo = get_benchmark(name)[output]
    t0 = time.perf_counter()
    generation = generate_eppp(
        fo, max_pseudoproducts=max_pseudoproducts, on_limit="stop"
    )
    seconds_alg2 = time.perf_counter() - t0
    form, _, _, _ = cover_with(fo, generation.eppps, covering=covering)
    try:
        t0 = time.perf_counter()
        naive = generate_eppp_naive(
            fo, max_seconds=naive_timeout, max_pseudoproducts=max_pseudoproducts
        )
        seconds_naive: float | None = time.perf_counter() - t0
        comparisons_naive: int | None = naive.total_comparisons
    except GenerationBudgetExceeded:
        seconds_naive = None
        comparisons_naive = None
    return Table2Measurement(
        function=name,
        output=output,
        literals=form.num_literals,
        seconds_naive=seconds_naive,
        seconds_alg2=seconds_alg2,
        comparisons_naive=comparisons_naive,
        comparisons_alg2=generation.total_comparisons,
    )


def run_table3_row(
    name: str,
    *,
    covering: str = "greedy",
    exact_budget: int | None = None,
    heuristic_budget: int | None = None,
    verify: bool = True,
) -> Table3Measurement:
    """``SPP_0`` vs exact SPP for a whole function (outputs summed).

    ``exact_budget`` bounds the exact run's pseudoproduct generation;
    exceeding it reproduces the paper's starred cells (None fields).
    ``heuristic_budget`` bounds the heuristic's per-step union work.
    """
    spp0_literals = 0
    spp0_seconds = 0.0
    spp_literals: int | None = 0
    spp_seconds: float | None = 0.0
    sp_literals = 0
    for fo in _outputs(name):
        sp_literals += minimize_sp(fo, covering=covering).num_literals
        r0 = minimize_spp_k(
            fo, 0, covering=covering, max_comparisons=heuristic_budget
        )
        if verify:
            assert_equivalent(r0.form, fo)
        spp0_literals += r0.num_literals
        spp0_seconds += r0.seconds
        if spp_literals is None:
            continue
        try:
            rx = minimize_spp(
                fo, covering=covering, max_pseudoproducts=exact_budget
            )
            if verify:
                assert_equivalent(rx.form, fo)
            spp_literals += rx.num_literals
            spp_seconds += rx.seconds
        except GenerationBudgetExceeded:
            spp_literals = None
            spp_seconds = None
    average = (
        (sp_literals + spp_literals) / 2 if spp_literals is not None else float("nan")
    )
    return Table3Measurement(
        function=name,
        average=average,
        spp0_literals=spp0_literals,
        spp0_seconds=spp0_seconds,
        spp_literals=spp_literals,
        spp_seconds=spp_seconds,
    )


def run_spp_k_sweep(
    name: str,
    *,
    ks: list[int] | None = None,
    covering: str = "greedy",
    heuristic_budget: int | None = None,
    verify: bool = True,
) -> list[SweepPoint]:
    """The figures 3/4 sweep: literals and time of ``SPP_k`` over ``k``."""
    func = get_benchmark(name)
    if ks is None:
        ks = list(range(func.n))
    points = []
    for k in ks:
        literals = 0
        seconds = 0.0
        for fo in _outputs(name):
            r = minimize_spp_k(
                fo, k, covering=covering, max_comparisons=heuristic_budget
            )
            if verify:
                assert_equivalent(r.form, fo)
            literals += r.num_literals
            seconds += r.seconds
        points.append(SweepPoint(name, k, literals, seconds))
    return points


# ----------------------------------------------------------------------
# Engine-routed runners (parallel + cached; see repro.engine)
# ----------------------------------------------------------------------
#
# The sequential ``run_*_row`` functions above stay the reference
# implementation; these fan the same measurements across a worker pool
# through the batch engine, so table rows run in parallel, repeated
# minimizations hit the result cache, and a row that explodes degrades
# down the ladder (marked "capped") instead of wedging the whole table.

def _engine_outputs(name: str) -> list[tuple[int, BoolFunc]]:
    func = get_benchmark(name)
    return [(o, f) for o, f in enumerate(func.outputs) if f.on_set]


def run_table1_rows(
    names: list[str],
    *,
    covering: str = "greedy",
    max_pseudoproducts: int | None = None,
    workers: int | None = None,
    timeout: float | None = None,
    cache=None,
    delta_index=None,
) -> list[Table1Measurement]:
    """Table 1 via the batch engine: every (output × method) is one job.

    ``delta_index`` (a :class:`repro.delta.DeltaIndex`) lets cache-missed
    exact jobs try the near-duplicate warm path first; its counters end
    up in the ``tables --perf-json`` report meta.
    """
    from repro.engine import Job, run_batch

    jobs: list[Job] = []
    keys: list[tuple[str, str]] = []
    for name in names:
        for o, fo in _engine_outputs(name):
            jobs.append(Job(fo, method="sp", covering=covering, label=f"{name}[{o}]/sp"))
            keys.append((name, "sp"))
            jobs.append(
                Job(
                    fo,
                    method="exact",
                    covering=covering,
                    max_pseudoproducts=max_pseudoproducts,
                    label=f"{name}[{o}]/spp",
                )
            )
            keys.append((name, "spp"))
    batch = run_batch(
        jobs, workers=workers, timeout=timeout, cache=cache, delta_index=delta_index
    )
    rows = {n: Table1Measurement(n, 0, 0, 0, 0, 0, 0, 0.0, 0.0) for n in names}
    for (name, kind), outcome in zip(keys, batch):
        record = outcome.record
        if record is None:
            raise RuntimeError(f"job {outcome.job.display_label} failed: {outcome.attempts}")
        m = rows[name]
        if kind == "sp":
            m.sp_primes += record["extras"].get("num_primes", record["candidates"])
            m.sp_literals += record["literals"]
            m.sp_products += record["pseudoproducts"]
            m.seconds_sp += record["seconds"]
        else:
            m.spp_eppps += record["candidates"]
            m.spp_literals += record["literals"]
            m.spp_products += record["pseudoproducts"]
            m.seconds_spp += record["seconds"]
            m.covering_stats = _merge_covering_stats(
                m.covering_stats, record["extras"].get("covering")
            )
            if record.get("truncated") or record.get("degraded"):
                m.truncated = True
    return [rows[n] for n in names]


def run_table2_rows(
    pairs: list[tuple[str, int]],
    *,
    naive_timeout: float | None = 60.0,
    covering: str = "greedy",
    max_pseudoproducts: int | None = None,
    workers: int | None = None,
) -> list[Table2Measurement]:
    """Table 2 rows in parallel.

    A row here is a timing *race* (naive [5] vs Algorithm 2 on the same
    output), not a single minimization, so it goes through the engine's
    generic process-pool map rather than the job/cache path.
    """
    from repro.engine import parallel_map

    return parallel_map(
        _table2_row_task,
        [
            (name, output, naive_timeout, covering, max_pseudoproducts)
            for name, output in pairs
        ],
        workers=workers,
        star=True,
    )


def _table2_row_task(
    name: str,
    output: int,
    naive_timeout: float | None,
    covering: str,
    max_pseudoproducts: int | None,
) -> Table2Measurement:
    return run_table2_row(
        name,
        output,
        naive_timeout=naive_timeout,
        covering=covering,
        max_pseudoproducts=max_pseudoproducts,
    )


def run_table3_rows(
    names: list[str],
    *,
    covering: str = "greedy",
    exact_budget: int | None = None,
    workers: int | None = None,
    timeout: float | None = None,
    cache=None,
) -> list[Table3Measurement]:
    """Table 3 via the batch engine (SP + SPP_0 + exact SPP per output).

    An exact job that was budget-truncated or degraded down the ladder
    reproduces the paper's starred cells (None fields), mirroring the
    sequential runner's ``GenerationBudgetExceeded`` behavior.
    """
    from repro.engine import Job, run_batch

    jobs: list[Job] = []
    keys: list[tuple[str, str]] = []
    for name in names:
        for o, fo in _engine_outputs(name):
            label = f"{name}[{o}]"
            jobs.append(Job(fo, method="sp", covering=covering, label=f"{label}/sp"))
            keys.append((name, "sp"))
            jobs.append(
                Job(fo, method="heuristic", k=0, covering=covering, label=f"{label}/spp0")
            )
            keys.append((name, "spp0"))
            jobs.append(
                Job(
                    fo,
                    method="exact",
                    covering=covering,
                    max_pseudoproducts=exact_budget,
                    label=f"{label}/spp",
                )
            )
            keys.append((name, "spp"))
    batch = run_batch(jobs, workers=workers, timeout=timeout, cache=cache)
    sp_literals = {n: 0 for n in names}
    rows = {n: Table3Measurement(n, 0.0, 0, 0.0, 0, 0.0) for n in names}
    starred: set[str] = set()
    for (name, kind), outcome in zip(keys, batch):
        record = outcome.record
        if record is None:
            raise RuntimeError(f"job {outcome.job.display_label} failed: {outcome.attempts}")
        m = rows[name]
        if kind == "sp":
            sp_literals[name] += record["literals"]
        elif kind == "spp0":
            m.spp0_literals += record["literals"]
            m.spp0_seconds += record["seconds"]
        else:
            if record.get("truncated") or record.get("degraded"):
                starred.add(name)
            elif name not in starred:
                m.spp_literals += record["literals"]
                m.spp_seconds += record["seconds"]
    for name in names:
        m = rows[name]
        if name in starred:
            m.spp_literals = None
            m.spp_seconds = None
            m.average = float("nan")
        else:
            m.average = (sp_literals[name] + m.spp_literals) / 2
    return [rows[n] for n in names]


def run_fig34_sweeps(
    names: list[str],
    *,
    ks: list[int] | None = None,
    covering: str = "greedy",
    workers: int | None = None,
    timeout: float | None = None,
    cache=None,
) -> list[SweepPoint]:
    """The figures 3/4 sweep via the batch engine: one job per
    (function, output, k); the shared ``k=0`` work caches across sweeps."""
    from repro.engine import Job, run_batch

    jobs: list[Job] = []
    keys: list[tuple[str, int]] = []
    for name in names:
        func = get_benchmark(name)
        sweep = ks if ks is not None else list(range(func.n))
        for k in sweep:
            for o, fo in _engine_outputs(name):
                jobs.append(
                    Job(
                        fo,
                        method="heuristic",
                        k=k,
                        covering=covering,
                        label=f"{name}[{o}]/k{k}",
                    )
                )
                keys.append((name, k))
    batch = run_batch(jobs, workers=workers, timeout=timeout, cache=cache)
    points: dict[tuple[str, int], SweepPoint] = {}
    for (name, k), outcome in zip(keys, batch):
        record = outcome.record
        if record is None:
            raise RuntimeError(f"job {outcome.job.display_label} failed: {outcome.attempts}")
        point = points.setdefault((name, k), SweepPoint(name, k, 0, 0.0))
        point.literals += record["literals"]
        point.seconds += record["seconds"]
    return [points[key] for key in dict.fromkeys(keys)]


# ----------------------------------------------------------------------
# Rendering (side-by-side with the paper's published values)
# ----------------------------------------------------------------------

def render_table1(measurements: list[Table1Measurement]) -> str:
    paper = {row.function: row for row in TABLE1}
    rows = []
    for m in measurements:
        p = paper.get(m.function)
        rows.append(
            [
                m.function + (" (capped)" if m.truncated else ""),
                m.sp_primes,
                m.sp_literals,
                m.sp_products,
                m.spp_eppps,
                m.spp_literals,
                m.spp_products,
                p.sp_literals if p else None,
                p.spp_literals if p else None,
                round(m.spp_literals / m.sp_literals, 2) if m.sp_literals else None,
            ]
        )
    return render_table(
        [
            "function",
            "#PI",
            "#L(SP)",
            "#P",
            "#EPPP",
            "#L(SPP)",
            "#PP",
            "paper L(SP)",
            "paper L(SPP)",
            "SPP/SP",
        ],
        rows,
        title="Table 1 — SP vs SPP (measured | paper)",
    )


def render_table2(measurements: list[Table2Measurement]) -> str:
    paper = {(row.function, row.output): row for row in TABLE2}
    rows = []
    for m in measurements:
        p = paper.get((m.function, m.output))
        speedup = (
            round(m.seconds_naive / m.seconds_alg2, 1)
            if m.seconds_naive and m.seconds_alg2 > 0
            else None
        )
        rows.append(
            [
                f"{m.function}({m.output})",
                m.literals,
                None if m.seconds_naive is None else round(m.seconds_naive, 3),
                round(m.seconds_alg2, 3),
                speedup,
                m.comparisons_naive,
                m.comparisons_alg2,
                p.seconds_naive if p else None,
                p.seconds_alg2 if p else None,
            ]
        )
    return render_table(
        [
            "function",
            "#L",
            "naive s",
            "alg2 s",
            "speedup",
            "cmp naive",
            "cmp alg2",
            "paper naive s",
            "paper alg2 s",
        ],
        rows,
        title="Table 2 — EPPP construction time, naive [5] vs Algorithm 2",
    )


def render_table3(measurements: list[Table3Measurement]) -> str:
    paper = {row.function: row for row in TABLE3}
    rows = []
    for m in measurements:
        p = paper.get(m.function)
        rows.append(
            [
                m.function,
                round(m.average, 1),
                m.spp0_literals,
                round(m.spp0_seconds, 3),
                m.spp_literals,
                None if m.spp_seconds is None else round(m.spp_seconds, 3),
                p.spp0_literals if p else None,
                p.spp_literals if p else None,
            ]
        )
    return render_table(
        [
            "function",
            "Av",
            "#L SPP0",
            "SPP0 s",
            "#L SPP",
            "SPP s",
            "paper L0",
            "paper L",
        ],
        rows,
        title="Table 3 — heuristic (k=0) vs exact SPP",
    )


def render_fig34(points: list[SweepPoint]) -> str:
    rows = [
        [p.function, p.k, p.literals, round(p.seconds, 3)] for p in points
    ]
    return render_table(
        ["function", "k", "#L SPP_k", "seconds"],
        rows,
        title="Figures 3/4 — SPP_k literals and CPU time vs k",
    )
