"""Experiment harness regenerating the paper's tables and figures.

Each ``run_*`` function reproduces the measurement behind one table or
figure and returns dataclasses mirroring the paper's columns;
``render_*`` prints them side by side with the published values
(:mod:`repro.bench.paper_data`).

Absolute CPU times are not comparable — the paper ran a C
implementation on a Pentium III 450 — so the claims under test are the
shape claims: SPP ≈ half of SP, Algorithm 2 ≫ the naive algorithm,
``SPP_0`` roughly midway between SP and SPP at a fraction of the exact
cost, and the literal/time trade-off in ``k``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.paper_data import TABLE1, TABLE2, TABLE3
from repro.bench.suite import get_benchmark
from repro.boolfunc.function import BoolFunc
from repro.minimize.eppp import GenerationBudgetExceeded, generate_eppp
from repro.minimize.exact import cover_with, minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.naive import generate_eppp_naive
from repro.minimize.sp import minimize_sp
from repro.report import render_table
from repro.verify import assert_equivalent

__all__ = [
    "Table1Measurement",
    "Table2Measurement",
    "Table3Measurement",
    "SweepPoint",
    "QUICK_TABLE1",
    "QUICK_TABLE2",
    "QUICK_TABLE3",
    "QUICK_FIG34",
    "run_table1_row",
    "run_table2_row",
    "run_table3_row",
    "run_spp_k_sweep",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_fig34",
]

# Instances cheap enough for the default (quick) benchmark mode; the
# full paper lists live in paper_data and are reachable with --full.
QUICK_TABLE1 = [
    "adr2", "adr3", "mlp2", "dist3", "csa2", "life6", "bcd7seg", "adr4", "life",
]
QUICK_TABLE2 = [
    ("adr3", 2),
    ("dist3", 1),
    ("csa2", 2),
    ("life6", 0),
    ("life7", 0),
    ("mlp2", 2),
]
QUICK_TABLE3 = ["adr3", "dist3", "mlp2", "csa2", "life6"]
QUICK_FIG34 = ["dist3", "life6"]


@dataclass
class Table1Measurement:
    """One row of Table 1 (whole multi-output function, outputs summed)."""

    function: str
    sp_primes: int
    sp_literals: int
    sp_products: int
    spp_eppps: int
    spp_literals: int
    spp_products: int
    seconds_sp: float
    seconds_spp: float
    truncated: bool = False


@dataclass
class Table2Measurement:
    """One row of Table 2 (single output; EPPP construction times)."""

    function: str
    output: int
    literals: int
    seconds_naive: float | None
    seconds_alg2: float
    comparisons_naive: int | None
    comparisons_alg2: int


@dataclass
class Table3Measurement:
    """One row of Table 3 (SPP_0 heuristic vs exact SPP)."""

    function: str
    average: float
    spp0_literals: int
    spp0_seconds: float
    spp_literals: int | None
    spp_seconds: float | None


@dataclass
class SweepPoint:
    """One point of the figures 3/4 sweep."""

    function: str
    k: int
    literals: int
    seconds: float


def _outputs(name: str) -> list[BoolFunc]:
    func = get_benchmark(name)
    return [f for f in func.outputs if f.on_set]


def run_table1_row(
    name: str,
    *,
    covering: str = "greedy",
    max_pseudoproducts: int | None = None,
    verify: bool = True,
) -> Table1Measurement:
    """Minimize every output of ``name`` with SP and SPP (Algorithm 2),
    summing the paper's per-function metrics."""
    measurement = Table1Measurement(name, 0, 0, 0, 0, 0, 0, 0.0, 0.0)
    for fo in _outputs(name):
        t0 = time.perf_counter()
        sp = minimize_sp(fo, covering=covering)
        measurement.seconds_sp += time.perf_counter() - t0
        spp = minimize_spp(
            fo,
            covering=covering,
            max_pseudoproducts=max_pseudoproducts,
            on_limit="stop",
        )
        if verify:
            assert_equivalent(sp.form, fo)
            assert_equivalent(spp.form, fo)
        measurement.sp_primes += sp.num_primes
        measurement.sp_literals += sp.num_literals
        measurement.sp_products += sp.num_products
        measurement.spp_eppps += spp.num_candidates
        measurement.spp_literals += spp.num_literals
        measurement.spp_products += spp.num_pseudoproducts
        measurement.seconds_spp += spp.seconds
        if spp.generation is not None and spp.generation.truncated:
            measurement.truncated = True
    return measurement


def run_table2_row(
    name: str,
    output: int,
    *,
    naive_timeout: float | None = 60.0,
    covering: str = "greedy",
    max_pseudoproducts: int | None = None,
) -> Table2Measurement:
    """EPPP-construction time, naive [5] vs Algorithm 2, for one output.

    ``max_pseudoproducts`` caps Algorithm 2's generation (XOR-heavy
    outputs of wide functions can have astronomically many
    pseudoproducts); a capped run still yields a verified upper-bound
    cover, and the naive side is given the same cap.
    """
    fo = get_benchmark(name)[output]
    t0 = time.perf_counter()
    generation = generate_eppp(
        fo, max_pseudoproducts=max_pseudoproducts, on_limit="stop"
    )
    seconds_alg2 = time.perf_counter() - t0
    form, _, _ = cover_with(fo, generation.eppps, covering=covering)
    try:
        t0 = time.perf_counter()
        naive = generate_eppp_naive(
            fo, max_seconds=naive_timeout, max_pseudoproducts=max_pseudoproducts
        )
        seconds_naive: float | None = time.perf_counter() - t0
        comparisons_naive: int | None = naive.total_comparisons
    except GenerationBudgetExceeded:
        seconds_naive = None
        comparisons_naive = None
    return Table2Measurement(
        function=name,
        output=output,
        literals=form.num_literals,
        seconds_naive=seconds_naive,
        seconds_alg2=seconds_alg2,
        comparisons_naive=comparisons_naive,
        comparisons_alg2=generation.total_comparisons,
    )


def run_table3_row(
    name: str,
    *,
    covering: str = "greedy",
    exact_budget: int | None = None,
    heuristic_budget: int | None = None,
    verify: bool = True,
) -> Table3Measurement:
    """``SPP_0`` vs exact SPP for a whole function (outputs summed).

    ``exact_budget`` bounds the exact run's pseudoproduct generation;
    exceeding it reproduces the paper's starred cells (None fields).
    ``heuristic_budget`` bounds the heuristic's per-step union work.
    """
    spp0_literals = 0
    spp0_seconds = 0.0
    spp_literals: int | None = 0
    spp_seconds: float | None = 0.0
    sp_literals = 0
    for fo in _outputs(name):
        sp_literals += minimize_sp(fo, covering=covering).num_literals
        r0 = minimize_spp_k(
            fo, 0, covering=covering, max_comparisons=heuristic_budget
        )
        if verify:
            assert_equivalent(r0.form, fo)
        spp0_literals += r0.num_literals
        spp0_seconds += r0.seconds
        if spp_literals is None:
            continue
        try:
            rx = minimize_spp(
                fo, covering=covering, max_pseudoproducts=exact_budget
            )
            if verify:
                assert_equivalent(rx.form, fo)
            spp_literals += rx.num_literals
            spp_seconds += rx.seconds
        except GenerationBudgetExceeded:
            spp_literals = None
            spp_seconds = None
    average = (
        (sp_literals + spp_literals) / 2 if spp_literals is not None else float("nan")
    )
    return Table3Measurement(
        function=name,
        average=average,
        spp0_literals=spp0_literals,
        spp0_seconds=spp0_seconds,
        spp_literals=spp_literals,
        spp_seconds=spp_seconds,
    )


def run_spp_k_sweep(
    name: str,
    *,
    ks: list[int] | None = None,
    covering: str = "greedy",
    heuristic_budget: int | None = None,
    verify: bool = True,
) -> list[SweepPoint]:
    """The figures 3/4 sweep: literals and time of ``SPP_k`` over ``k``."""
    func = get_benchmark(name)
    if ks is None:
        ks = list(range(func.n))
    points = []
    for k in ks:
        literals = 0
        seconds = 0.0
        for fo in _outputs(name):
            r = minimize_spp_k(
                fo, k, covering=covering, max_comparisons=heuristic_budget
            )
            if verify:
                assert_equivalent(r.form, fo)
            literals += r.num_literals
            seconds += r.seconds
        points.append(SweepPoint(name, k, literals, seconds))
    return points


# ----------------------------------------------------------------------
# Rendering (side-by-side with the paper's published values)
# ----------------------------------------------------------------------

def render_table1(measurements: list[Table1Measurement]) -> str:
    paper = {row.function: row for row in TABLE1}
    rows = []
    for m in measurements:
        p = paper.get(m.function)
        rows.append(
            [
                m.function + (" (capped)" if m.truncated else ""),
                m.sp_primes,
                m.sp_literals,
                m.sp_products,
                m.spp_eppps,
                m.spp_literals,
                m.spp_products,
                p.sp_literals if p else None,
                p.spp_literals if p else None,
                round(m.spp_literals / m.sp_literals, 2) if m.sp_literals else None,
            ]
        )
    return render_table(
        [
            "function",
            "#PI",
            "#L(SP)",
            "#P",
            "#EPPP",
            "#L(SPP)",
            "#PP",
            "paper L(SP)",
            "paper L(SPP)",
            "SPP/SP",
        ],
        rows,
        title="Table 1 — SP vs SPP (measured | paper)",
    )


def render_table2(measurements: list[Table2Measurement]) -> str:
    paper = {(row.function, row.output): row for row in TABLE2}
    rows = []
    for m in measurements:
        p = paper.get((m.function, m.output))
        speedup = (
            round(m.seconds_naive / m.seconds_alg2, 1)
            if m.seconds_naive and m.seconds_alg2 > 0
            else None
        )
        rows.append(
            [
                f"{m.function}({m.output})",
                m.literals,
                None if m.seconds_naive is None else round(m.seconds_naive, 3),
                round(m.seconds_alg2, 3),
                speedup,
                m.comparisons_naive,
                m.comparisons_alg2,
                p.seconds_naive if p else None,
                p.seconds_alg2 if p else None,
            ]
        )
    return render_table(
        [
            "function",
            "#L",
            "naive s",
            "alg2 s",
            "speedup",
            "cmp naive",
            "cmp alg2",
            "paper naive s",
            "paper alg2 s",
        ],
        rows,
        title="Table 2 — EPPP construction time, naive [5] vs Algorithm 2",
    )


def render_table3(measurements: list[Table3Measurement]) -> str:
    paper = {row.function: row for row in TABLE3}
    rows = []
    for m in measurements:
        p = paper.get(m.function)
        rows.append(
            [
                m.function,
                round(m.average, 1),
                m.spp0_literals,
                round(m.spp0_seconds, 3),
                m.spp_literals,
                None if m.spp_seconds is None else round(m.spp_seconds, 3),
                p.spp0_literals if p else None,
                p.spp_literals if p else None,
            ]
        )
    return render_table(
        [
            "function",
            "Av",
            "#L SPP0",
            "SPP0 s",
            "#L SPP",
            "SPP s",
            "paper L0",
            "paper L",
        ],
        rows,
        title="Table 3 — heuristic (k=0) vs exact SPP",
    )


def render_fig34(points: list[SweepPoint]) -> str:
    rows = [
        [p.function, p.k, p.literals, round(p.seconds, 3)] for p in points
    ]
    return render_table(
        ["function", "k", "#L SPP_k", "seconds"],
        rows,
        title="Figures 3/4 — SPP_k literals and CPU time vs k",
    )
