"""Arithmetic benchmark functions with exact mathematical definitions.

These are the benchmarks the paper's headline comparisons rest on:
adders (adr4/radd/add6/addm4), the 4×4 multiplier (mlp4), the distance
and square-root functions (dist, root), Conway's life rule (life) and a
carry-save adder (cs8).  Each builder documents the bit-level
convention; inputs pack little-endian (operand ``a`` in the low bits).
"""

from __future__ import annotations

from repro.boolfunc.function import MultiBoolFunc

__all__ = [
    "adder",
    "adr4",
    "radd",
    "add6",
    "addm4",
    "multiplier",
    "mlp4",
    "dist",
    "root",
    "life",
    "life_rule",
    "csa",
    "cs8",
    "f51m",
    "seven_segment",
    "alu",
]


def _fields(point: int, widths: list[int]) -> list[int]:
    """Unpack consecutive little-endian fields from an input point."""
    values = []
    shift = 0
    for w in widths:
        values.append((point >> shift) & ((1 << w) - 1))
        shift += w
    return values


def adder(bits: int, name: str = "") -> MultiBoolFunc:
    """``bits``-bit adder: ``2*bits`` inputs, ``bits+1`` outputs (a+b)."""
    return MultiBoolFunc.from_lambda(
        2 * bits,
        bits + 1,
        lambda p: sum(_fields(p, [bits, bits])),
        name=name or f"adr{bits}",
    )


def adr4() -> MultiBoolFunc:
    """The 4-bit adder (paper benchmark ``adr4``): 8 inputs, 5 outputs."""
    return adder(4, "adr4")


def radd() -> MultiBoolFunc:
    """``radd`` computes the same 4-bit addition as ``adr4`` from a
    redundant PLA; as functions they coincide."""
    return adder(4, "radd")


def add6() -> MultiBoolFunc:
    """The 6-bit adder (paper benchmark ``add6``): 12 inputs, 7 outputs."""
    return adder(6, "add6")


def addm4() -> MultiBoolFunc:
    """Adder variant with 9 inputs / 8 outputs (paper ``addm4``).

    Surrogate definition (the original PLA is unavailable): sum
    ``a + b + cin`` on 4-bit operands (5 output bits) plus the 3-bit
    modular difference ``(a - b) mod 8``, matching the 9-in/8-out
    signature with an arithmetic, XOR-rich structure.
    """

    def word(p: int) -> int:
        a, b, cin = _fields(p, [4, 4, 1])
        total = a + b + cin
        diff = (a - b) % 8
        return total | (diff << 5)

    return MultiBoolFunc.from_lambda(9, 8, word, name="addm4")


def multiplier(bits: int, name: str = "") -> MultiBoolFunc:
    """``bits``×``bits`` multiplier: ``2*bits`` inputs, ``2*bits`` outputs."""
    return MultiBoolFunc.from_lambda(
        2 * bits,
        2 * bits,
        lambda p: (lambda a, b: a * b)(*_fields(p, [bits, bits])),
        name=name or f"mlp{bits}",
    )


def mlp4() -> MultiBoolFunc:
    """The 4×4 multiplier (paper benchmark ``mlp4``): 8 in, 8 out."""
    return multiplier(4, "mlp4")


def dist(bits: int = 4) -> MultiBoolFunc:
    """Distance function (paper ``dist``): 8 inputs, 5 outputs.

    Surrogate definition: ``|a - b|`` on ``bits``-bit operands (4 output
    bits) plus an ``a < b`` flag.
    """

    def word(p: int) -> int:
        a, b = _fields(p, [bits, bits])
        return abs(a - b) | ((a < b) << bits)

    return MultiBoolFunc.from_lambda(
        2 * bits, bits + 1, word, name="dist" if bits == 4 else f"dist{bits}"
    )


def root() -> MultiBoolFunc:
    """Square root (paper ``root``): 8 inputs, 5 outputs.

    ``floor(sqrt(x))`` of the 8-bit input (4 bits) plus a
    perfect-square flag.
    """

    def word(p: int) -> int:
        r = int(p**0.5)
        while (r + 1) * (r + 1) <= p:
            r += 1
        while r * r > p:
            r -= 1
        return r | ((r * r == p) << 4)

    return MultiBoolFunc.from_lambda(8, 5, word, name="root")


def life_rule(neighbours: int = 8) -> MultiBoolFunc:
    """Conway's life rule: centre cell + ``neighbours`` neighbour bits.

    Alive next generation iff exactly 3 neighbours are alive, or the
    centre is alive and exactly 2 are.  ``neighbours=8`` is the paper's
    ``life`` (9 inputs, 1 output); smaller rings give the scaled
    variants used by the quick benchmarks.
    """

    def word(p: int) -> int:
        centre = p & 1
        count = (p >> 1).bit_count()
        return 1 if count == 3 or (centre and count == 2) else 0

    return MultiBoolFunc.from_lambda(
        neighbours + 1,
        1,
        word,
        name="life" if neighbours == 8 else f"life{neighbours + 1}",
    )


def life() -> MultiBoolFunc:
    """The paper's ``life`` benchmark: 9 inputs, 1 output."""
    return life_rule(8)


def csa(bits: int, name: str = "") -> MultiBoolFunc:
    """Carry-save adder on three ``bits``-bit operands.

    Outputs the sum vector ``a ⊕ b ⊕ c`` and the carry vector
    ``maj(a, b, c)`` — ``3*bits`` inputs, ``2*bits`` outputs.
    """

    def word(p: int) -> int:
        a, b, c = _fields(p, [bits, bits, bits])
        sum_vec = a ^ b ^ c
        carry_vec = (a & b) | (a & c) | (b & c)
        return sum_vec | (carry_vec << bits)

    return MultiBoolFunc.from_lambda(3 * bits, 2 * bits, word, name=name or f"csa{bits}")


def cs8() -> MultiBoolFunc:
    """Surrogate for the paper's 8-bit carry-save adder outputs ``cs8``.

    The original circuit's PLA is unavailable; the three-operand sum
    ``a + b + c`` over 3-bit operands (9 inputs, 5 outputs — the
    carry-save tree followed by its final adder) exercises the same
    XOR-plus-majority column structure at a width our harness can
    minimize, without every output degenerating into a single 3-input
    gate the way per-column sum/carry outputs would.
    """

    def word(p: int) -> int:
        a, b, c = _fields(p, [3, 3, 3])
        return a + b + c

    return MultiBoolFunc.from_lambda(9, 5, word, name="cs8")


def f51m() -> MultiBoolFunc:
    """Surrogate for MCNC ``f51m`` (8 inputs, 8 outputs).

    An add/subtract arithmetic slice: ``a + b`` (5 bits) and
    ``(a - b) mod 8`` (3 bits) over 4-bit operands.
    """

    def word(p: int) -> int:
        a, b = _fields(p, [4, 4])
        return (a + b) | (((a - b) % 8) << 5)

    return MultiBoolFunc.from_lambda(8, 8, word, name="f51m")


_SEVEN_SEGMENT = {
    0: 0b0111111, 1: 0b0000110, 2: 0b1011011, 3: 0b1001111, 4: 0b1100110,
    5: 0b1101101, 6: 0b1111101, 7: 0b0000111, 8: 0b1111111, 9: 0b1101111,
}


def seven_segment() -> MultiBoolFunc:
    """BCD → seven-segment decoder: 4 inputs, 7 outputs (segments a–g).

    Inputs 10–15 are not BCD digits and form the don't-care set of every
    output — the classic incompletely-specified benchmark, exercising
    the dc paths of the whole pipeline (pseudoproducts may absorb dc
    points; covering targets only the on-set).
    """
    from repro.boolfunc.function import BoolFunc

    outputs = []
    dc = frozenset(range(10, 16))
    for segment in range(7):
        on = frozenset(
            digit for digit, mask in _SEVEN_SEGMENT.items() if (mask >> segment) & 1
        )
        outputs.append(BoolFunc(4, on, dc))
    return MultiBoolFunc(4, tuple(outputs), name="bcd7seg")


def alu() -> MultiBoolFunc:
    """Surrogate ALU (12 inputs, 8 outputs) for the paper's ``alu`` row.

    Inputs: a(4), b(4), op(3), cin(1).  Ops: add, sub, and, or, xor,
    nor, shift-left, pass-b.  Outputs: 4-bit result, carry-out, zero,
    negative (msb), parity.
    """

    def word(p: int) -> int:
        a, b, op, cin = _fields(p, [4, 4, 3, 1])
        if op == 0:
            full = a + b + cin
        elif op == 1:
            full = (a - b - cin) % 32
        elif op == 2:
            full = a & b
        elif op == 3:
            full = a | b
        elif op == 4:
            full = a ^ b
        elif op == 5:
            full = (~(a | b)) & 0xF
        elif op == 6:
            full = (a << 1) | cin
        else:
            full = b
        result = full & 0xF
        carry = (full >> 4) & 1
        zero = 1 if result == 0 else 0
        negative = (result >> 3) & 1
        parity = bin(result).count("1") & 1
        return result | (carry << 4) | (zero << 5) | (negative << 6) | (parity << 7)

    return MultiBoolFunc.from_lambda(12, 8, word, name="alu")
