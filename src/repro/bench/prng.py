"""A tiny deterministic PRNG for surrogate benchmark generation.

``random.Random`` is stable in practice, but its sequence is only
guaranteed per Python version; benchmark functions must be bit-for-bit
reproducible anywhere, so we use SplitMix64 — a 10-line, well-studied
generator with excellent statistical quality for this purpose.
"""

from __future__ import annotations

__all__ = ["SplitMix64"]

_MASK = (1 << 64) - 1


class SplitMix64:
    """SplitMix64 (Steele, Lea & Flood 2014)."""

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    def below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` (rejection sampling)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        limit = (1 << 64) - ((1 << 64) % bound)
        while True:
            value = self.next_u64()
            if value < limit:
                return value % bound

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self.next_u64() < probability * (1 << 64)

    def mask(self, n: int, weight: float = 0.5) -> int:
        """Random n-bit mask; each bit set with the given probability."""
        value = 0
        for i in range(n):
            if self.chance(weight):
                value |= 1 << i
        return value

    def nonzero_mask(self, n: int, weight: float = 0.5) -> int:
        """Like :meth:`mask` but never zero."""
        while True:
            value = self.mask(n, weight)
            if value:
                return value
