"""Machine-readable performance reports — the ``BENCH_*.json`` schema.

The ROADMAP's north star ("as fast as the hardware allows") is only
enforceable if every PR leaves a comparable timing record behind.  This
module defines that record: a small JSON schema (``repro-bench/1``)
with an environment fingerprint (python version, platform, cpu count,
git sha) and a flat list of named timing entries, plus helpers to
validate a report and to compare two reports entry by entry.

Producers:

* ``spp-minimize bench --json BENCH_<tag>.json`` runs the pinned
  micro/meso suite (:func:`run_perf_suite`) — generation, covering
  build, covering solve, and end-to-end table rows;
* ``spp-minimize tables ... --perf-json FILE`` records the rows of a
  table run in the same schema, so full paper regenerations feed the
  same trajectory.

Consumers: ``compare_reports`` (used by ``bench --baseline`` and the
CI ``bench-smoke`` job) flags any entry slower than
``max_regression × baseline``.  Timing entries record both the minimum
("best", the low-noise statistic micro-benchmarks should compare) and
the mean over ``repeats`` runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SCHEMA",
    "BenchEntry",
    "environment_fingerprint",
    "make_report",
    "validate_report",
    "compare_reports",
    "write_report",
    "load_report",
    "run_perf_suite",
]

SCHEMA = "repro-bench/1"

# Pinned suite instances.  Small enough for CI, large enough that the
# covering-build kernel's structure grouping is actually exercised
# (adr4[4] alone has ~5000 distinct direction bases).
GENERATION_CASES = [("adr3", 2), ("dist3", 1), ("life6", 0)]
COVERING_CASES = [("adr4", 3), ("adr4", 4), ("life", 0)]
E2E_TABLE1_CASES = ["adr3", "dist3", "life6"]
# Incremental re-minimization: (benchmark, output, edit size).  Each
# entry times the warm path on a k-point care-preserving edit and pairs
# it with the from-scratch solve of the same edited function in the
# same process (the gen/* self-calibration pattern) — the CI delta gate
# checks the recorded ratio, not absolute times.
DELTA_CASES = [("life", 0, 2), ("dist", 1, 2), ("adr4", 3, 2)]


@dataclass
class BenchEntry:
    """One named timing: ``best``/``mean`` seconds over ``repeats`` runs."""

    name: str
    group: str
    best: float
    mean: float
    repeats: int
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "group": self.group,
            "best": self.best,
            "mean": self.mean,
            "repeats": self.repeats,
            "meta": self.meta,
        }


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> dict[str, Any]:
    """Where the numbers came from: python, platform, cpus, git sha."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def make_report(
    tag: str, entries: list[BenchEntry], meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Assemble a schema-conformant report dict.

    ``meta`` attaches report-level context (e.g. the warm-path counters
    ``warm_hits``/``delta_fallbacks`` of a ``tables --perf-json`` run);
    comparisons ignore it.
    """
    report = {
        "schema": SCHEMA,
        "tag": tag,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": environment_fingerprint(),
        "entries": [e.to_dict() for e in entries],
    }
    if meta is not None:
        report["meta"] = meta
    return report


def validate_report(data: Any) -> None:
    """Raise ``ValueError`` unless ``data`` is a valid ``repro-bench/1``
    report.  Used on both the write path (never emit garbage) and the
    baseline-load path (fail loudly on a corrupt committed file)."""
    if not isinstance(data, dict):
        raise ValueError("report must be a JSON object")
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unknown schema {data.get('schema')!r}")
    if not isinstance(data.get("tag"), str) or not data["tag"]:
        raise ValueError("report tag must be a non-empty string")
    env = data.get("environment")
    if not isinstance(env, dict):
        raise ValueError("report lacks an environment fingerprint")
    for key in ("python", "platform", "cpu_count"):
        if key not in env:
            raise ValueError(f"environment fingerprint lacks {key!r}")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError("report entries must be a list")
    seen: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("entry must be an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("entry name must be a non-empty string")
        if name in seen:
            raise ValueError(f"duplicate entry name {name!r}")
        seen.add(name)
        for key in ("best", "mean"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"entry {name!r}: {key} must be >= 0")
        repeats = entry.get("repeats")
        if not isinstance(repeats, int) or repeats < 1:
            raise ValueError(f"entry {name!r}: repeats must be a positive int")


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 2.5,
) -> list[dict[str, Any]]:
    """Entry-by-entry ratio of ``current`` to ``baseline`` best times.

    Returns one row per entry name present in both reports:
    ``{"name", "current", "baseline", "ratio", "regressed"}``.
    ``regressed`` is True when current is more than ``max_regression``
    times slower.  Entries only in one report are ignored (suites may
    grow across PRs).
    """
    validate_report(current)
    validate_report(baseline)
    base = {e["name"]: e for e in baseline["entries"]}
    rows: list[dict[str, Any]] = []
    for entry in current["entries"]:
        other = base.get(entry["name"])
        if other is None:
            continue
        cur_s, base_s = entry["best"], other["best"]
        ratio = cur_s / base_s if base_s > 0 else (1.0 if cur_s == 0 else float("inf"))
        rows.append(
            {
                "name": entry["name"],
                "current": cur_s,
                "baseline": base_s,
                "ratio": ratio,
                "regressed": ratio > max_regression,
            }
        )
    return rows


def write_report(path: str, report: dict[str, Any]) -> None:
    validate_report(report)
    with open(path, "w", encoding="ascii") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> dict[str, Any]:
    with open(path, encoding="ascii") as handle:
        data = json.load(handle)
    validate_report(data)
    return data


# ----------------------------------------------------------------------
# The pinned suite
# ----------------------------------------------------------------------

def _time_best(fn, repeats: int) -> tuple[float, float]:
    """(best, mean) wall-clock seconds of ``repeats`` calls."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times), sum(times) / len(times)


def _profile_entry(label: str, fn, profile_dir: str) -> str:
    """One profiled call of ``fn``: top-20 cumulative functions to a
    ``<profile_dir>/<label>.txt`` pstats dump.  Returns the path.

    The profiled run is separate from the timed runs (profiling adds
    tracing overhead that must never leak into the recorded numbers);
    its purpose is making the next dominant-cost hunt a file read
    instead of an ad-hoc script.
    """
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("cumulative").print_stats(20)
    safe = label.replace("/", "_").replace("[", "").replace("]", "")
    path = os.path.join(profile_dir, f"{safe}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(buf.getvalue())
    return path


def run_perf_suite(
    *,
    repeats: int = 5,
    e2e_repeats: int = 1,
    only: str | None = None,
    progress=None,
    profile_dir: str | None = None,
) -> list[BenchEntry]:
    """Run the pinned micro/meso suite and return its entries.

    ``only`` filters entry names by prefix (the unit tests and quick
    local iterations use it to avoid the multi-second end-to-end rows).
    ``progress`` is an optional callable receiving each finished entry.
    ``profile_dir`` additionally runs each entry once under cProfile
    and dumps its top-20 cumulative functions to one text file per
    entry in that directory (created if needed).
    """
    from repro.bench import harness
    from repro.bench.suite import get_benchmark
    from repro.kernels import gf2mat
    from repro.kernels.coverage import build_problem
    from repro.minimize import covering as cov
    from repro.minimize.cost import literal_cost
    from repro.minimize.eppp import generate_eppp

    entries: list[BenchEntry] = []
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)

    def emit(entry: BenchEntry) -> None:
        entries.append(entry)
        if progress is not None:
            progress(entry)

    def wanted(name: str) -> bool:
        return only is None or name.startswith(only)

    def profile(label: str, fn) -> None:
        if profile_dir is not None:
            _profile_entry(label, fn, profile_dir)

    for name, output in GENERATION_CASES:
        label = f"gen/{name}[{output}]"
        if not wanted(label):
            continue
        fo = get_benchmark(name)[output]
        gen_case = lambda fo=fo: generate_eppp(  # noqa: E731
            fo, max_pseudoproducts=200_000, on_limit="stop"
        )
        best, mean = _time_best(gen_case, repeats)
        profile(label, gen_case)
        meta: dict[str, Any] = {"n": fo.n}
        if gf2mat.AVAILABLE:
            # Paired control: the scalar fallback timed in the same
            # process, seconds apart.  Shared-host noise moves both
            # numbers together, so the recorded speedup stays meaningful
            # when absolute times from different sessions are not
            # comparable (the CI gen gate checks this ratio).
            gf2mat.AVAILABLE = False
            try:
                fb_best, fb_mean = _time_best(gen_case, repeats)
            finally:
                gf2mat.AVAILABLE = True
            meta["fallback_best"] = fb_best
            meta["fallback_mean"] = fb_mean
            meta["speedup"] = round(fb_best / best, 2) if best > 0 else 0.0
        emit(BenchEntry(label, "gen", best, mean, repeats, meta))

    for name, output, k in DELTA_CASES:
        label = f"delta/{name}[{output}]"
        if not wanted(label):
            continue
        from repro.delta import DeltaIndex, build_context, toggle_points, warm_minimize
        from repro.engine.job import Job
        from repro.minimize.exact import minimize_spp
        from repro.verify import verify_form

        fo = get_benchmark(name)[output]
        cold_base = minimize_spp(fo, max_pseudoproducts=200_000, on_limit="stop")
        ctx = build_context(fo, cold_base, max_pseudoproducts=200_000)
        if ctx is None:
            continue
        on = sorted(fo.on_set)
        toggles = on[:: max(1, len(on) // k)][:k]  # spread, care-preserving
        edited = toggle_points(fo, toggles)
        # Route through the near-duplicate index (signature lookup is
        # part of the warm path's real cost in the serving tier).
        index = DeltaIndex()
        base_job = Job(fo, method="exact", max_pseudoproducts=200_000)
        index.put(base_job.content_hash, ctx)
        edited_job = Job(edited, method="exact", max_pseudoproducts=200_000)

        def warm_case(index=index, job=edited_job, func=edited):
            base = index.lookup(job)
            result = warm_minimize(base, func)
            index.count_warm_hit()
            return result

        best, mean = _time_best(warm_case, repeats)
        profile(label, warm_case)
        cold_case = lambda func=edited: minimize_spp(  # noqa: E731
            func, max_pseudoproducts=200_000, on_limit="stop"
        )
        cold_best, cold_mean = _time_best(cold_case, repeats)
        warm_res = warm_case()
        cold_res = cold_case()
        if warm_res.form != cold_res.form:
            raise RuntimeError(
                f"{label}: warm cover differs from cold "
                f"({warm_res.num_literals} vs {cold_res.num_literals} literals)"
            )
        if not verify_form(warm_res.form, edited):
            raise RuntimeError(f"{label}: warm cover failed verification")
        emit(
            BenchEntry(
                label, "delta", best, mean, repeats,
                {
                    "edit": len(toggles),
                    "cost": cold_res.num_literals,
                    "candidates": ctx.num_candidates,
                    "cold_best": cold_best,
                    "cold_mean": cold_mean,
                    "speedup": round(cold_best / best, 2) if best > 0 else 0.0,
                    "speedup_mean": round(cold_mean / mean, 2) if mean > 0 else 0.0,
                    "identical_cover": True,
                    "warm_hits": index.stats()["warm_hits"],
                },
            )
        )

    cover_problems = {}
    for name, output in COVERING_CASES:
        label = f"covering_build/{name}[{output}]"
        solve_label = f"covering_solve/{name}[{output}]"
        if not wanted(label) and not wanted(solve_label):
            continue
        fo = get_benchmark(name)[output]
        generation = generate_eppp(fo, max_pseudoproducts=200_000, on_limit="stop")
        candidates = generation.eppps
        rows = sorted(fo.on_set)
        if wanted(label):
            build_case = lambda: build_problem(  # noqa: E731
                rows, candidates, cost_of=literal_cost
            )
            best, mean = _time_best(build_case, repeats)
            profile(label, build_case)
            emit(
                BenchEntry(
                    label, "covering_build", best, mean, repeats,
                    {"rows": len(rows), "candidates": len(candidates)},
                )
            )
        cover_problems[solve_label] = build_problem(
            rows, candidates, cost_of=literal_cost
        )

    for solve_label, problem in cover_problems.items():
        if not wanted(solve_label):
            continue
        solve_case = lambda problem=problem: cov.solve_greedy(problem)  # noqa: E731
        best, mean = _time_best(solve_case, repeats)
        profile(solve_label, solve_case)
        # One extra solve outside the timed loop records the cover cost
        # (regressions must not buy speed with worse covers) and the
        # mincov reduction report.
        solution = cov.solve_greedy(problem)
        meta: dict[str, Any] = {
            "rows": problem.num_rows,
            "columns": problem.num_columns,
            "cost": solution.cost,
        }
        if solution.stats is not None:
            meta["reduction"] = solution.stats.as_dict()
        emit(
            BenchEntry(
                solve_label, "covering_solve", best, mean, repeats, meta
            )
        )

    for name in E2E_TABLE1_CASES:
        label = f"e2e/table1/{name}"
        if not wanted(label):
            continue
        e2e_case = lambda name=name: harness.run_table1_row(  # noqa: E731
            name, max_pseudoproducts=200_000
        )
        best, mean = _time_best(e2e_case, e2e_repeats)
        profile(label, e2e_case)
        emit(BenchEntry(label, "e2e", best, mean, e2e_repeats, {}))

    return entries
