"""Registry of benchmark functions.

Every function named in the paper's tables is constructible here —
exactly where a mathematical definition exists, as a documented
surrogate otherwise (see DESIGN.md §4) — plus *scaled* variants
(``adr3``, ``dist3``, ``life7``, …) the quick benchmark mode uses to
keep pure-Python running times in seconds rather than hours.

Usage::

    from repro.bench.suite import get_benchmark, BENCHMARKS

    func = get_benchmark("adr4")       # MultiBoolFunc
    spec = BENCHMARKS["adr4"]          # metadata (surrogate flag, sizes)
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from repro.bench import arith, rom, surrogate
from repro.boolfunc.function import MultiBoolFunc

__all__ = ["BenchmarkSpec", "BENCHMARKS", "get_benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Metadata for one registered benchmark function."""

    name: str
    n_inputs: int
    n_outputs: int
    builder: Callable[[], MultiBoolFunc]
    surrogate: bool
    notes: str = ""


def _spec(
    name: str,
    n_inputs: int,
    n_outputs: int,
    builder: Callable[[], MultiBoolFunc],
    *,
    surrogate: bool,
    notes: str = "",
) -> tuple[str, BenchmarkSpec]:
    return name, BenchmarkSpec(name, n_inputs, n_outputs, builder, surrogate, notes)


BENCHMARKS: dict[str, BenchmarkSpec] = dict(
    [
        # -- exact arithmetic constructions ---------------------------------
        _spec("adr4", 8, 5, arith.adr4, surrogate=False, notes="4-bit adder"),
        _spec("radd", 8, 5, arith.radd, surrogate=False, notes="4-bit adder (redundant PLA in MCNC)"),
        _spec("add6", 12, 7, arith.add6, surrogate=False, notes="6-bit adder"),
        _spec("mlp4", 8, 8, arith.mlp4, surrogate=False, notes="4x4 multiplier"),
        _spec("life", 9, 1, arith.life, surrogate=False, notes="Conway life rule"),
        _spec("root", 8, 5, arith.root, surrogate=False, notes="integer square root + flag"),
        _spec("dist", 8, 5, arith.dist, surrogate=True, notes="|a-b| + (a<b); MCNC dist PLA unavailable"),
        # -- arithmetic surrogates ------------------------------------------
        _spec("addm4", 9, 8, arith.addm4, surrogate=True, notes="a+b+cin and (a-b) mod 8"),
        _spec("f51m", 8, 8, arith.f51m, surrogate=True, notes="add/sub arithmetic slice"),
        _spec("cs8", 9, 5, arith.cs8, surrogate=True, notes="carry-save adder: a+b+c over 3-bit operands"),
        _spec("alu", 12, 8, arith.alu, surrogate=True, notes="4-bit 8-op ALU"),
        # -- ROM surrogates --------------------------------------------------
        _spec("max128", 7, 24, lambda: rom.random_rom("max128", 7, 24, seed=128), surrogate=True),
        _spec("max512", 9, 6, lambda: rom.random_rom("max512", 9, 6, seed=512), surrogate=True),
        _spec("max1024", 10, 6, lambda: rom.random_rom("max1024", 10, 6, seed=1024), surrogate=True),
        _spec("prom1", 9, 40, lambda: rom.random_rom("prom1", 9, 40, seed=9001), surrogate=True),
        _spec("prom2", 9, 21, lambda: rom.random_rom("prom2", 9, 21, seed=9002), surrogate=True),
        _spec("lin.rom", 7, 36, lambda: rom.linear_rom("lin.rom", 7, 36, seed=7036), surrogate=True),
        # -- mixed-structure surrogates --------------------------------------
        _spec("m3", 8, 16, lambda: surrogate.arithmetic_mix("m3", 8, 16, seed=3), surrogate=True),
        _spec("m4", 8, 16, lambda: surrogate.arithmetic_mix("m4", 8, 16, seed=4), surrogate=True),
        _spec("ex5", 8, 63, lambda: surrogate.arithmetic_mix("ex5", 8, 63, seed=5), surrogate=True),
        _spec("exps", 8, 38, lambda: surrogate.arithmetic_mix("exps", 8, 38, seed=38), surrogate=True),
        _spec("p1", 8, 18, lambda: surrogate.arithmetic_mix("p1", 8, 18, seed=18), surrogate=True),
        _spec("test1", 8, 10, lambda: surrogate.arithmetic_mix("test1", 8, 10, seed=10), surrogate=True),
        _spec("risc", 8, 31, lambda: surrogate.arithmetic_mix("risc", 8, 31, seed=31), surrogate=True),
        _spec("amd", 14, 24, lambda: surrogate.arithmetic_mix("amd", 14, 24, seed=14), surrogate=True),
        _spec("newcond", 11, 2, lambda: surrogate.arithmetic_mix("newcond", 11, 2, seed=11), surrogate=True),
        _spec("newtpla2", 10, 4, lambda: surrogate.arithmetic_mix("newtpla2", 10, 4, seed=104), surrogate=True),
        # -- scaled variants for the quick benchmark mode --------------------
        _spec("adr2", 4, 3, lambda: arith.adder(2), surrogate=False, notes="scaled adr4"),
        _spec("adr3", 6, 4, lambda: arith.adder(3), surrogate=False, notes="scaled adr4"),
        _spec("mlp2", 4, 4, lambda: arith.multiplier(2), surrogate=False, notes="scaled mlp4"),
        _spec("mlp3", 6, 6, lambda: arith.multiplier(3), surrogate=False, notes="scaled mlp4"),
        _spec("dist3", 6, 4, lambda: arith.dist(3), surrogate=False, notes="scaled dist"),
        _spec("life6", 6, 1, lambda: arith.life_rule(5), surrogate=False, notes="scaled life"),
        _spec("life7", 7, 1, lambda: arith.life_rule(6), surrogate=False, notes="scaled life"),
        _spec("csa2", 6, 4, lambda: arith.csa(2), surrogate=False, notes="scaled cs8"),
        _spec("bcd7seg", 4, 7, arith.seven_segment, surrogate=False,
              notes="BCD to 7-segment decoder with don't cares"),
    ]
)


@lru_cache(maxsize=None)
def get_benchmark(name: str) -> MultiBoolFunc:
    """Build (and cache) a registered benchmark function."""
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(BENCHMARKS))}"
        ) from None
    func = spec.builder()
    if func.n != spec.n_inputs or func.num_outputs != spec.n_outputs:
        raise RuntimeError(
            f"benchmark {name} built with signature {func.n}/{func.num_outputs}, "
            f"registry says {spec.n_inputs}/{spec.n_outputs}"
        )
    return func


def benchmark_names(*, include_scaled: bool = True) -> list[str]:
    """Registered names, optionally without the scaled variants."""
    names = sorted(BENCHMARKS)
    if include_scaled:
        return names
    scaled = {"adr2", "adr3", "mlp2", "mlp3", "dist3", "life6", "life7", "csa2",
              "bcd7seg"}
    return [n for n in names if n not in scaled]
