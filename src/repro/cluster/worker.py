"""One cluster worker: a supervised ``spp-minimize serve`` subprocess.

Workers are real OS processes (not threads) so N of them use N cores,
a crash takes out one shard instead of the service, and the supervisor
can ``SIGKILL`` a wedged one without ceremony.  Each worker runs the
*unchanged* single-process :class:`~repro.serve.server.MinimizeService`
— admission control, budgets, breakers, watchdog all intact — bound to
a loopback port the coordinator assigned, pointed at the shared
``cache_dir`` disk tier.

The supervisor talks to its worker exactly like any client would:
``/healthz`` for liveness probes, ``/stats`` + ``/metrics`` scraped for
the coordinator's aggregated views.  Restart is spawn-from-scratch on
the same port (``SO_REUSEADDR`` makes the rebind immediate), with the
restart count kept across generations.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

__all__ = ["WorkerProcess", "free_port"]


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for a currently-free TCP port.

    Classic bind-then-close probe; the tiny race against another
    process grabbing the port is acceptable for a loopback cluster and
    disappears on restart (the worker reuses its assigned port).
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


class WorkerProcess:
    """Spawn, probe, and restart one serve subprocess."""

    def __init__(
        self,
        name: str,
        port: int,
        *,
        host: str = "127.0.0.1",
        serve_args: list[str] | None = None,
        env: dict[str, str] | None = None,
        start_timeout: float = 30.0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.serve_args = list(serve_args or [])
        self.start_timeout = start_timeout
        self.restarts = 0
        self._proc: subprocess.Popen | None = None
        self._env = dict(env) if env is not None else dict(os.environ)
        # Children must import repro regardless of how *this* process
        # found it (installed vs PYTHONPATH=src checkout).
        package_root = str(Path(__file__).resolve().parents[2])
        existing = self._env.get("PYTHONPATH")
        if package_root not in (existing or "").split(os.pathsep):
            self._env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )

    # -- lifecycle -----------------------------------------------------

    def command(self) -> list[str]:
        return [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", str(self.port),
            "--parent-pid", str(os.getpid()),
            *self.serve_args,
        ]

    def start(self, *, wait: bool = True) -> None:
        """Spawn the subprocess; optionally block until it's healthy."""
        if self.alive:
            return
        self._proc = subprocess.Popen(
            self.command(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=self._env,
            start_new_session=True,  # a drain signal to us must not hit them
        )
        if wait and not self.wait_healthy(self.start_timeout):
            raise RuntimeError(
                f"worker {self.name} (port {self.port}) never became healthy"
            )

    def restart(self, *, wait: bool = True) -> None:
        """Kill any current generation and spawn a fresh one."""
        self.kill()
        self.restarts += 1
        self.start(wait=wait)

    def terminate(self) -> None:
        """Send SIGTERM without waiting (overlapped multi-worker drain)."""
        if self._proc is not None and self._proc.poll() is None:
            self._proc.terminate()

    def stop(self, grace: float = 5.0) -> None:
        """SIGTERM (graceful drain), escalating to SIGKILL after grace."""
        if self._proc is None:
            return
        if self._proc.poll() is None:
            self._proc.terminate()
            try:
                self._proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait(timeout=5.0)
        self._proc = None

    def suspend(self) -> bool:
        """SIGSTOP the worker (chaos: a wedged-but-alive process).

        A stopped worker keeps its sockets open but answers nothing —
        the nastiest failure mode for a proxy, because connections
        neither complete nor refuse.  Returns False when the process
        is not running (nothing to stop).
        """
        if not self.alive:
            return False
        try:
            os.kill(self._proc.pid, signal.SIGSTOP)
        except (OSError, ProcessLookupError):  # pragma: no cover — raced exit
            return False
        return True

    def resume(self) -> bool:
        """SIGCONT a suspended worker; False when it is gone."""
        if self._proc is None:
            return False
        try:
            os.kill(self._proc.pid, signal.SIGCONT)
        except (OSError, ProcessLookupError):
            return False
        return True

    def kill(self) -> None:
        """SIGKILL immediately (crash-path restart, tests)."""
        if self._proc is None:
            return
        if self._proc.poll() is None:
            self._proc.kill()
            try:
                self._proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        self._proc = None

    # -- probes --------------------------------------------------------

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    @property
    def alive(self) -> bool:
        """Process-level liveness (the port may not be up yet)."""
        return self._proc is not None and self._proc.poll() is None

    def healthy(self, timeout: float = 2.0) -> bool:
        """HTTP-level liveness: does ``/healthz`` answer 200?"""
        if not self.alive:
            return False
        try:
            status, _ = self.request("GET", "/healthz", timeout=timeout)
        except OSError:
            return False
        return status == 200

    def wait_healthy(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive:
                return False
            if self.healthy(timeout=1.0):
                return True
            time.sleep(0.05)
        return False

    # -- plain HTTP client ---------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        timeout: float = 30.0,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """One HTTP exchange with the worker; returns (status, body)."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def stats(self, timeout: float = 5.0) -> dict[str, Any] | None:
        """The worker's ``/stats`` document, or None when unreachable."""
        try:
            status, body = self.request("GET", "/stats", timeout=timeout)
        except OSError:
            return None
        if status != 200:
            return None
        try:
            return json.loads(body)
        except ValueError:
            return None
