"""Adaptive resilience policies for the cluster tier.

SPP/ESOP minimization traffic is intrinsically heavy-tailed — a cache
hit answers in a millisecond while the exact tier can chew its whole
node budget — so every mechanism here is about the *tail* and about
staying stable under overload, not about mean throughput.  Four pure,
process-free policy pieces (the coordinator wires them to real sockets
and processes):

* :class:`DecayingQuantileTracker` — a streaming quantile estimator:
  fixed log-spaced buckets (bounded memory, O(log buckets) observe)
  with per-route exponential decay, so the estimate follows regime
  changes instead of averaging over the service's whole life.
* :class:`AdaptiveHedge` — turns the tracker's p95 into a hedge delay:
  duplicate a request to the ring successor once it has been
  outstanding longer than ~p95 of recent traffic.  Hedging at p95
  prices tail insurance at ~5% duplicate load; the delay floors/caps
  keep a cold or pathological estimate from hedging everything or
  nothing.
* :class:`RetryBudget` — a token bucket that caps retry/hedge
  *amplification*: deposits accrue in proportion to a worker's primary
  traffic, retries and hedges aimed at it spend from the bucket, so a
  brownout degrades into bounded extra load instead of a retry storm
  (the Finagle/SRE "retry budget" pattern).
* :class:`AutoscalePolicy` — hysteresis over admission-queue depth and
  shed deltas: scale up fast when queues build, scale back down only
  after a sustained idle window.

Also here: :func:`restart_delay`, capped exponential restart backoff
with deterministic per-worker jitter (N workers crashing together must
not restart in lockstep), and the re-export of the deadline-propagation
helpers from :mod:`repro.serve.deadline` so cluster code has one
resilience import surface.
"""

from __future__ import annotations

import random
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Any

from repro.serve.deadline import (
    DEADLINE_HEADER,
    DeadlineExpired,
    format_deadline,
    parse_deadline,
)

__all__ = [
    "DEADLINE_HEADER",
    "DeadlineExpired",
    "parse_deadline",
    "format_deadline",
    "ALL_ROUTES",
    "DecayingQuantileTracker",
    "AdaptiveHedge",
    "RetryBudget",
    "AutoscalePolicy",
    "restart_delay",
]

# ~1ms .. 60s, the span of a minimization service (cache hit ..
# budgeted exact solve).  Denser than serve.metrics.DEFAULT_BUCKETS
# (six per decade, adjacent ratio <= 1.5): the hedge delay is read off
# the p95 estimate, and a 2.5x bucket ratio would let the estimate —
# and so the delay — overshoot the true p95 by up to 2.5x.
DEFAULT_TRACKER_BUCKETS = (
    0.001, 0.0015, 0.0022, 0.0033, 0.0047, 0.0068,
    0.01, 0.015, 0.022, 0.033, 0.047, 0.068,
    0.1, 0.15, 0.22, 0.33, 0.47, 0.68,
    1.0, 1.5, 2.2, 3.3, 4.7, 6.8,
    10.0, 15.0, 22.0, 33.0, 47.0, 60.0,
)

# Every observation lands in the route's buckets and in this synthetic
# aggregate route, the fallback for routes without enough local samples.
ALL_ROUTES = "__all__"


class DecayingQuantileTracker:
    """Streaming per-route quantiles in bounded memory.

    Each route owns one fixed array of ``len(bounds) + 1`` float
    counts (the last is the +Inf overflow bucket) — memory is
    ``O(routes × buckets)`` and routes are LRU-capped, so the tracker
    cannot grow with traffic.  Every ``decay_every`` observations on a
    route, its counts are multiplied by ``decay``: a geometric fade
    that makes the estimate track the *current* latency regime.  With
    decay 0.9 every 16 observations, mass older than ~500 observations
    carries under 5% weight.

    Quantiles use the Prometheus ``histogram_quantile`` estimate —
    linear interpolation inside the owning bucket — so the answer is
    exact to within one bucket's width by construction.
    """

    def __init__(
        self,
        bounds: tuple[float, ...] = DEFAULT_TRACKER_BUCKETS,
        *,
        decay: float = 0.9,
        decay_every: int = 16,
        max_routes: int = 64,
    ) -> None:
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be within (0, 1]")
        if decay_every < 1:
            raise ValueError("decay_every must be positive")
        if max_routes < 1:
            raise ValueError("max_routes must be positive")
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self.decay = decay
        self.decay_every = decay_every
        self.max_routes = max_routes
        self._lock = threading.Lock()
        # route -> [counts..., +Inf count]; parallel dicts for the
        # observation countdown that schedules decay.
        self._counts: OrderedDict[str, list[float]] = OrderedDict()
        self._until_decay: dict[str, int] = {}

    def _route_counts(self, route: str) -> list[float]:
        counts = self._counts.get(route)
        if counts is None:
            counts = [0.0] * (len(self.bounds) + 1)
            self._counts[route] = counts
            self._until_decay[route] = self.decay_every
            while len(self._counts) > self.max_routes:
                evicted, _ = self._counts.popitem(last=False)
                self._until_decay.pop(evicted, None)
        else:
            self._counts.move_to_end(route)
        return counts

    def observe(self, route: str, seconds: float) -> None:
        """Record one latency sample for ``route`` (and the aggregate)."""
        seconds = max(float(seconds), 0.0)
        index = bisect_left(self.bounds, seconds)
        with self._lock:
            for key in (route, ALL_ROUTES) if route != ALL_ROUTES else (route,):
                counts = self._route_counts(key)
                counts[index] += 1.0
                self._until_decay[key] -= 1
                if self._until_decay[key] <= 0:
                    self._until_decay[key] = self.decay_every
                    for i, value in enumerate(counts):
                        counts[i] = value * self.decay

    def samples(self, route: str) -> float:
        """Decayed sample mass currently credited to ``route``."""
        with self._lock:
            counts = self._counts.get(route)
            return sum(counts) if counts else 0.0

    def quantile(self, route: str, q: float) -> float | None:
        """Estimated ``q``-quantile for ``route``; None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            counts = self._counts.get(route)
            if counts is None:
                return None
            counts = list(counts)
        total = sum(counts)
        if total <= 0.0:
            return None
        rank = q * total
        seen = 0.0
        for index, bucket_count in enumerate(counts):
            if seen + bucket_count >= rank and bucket_count > 0:
                if index >= len(self.bounds):  # +Inf overflow bucket
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                within = (rank - seen) / bucket_count
                return lower + (upper - lower) * min(max(within, 0.0), 1.0)
            seen += bucket_count
        return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            routes = list(self._counts)
        return {
            "routes": len(routes),
            "p95": {route: self.quantile(route, 0.95) for route in routes},
        }


class AdaptiveHedge:
    """p95-tracking hedge delay: observed latency sets when to hedge.

    ``delay(route)`` answers "how long may a request to ``route`` stay
    outstanding before we duplicate it to the ring successor":
    ``multiplier × p95`` of recent traffic on that route, falling back
    to the aggregate route and then to ``initial`` until ``min_samples``
    of decayed mass exist, always clamped to ``[min_delay, max_delay]``.
    Hedging at p95 means ~5% of requests hedge — bounded duplicate
    load — and the clamp floor keeps a cache-hit-dominated p95 (sub-ms)
    from hedging every slow-but-healthy compute request.
    """

    def __init__(
        self,
        tracker: DecayingQuantileTracker | None = None,
        *,
        multiplier: float = 1.0,
        min_delay: float = 0.05,
        max_delay: float = 5.0,
        initial: float = 1.0,
        min_samples: float = 16.0,
    ) -> None:
        if min_delay > max_delay:
            raise ValueError("min_delay must not exceed max_delay")
        self.tracker = tracker or DecayingQuantileTracker()
        self.multiplier = multiplier
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.initial = initial
        self.min_samples = min_samples

    def observe(self, route: str, seconds: float) -> None:
        self.tracker.observe(route, seconds)

    def delay(self, route: str = ALL_ROUTES) -> float:
        p95 = None
        for key in (route, ALL_ROUTES):
            if self.tracker.samples(key) >= self.min_samples:
                p95 = self.tracker.quantile(key, 0.95)
                if p95 is not None:
                    break
        raw = self.initial if p95 is None else p95 * self.multiplier
        return min(max(raw, self.min_delay), self.max_delay)

    def snapshot(self) -> dict[str, Any]:
        return {
            "delay": self.delay(),
            "min_delay": self.min_delay,
            "max_delay": self.max_delay,
            "tracker": self.tracker.snapshot(),
        }


class RetryBudget:
    """A token bucket capping retry/hedge amplification.

    Primary attempts *deposit* ``ratio`` tokens (so sustained retry
    volume is at most ``ratio`` of primary volume); each retry or hedge
    *spends* one token, atomically, and is simply not sent when the
    bucket is empty.  The bucket starts full (``cap``) so cold-start
    failover works; the cap also bounds the burst a long quiet period
    can bank.  All methods are thread-safe.
    """

    def __init__(self, *, ratio: float = 0.2, cap: float = 10.0) -> None:
        if ratio < 0:
            raise ValueError("ratio must be non-negative")
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.ratio = ratio
        self.cap = cap
        self._balance = cap
        self._deposited = 0
        self._spent = 0
        self._denied = 0
        self._lock = threading.Lock()

    def deposit(self, n: float = 1.0) -> None:
        """Credit ``ratio × n`` tokens for ``n`` primary attempts."""
        with self._lock:
            self._balance = min(self.cap, self._balance + self.ratio * n)
            self._deposited += 1

    def try_spend(self) -> bool:
        """Take one token for a retry/hedge; False when exhausted."""
        with self._lock:
            if self._balance >= 1.0:
                self._balance -= 1.0
                self._spent += 1
                return True
            self._denied += 1
            return False

    @property
    def balance(self) -> float:
        with self._lock:
            return self._balance

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "balance": round(self._balance, 3),
                "cap": self.cap,
                "ratio": self.ratio,
                "spent": self._spent,
                "denied": self._denied,
            }


class AutoscalePolicy:
    """Queue-driven scale decisions with hysteresis.

    Pure policy — feed it observations, it answers ``+1`` (spawn a
    worker), ``-1`` (reap one) or ``0``.  Scale-up triggers the moment
    pressure shows (admission queues deeper than ``queue_high`` waiting
    requests per worker, or any shed movement since the last tick):
    under overload every second of hesitation is shed traffic.
    Scale-down waits for ``idle_after`` seconds of *continuous* calm
    and then releases one worker at a time, so a bursty workload does
    not thrash the fleet.  Decisions are clamped to
    ``[min_workers, max_workers]``.
    """

    def __init__(
        self,
        *,
        min_workers: int,
        max_workers: int,
        queue_high: float = 1.0,
        idle_after: float = 10.0,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be positive")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.queue_high = queue_high
        self.idle_after = idle_after
        self._idle_since: float | None = None

    def decide(
        self, *, now: float, workers: int, waiting: float, shed_delta: float
    ) -> int:
        pressured = (
            (waiting / max(workers, 1)) >= self.queue_high or shed_delta > 0
        )
        if pressured:
            self._idle_since = None
            return 1 if workers < self.max_workers else 0
        if waiting > 0:
            # Some queueing but below the trigger: neither grow nor
            # start the idle clock — hold the current fleet.
            self._idle_since = None
            return 0
        if self._idle_since is None:
            self._idle_since = now
            return 0
        if now - self._idle_since >= self.idle_after and workers > self.min_workers:
            self._idle_since = now  # space successive reaps one window apart
            return -1
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "queue_high": self.queue_high,
            "idle_after": self.idle_after,
        }


def restart_delay(
    attempt: int,
    *,
    base: float = 0.5,
    cap: float = 15.0,
    key: str = "",
) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``base × 2^attempt`` capped at ``cap``, then scaled by a jitter
    factor in ``[0.5, 1.0]`` drawn from a PRNG seeded on
    ``(key, attempt)``.  The jitter is what breaks restart lockstep: N
    workers crashing in the same instant (shared poison input, OOM
    sweep) spread their respawns across half the window instead of
    re-stampeding the machine together, while the same worker/attempt
    pair always waits the same time — chaos tests stay reproducible.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    delay = min(base * (2.0 ** attempt), cap)
    jitter = 0.5 + 0.5 * random.Random(f"{key}:{attempt}").random()
    return delay * jitter
