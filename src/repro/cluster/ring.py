"""Consistent hashing for job-hash request routing.

The cluster shards requests over worker processes by the **job content
hash** (:mod:`repro.engine.job`): minimization traffic is dominated by
near-duplicate functions, so sending equal hashes to the same worker
turns each worker's in-memory LRU into an effective shard of one large
cache — without any shared mutable state on the request path.

A :class:`HashRing` is the classic Karger construction: every node owns
``replicas`` pseudo-random points on a 2^64 ring (SHA-256 of
``"node#i"``), a key routes to the first node point at or after the
key's own ring position, and adding/removing a node only remaps the
keys that fell between the changed points — about ``K/N`` of them —
instead of reshuffling everything the way ``hash(key) % N`` would.
``successors`` yields the failover order for request hedging: the next
*distinct* nodes around the ring, which is exactly where the key would
live if its owner were gone.

Deterministic by construction (SHA-256, no process-seeded hashing), so
every coordinator instance — and every test — agrees on the layout.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Iterator

__all__ = ["HashRing"]

_SPACE = 1 << 64


def _position(token: str) -> int:
    """A token's ring coordinate: top 64 bits of its SHA-256."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over named nodes with virtual replicas."""

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []  # sorted (position, node)
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------

    def add(self, node: str) -> None:
        """Insert ``node``'s replica points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            point = (_position(f"{node}#{i}"), node)
            index = bisect_right(self._points, point)
            self._points.insert(index, point)

    def remove(self, node: str) -> None:
        """Drop ``node`` from the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing -------------------------------------------------------

    def node_for(self, key: str) -> str | None:
        """The node owning ``key``; None on an empty ring."""
        if not self._points:
            return None
        index = bisect_right(self._points, (_position(key) % _SPACE, "￿"))
        if index == len(self._points):  # wrap past twelve o'clock
            index = 0
        return self._points[index][1]

    def successors(self, key: str) -> Iterator[str]:
        """Every node in failover order for ``key`` (owner first).

        Walks the ring clockwise from the key's position, yielding each
        *distinct* node once — the primary, then the node that would
        own the key if the primary left, and so on.
        """
        if not self._points:
            return
        start = bisect_right(self._points, (_position(key) % _SPACE, "￿"))
        seen: set[str] = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                yield node
