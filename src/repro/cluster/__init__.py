"""repro.cluster — sharded multi-worker serving.

Scales :mod:`repro.serve` past one process: a coordinator accepts the
same HTTP API and routes each request over a consistent-hash ring on
the job content hash to N supervised ``serve`` worker subprocesses,
which share one lockfile-guarded on-disk result-cache tier.

* :mod:`repro.cluster.ring` — the consistent-hash ring (virtual
  replicas, minimal remapping, failover successors);
* :mod:`repro.cluster.worker` — one supervised worker subprocess
  (spawn, health probes, SIGKILL-and-restart);
* :mod:`repro.cluster.resilience` — the pure policy layer: adaptive
  (p95-tracking) hedge delays, per-worker retry budgets, queue-driven
  autoscaling decisions, restart backoff, deadline helpers;
* :mod:`repro.cluster.coordinator` — the routing front-end: proxying
  with connection reuse and deadline propagation, failover + adaptive
  hedging under retry budgets, health-checking with ring
  eviction/re-admission, autoscaling, ``/stats`` and Prometheus
  ``/metrics``.

Start one with ``spp-minimize cluster`` or programmatically::

    from repro.cluster import ClusterConfig, ClusterCoordinator

    cluster = ClusterCoordinator(ClusterConfig(port=0, workers=4))
    host, port = cluster.start()
    ...
    cluster.drain()
"""

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.resilience import (
    DEADLINE_HEADER,
    AdaptiveHedge,
    AutoscalePolicy,
    DecayingQuantileTracker,
    RetryBudget,
    restart_delay,
)
from repro.cluster.ring import HashRing
from repro.cluster.worker import WorkerProcess, free_port

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "HashRing",
    "WorkerProcess",
    "free_port",
    "DEADLINE_HEADER",
    "AdaptiveHedge",
    "AutoscalePolicy",
    "DecayingQuantileTracker",
    "RetryBudget",
    "restart_delay",
]
