"""The cluster coordinator: shard-routing HTTP front-end over N workers.

One coordinator process accepts the existing ``serve`` API and routes
every ``POST /minimize`` over a consistent-hash ring
(:mod:`repro.cluster.ring`) keyed by the **job content hash** to one of
N supervised worker subprocesses (:mod:`repro.cluster.worker`).  Equal
jobs always land on the same worker, so each worker's in-memory LRU
becomes a clean shard of one logical cache; the shared on-disk tier
under ``cache_dir`` (lockfile-guarded, see :mod:`repro.engine.cache`)
makes a result computed by *any* worker a disk hit for every worker
after ring movement or a restart.

Failure handling, in order of escalation:

* a proxy attempt that cannot reach its worker **fails over** to the
  ring successor (jobs are idempotent and content-hashed, so a retry
  is at worst a cache hit) and nudges the health checker;
* optionally, a request outstanding longer than ``hedge_after`` is
  **hedged**: duplicated to the successor, first response wins;
* the health loop probes ``/healthz`` continuously; a worker that
  misses ``health_misses`` probes in a row — or whose process has
  exited — is removed from the ring, killed, restarted on its own
  port, and **re-admitted** once it answers probes again;
* only when *no* ring worker is reachable does the client see a
  structured 503 (``code="unavailable"``) — never a torn response.

Routing cost is kept off the hot path with a body-bytes → routing-key
memo (an LRU): warm traffic repeats identical request bodies, so the
coordinator usually routes without even parsing the JSON.

Endpoints: ``POST /minimize`` (proxied), ``GET /healthz`` ``/readyz``
``/stats`` ``/metrics`` (answered by the coordinator; ``/metrics`` also
scrapes and re-exports per-worker counters as Prometheus text).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import http.client
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.cluster.ring import HashRing
from repro.cluster.worker import WorkerProcess, free_port
from repro.errors import UsageError
from repro.serve.metrics import LatencyHistogram, Metric, render_metrics
from repro.serve.server import jobs_from_payload

__all__ = ["ClusterConfig", "ClusterCoordinator"]


@dataclass
class ClusterConfig:
    """Knobs of one coordinator (all exposed as CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8350
    workers: int = 4
    replicas: int = 64               # ring points per worker
    failover_attempts: int = 2       # distinct workers tried per request
    hedge_after: float | None = None  # duplicate slow requests (seconds)
    proxy_timeout: float = 300.0
    route_cache_size: int = 4096     # body-bytes -> routing-key memo
    health_interval: float = 0.5
    health_timeout: float = 2.0
    health_misses: int = 2           # consecutive failures before eviction
    restart_backoff: float = 0.5
    worker_start_timeout: float = 60.0
    drain_grace: float = 10.0
    # Pass-through configuration for every worker's MinimizeService:
    worker_threads: int = 4
    worker_queue_capacity: int = 8
    default_timeout: float = 5.0
    default_budget: float = 30.0
    cache_entries: int = 1024
    cache_dir: str | None = None     # the *shared* disk tier
    max_disk_entries: int | None = None
    extra_serve_args: list[str] = field(default_factory=list)


class _WorkerState:
    """Supervision bookkeeping for one worker (owned by the coordinator)."""

    __slots__ = (
        "proc", "status", "misses", "down_since", "requests", "errors",
        "failovers",
    )

    def __init__(self, proc: WorkerProcess) -> None:
        self.proc = proc
        self.status = "starting"   # starting | up | restarting
        self.misses = 0
        self.down_since = 0.0
        self.requests = 0
        self.errors = 0
        self.failovers = 0  # times a request failed over *away* from it


class ClusterCoordinator:
    """Consistent-hash router + supervisor over serve worker processes."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.workers < 1:
            raise ValueError("need at least one worker")
        self.ring = HashRing(replicas=self.config.replicas)
        self.latency = LatencyHistogram()
        self._workers: dict[str, _WorkerState] = {}
        self._workers_lock = threading.Lock()
        self._route_memo: OrderedDict[bytes, str] = OrderedDict()
        self._route_lock = threading.Lock()
        self._pool: dict[str, list[http.client.HTTPConnection]] = {}
        self._pool_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "proxied": 0,
            "failovers": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "unavailable": 0,
            "bad_requests": 0,
            "route_memo_hits": 0,
        }
        self._counters_lock = threading.Lock()
        self._probe_now = threading.Event()
        self._stop = threading.Event()
        self._drained = threading.Event()
        self._draining = False
        self._health_thread: threading.Thread | None = None
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._hedge_pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._started_at = time.monotonic()

    # -- worker construction -------------------------------------------

    def _serve_args(self) -> list[str]:
        cfg = self.config
        args = [
            "--threads", str(cfg.worker_threads),
            "--queue-capacity", str(cfg.worker_queue_capacity),
            "--default-timeout", str(cfg.default_timeout),
            "--default-budget", str(cfg.default_budget),
            "--cache-entries", str(cfg.cache_entries),
        ]
        if cfg.cache_dir is not None:
            args += ["--cache-dir", str(cfg.cache_dir)]
        if cfg.max_disk_entries is not None:
            args += ["--max-disk-entries", str(cfg.max_disk_entries)]
        return args + list(cfg.extra_serve_args)

    def start(self) -> tuple[str, int]:
        """Spawn the workers, join them to the ring, bind the listener."""
        cfg = self.config
        serve_args = self._serve_args()
        for i in range(cfg.workers):
            name = f"w{i}"
            proc = WorkerProcess(
                name,
                free_port(cfg.host),
                host=cfg.host,
                serve_args=serve_args,
                start_timeout=cfg.worker_start_timeout,
            )
            self._workers[name] = _WorkerState(proc)
            proc.start(wait=False)  # overlap the N interpreter start-ups
        deadline = time.monotonic() + cfg.worker_start_timeout
        for name, state in self._workers.items():
            remaining = max(deadline - time.monotonic(), 1.0)
            if not state.proc.wait_healthy(remaining):
                self.stop_workers()
                raise RuntimeError(f"worker {name} never became healthy")
            state.status = "up"
            self.ring.add(name)
        if cfg.hedge_after is not None:
            self._hedge_pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=max(cfg.workers * 2, 4),
                thread_name_prefix="repro-hedge",
            )
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-cluster-health", daemon=True
        )
        self._health_thread.start()
        self._server = ThreadingHTTPServer(
            (cfg.host, cfg.port), _make_handler(self)
        )
        self._server.daemon_threads = True
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-cluster-listener",
            daemon=True,
        )
        self._server_thread.start()
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    # -- routing -------------------------------------------------------

    def routing_key(self, body: bytes) -> str:
        """Job-content-hash routing key for a raw request body.

        Memoized on the exact body bytes: repeated (warm) traffic
        routes via one dict probe instead of re-parsing and re-hashing
        the function.  Raises :class:`UsageError` on bodies the workers
        would reject anyway.
        """
        with self._route_lock:
            key = self._route_memo.get(body)
            if key is not None:
                self._route_memo.move_to_end(body)
                self._bump("route_memo_hits")
                return key
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            raise UsageError("request body is not valid JSON") from exc
        jobs = jobs_from_payload(payload)
        if len(jobs) == 1:
            key = jobs[0].content_hash
        else:  # multi-output request: one stable key over all its jobs
            digest = hashlib.sha256()
            for job in jobs:
                digest.update(job.content_hash.encode("ascii"))
            key = digest.hexdigest()
        with self._route_lock:
            self._route_memo[body] = key
            while len(self._route_memo) > self.config.route_cache_size:
                self._route_memo.popitem(last=False)
        return key

    def plan_for(self, key: str) -> list[str]:
        """Failover-ordered worker names for a routing key."""
        plan: list[str] = []
        for name in self.ring.successors(key):
            plan.append(name)
            if len(plan) >= self.config.failover_attempts:
                break
        return plan

    # -- proxying ------------------------------------------------------

    def handle_minimize(self, body: bytes) -> tuple[int, dict[str, str], bytes]:
        """Route one request; returns (status, extra headers, body bytes)."""
        started = time.monotonic()
        self._bump("requests")
        try:
            key = self.routing_key(body)
        except UsageError as exc:
            self._bump("bad_requests")
            return 400, {}, _error_body(exc.code, str(exc))
        plan = self.plan_for(key)
        response = None
        for attempt, name in enumerate(plan):
            if attempt > 0:
                self._bump("failovers")
                with self._workers_lock:
                    state = self._workers.get(plan[attempt - 1])
                    if state is not None:
                        state.failovers += 1
            hedge_to = plan[attempt + 1] if attempt + 1 < len(plan) else None
            response = self._attempt(name, body, hedge_to)
            if response is not None:
                break
        if response is None:
            self._bump("unavailable")
            self._probe_now.set()
            return (
                503,
                {"Retry-After": "1"},
                _error_body(
                    "unavailable",
                    f"no reachable worker among {plan or ['(empty ring)']}",
                ),
            )
        status, headers, data = response
        self.latency.observe(time.monotonic() - started)
        self._bump("proxied")
        return status, headers, data

    def _attempt(
        self, name: str, body: bytes, hedge_to: str | None = None
    ) -> tuple[int, dict[str, str], bytes] | None:
        """One (possibly hedged) attempt against one worker."""
        hedge_after = self.config.hedge_after
        if hedge_after is None or self._hedge_pool is None or hedge_to is None:
            return self._proxy(name, body)
        primary = self._hedge_pool.submit(self._proxy, name, body)
        try:
            return primary.result(timeout=hedge_after)
        except concurrent.futures.TimeoutError:
            pass
        # Primary is slow: duplicate to the ring successor (jobs are
        # idempotent and content-hashed; the duplicate is at worst a
        # cache hit there).  First non-None response wins; the loser
        # finishes in the background and is discarded.
        self._bump("hedges")
        backup = self._hedge_pool.submit(self._proxy, hedge_to, body)
        pending = {primary, backup}
        deadline = time.monotonic() + self.config.proxy_timeout
        while pending:
            done, pending = concurrent.futures.wait(
                pending,
                timeout=max(deadline - time.monotonic(), 0.01),
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if not done:  # overall proxy deadline expired
                break
            for future in done:
                result = future.result()
                if result is not None:
                    if future is backup:
                        self._bump("hedge_wins")
                    return result
        return None

    def _proxy(
        self, name: str, body: bytes
    ) -> tuple[int, dict[str, str], bytes] | None:
        """Forward ``body`` to worker ``name``; None when unreachable.

        Tries a pooled (kept-alive) connection first and retries once
        on a fresh connection, so a stale socket from before a worker
        restart is indistinguishable from a clean exchange.
        """
        with self._workers_lock:
            state = self._workers.get(name)
        if state is None:
            return None
        for fresh in (False, True):
            conn = None if fresh else self._pool_get(name)
            if conn is None:
                if not state.proc.alive:
                    return None
                conn = http.client.HTTPConnection(
                    state.proc.host, state.proc.port,
                    timeout=self.config.proxy_timeout,
                )
            try:
                conn.request(
                    "POST", "/minimize", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                data = response.read()
                headers = {}
                retry_after = response.getheader("Retry-After")
                if retry_after is not None:
                    headers["Retry-After"] = retry_after
                with self._workers_lock:
                    state.requests += 1
                self._pool_put(name, conn)
                return response.status, headers, data
            except (OSError, http.client.HTTPException):
                conn.close()
                if fresh:
                    with self._workers_lock:
                        state.errors += 1
                    self._probe_now.set()  # let the health loop confirm
                    return None
        return None  # pragma: no cover — loop always returns

    # -- connection pool -----------------------------------------------

    def _pool_get(self, name: str) -> http.client.HTTPConnection | None:
        with self._pool_lock:
            conns = self._pool.get(name)
            if conns:
                return conns.pop()
        return None

    def _pool_put(self, name: str, conn: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            self._pool.setdefault(name, [])
            if len(self._pool[name]) < 8:
                self._pool[name].append(conn)
                return
        conn.close()

    def _pool_drop(self, name: str) -> None:
        with self._pool_lock:
            conns = self._pool.pop(name, [])
        for conn in conns:
            conn.close()

    # -- health / supervision ------------------------------------------

    def _health_loop(self) -> None:
        cfg = self.config
        while not self._stop.is_set():
            self._probe_now.wait(timeout=cfg.health_interval)
            self._probe_now.clear()
            if self._stop.is_set():
                return
            for name, state in list(self._workers.items()):
                if state.status == "up":
                    if not state.proc.alive:
                        self._evict(name, state, reason="process exited")
                    elif state.proc.healthy(timeout=cfg.health_timeout):
                        state.misses = 0
                    else:
                        state.misses += 1
                        if state.misses >= cfg.health_misses:
                            self._evict(name, state, reason="unresponsive")
                elif state.status == "restarting":
                    if state.proc.alive and state.proc.healthy(
                        timeout=cfg.health_timeout
                    ):
                        state.status = "up"
                        state.misses = 0
                        self.ring.add(name)
                    elif (
                        not state.proc.alive
                        and time.monotonic() - state.down_since
                        >= cfg.restart_backoff
                    ):
                        state.down_since = time.monotonic()
                        try:
                            state.proc.restart(wait=False)
                        except OSError:  # pragma: no cover — spawn failed
                            pass

    def _evict(self, name: str, state: _WorkerState, *, reason: str) -> None:
        """Pull a sick worker out of the ring and begin its restart."""
        self.ring.remove(name)
        self._pool_drop(name)
        state.status = "restarting"
        state.misses = 0
        state.down_since = time.monotonic()
        state.proc.kill()
        try:
            state.proc.restart(wait=False)
        except OSError:  # pragma: no cover — retried by the health loop
            pass

    # -- introspection -------------------------------------------------

    @property
    def ready(self) -> bool:
        return len(self.ring) > 0 and not self._draining

    def _bump(self, key: str, by: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += by

    def stats(self) -> dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        workers = {}
        with self._workers_lock:
            items = list(self._workers.items())
        for name, state in items:
            workers[name] = {
                "port": state.proc.port,
                "pid": state.proc.pid,
                "alive": state.proc.alive,
                "status": state.status,
                "in_ring": name in self.ring,
                "restarts": state.proc.restarts,
                "requests": state.requests,
                "errors": state.errors,
                "failovers": state.failovers,
            }
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "draining": self._draining,
            "counters": counters,
            "latency": self.latency.snapshot(),
            "ring": sorted(self.ring.nodes),
            "workers": workers,
        }

    def metrics_text(self) -> str:
        """Coordinator + per-worker counters as Prometheus text.

        Worker metrics are scraped live from each worker's ``/stats``
        (short timeout; a dead worker simply contributes nothing this
        scrape) and re-exported under a ``worker`` label.
        """
        with self._counters_lock:
            counters = dict(self._counters)
        metrics = [
            Metric(
                "repro_cluster_uptime_seconds", "Seconds since cluster start."
            ).add(time.monotonic() - self._started_at),
            Metric(
                "repro_cluster_ring_size", "Workers currently in the ring."
            ).add(len(self.ring)),
        ]
        events = Metric(
            "repro_cluster_events_total",
            "Coordinator events by kind (routing, failover, hedging).",
            "counter",
        )
        for key, value in sorted(counters.items()):
            events.add(value, kind=key)
        metrics.append(events)
        per_worker = Metric(
            "repro_cluster_worker_info",
            "Worker liveness (1 = in ring) with pid/port labels.",
        )
        proxied = Metric(
            "repro_cluster_worker_requests_total",
            "Requests proxied to each worker by the coordinator.",
            "counter",
        )
        restarts = Metric(
            "repro_cluster_worker_restarts_total",
            "Times each worker was restarted by the supervisor.",
            "counter",
        )
        with self._workers_lock:
            items = list(self._workers.items())
        for name, state in items:
            per_worker.add(
                1 if name in self.ring else 0,
                worker=name, port=str(state.proc.port),
                pid=str(state.proc.pid or 0),
            )
            proxied.add(state.requests, worker=name)
            restarts.add(state.proc.restarts, worker=name)
        metrics += [per_worker, proxied, restarts]
        worker_requests = Metric(
            "repro_worker_requests_total",
            "Per-worker terminal request outcomes (scraped from /stats).",
            "counter",
        )
        worker_cache = Metric(
            "repro_worker_cache_events_total",
            "Per-worker result-cache events (scraped from /stats).",
            "counter",
        )
        worker_breaker = Metric(
            "repro_worker_breaker_skips_total",
            "Per-worker ladder rungs skipped by open breakers.",
            "counter",
        )
        worker_latency = Metric(
            "repro_worker_latency_seconds",
            "Per-worker latency quantiles (scraped from /stats).",
        )
        for name, state in items:
            stats = state.proc.stats(timeout=2.0) if state.status == "up" else None
            if stats is None:
                continue
            for key, value in sorted(stats.get("counters", {}).items()):
                if key != "requests":
                    worker_requests.add(value, worker=name, status=key)
            shed = stats.get("admission", {}).get("shed")
            if shed is not None:
                worker_requests.add(shed, worker=name, status="shed")
            for key, value in sorted(
                stats.get("cache", {}).get("counters", {}).items()
            ):
                worker_cache.add(value, worker=name, kind=key)
            worker_breaker.add(
                stats.get("breaker", {}).get("skips", 0), worker=name
            )
            latency = stats.get("latency", {})
            for q_key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                if latency.get(q_key) is not None:
                    worker_latency.add(latency[q_key], worker=name, quantile=q)
        metrics += [worker_requests, worker_cache, worker_breaker, worker_latency]
        metrics.append(
            Metric.from_histogram(
                "repro_cluster_request_seconds",
                "End-to-end latency through the coordinator.",
                self.latency,
            )
        )
        return render_metrics(metrics)

    # -- lifecycle -----------------------------------------------------

    def stop_workers(self, grace: float | None = None) -> None:
        grace = self.config.drain_grace if grace is None else grace
        with self._workers_lock:
            items = list(self._workers.values())
        for state in items:
            state.proc.terminate()  # signal first, so the drains overlap
        for state in items:
            state.proc.stop(grace=grace)

    def drain(self, grace: float | None = None) -> None:
        """Stop admitting, stop the health loop, drain every worker."""
        if self._draining:
            self._drained.wait()
            return
        self._draining = True
        self._stop.set()
        self._probe_now.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False)
        self.stop_workers(grace)
        for name in list(self._pool):
            self._pool_drop(name)
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain on a helper thread (main thread only)."""
        import signal

        def _on_signal(signum, frame):
            threading.Thread(
                target=self.drain, name="repro-cluster-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._drained.wait(timeout)


def _error_body(code: str, message: str) -> bytes:
    return json.dumps(
        {"ok": False, "error": {"code": code, "message": message}}
    ).encode("ascii")


def _make_handler(coordinator: ClusterCoordinator):
    """An ``http.server`` handler class bound to one coordinator."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-cluster"
        # See the serve handler: avoid the Nagle/delayed-ACK 40ms stall
        # on the headers-then-body response writes.
        disable_nagle_algorithm = True

        def log_message(self, format, *args):  # noqa: A002 — stdlib name
            pass

        def _send(self, status: int, data: bytes, content_type: str,
                  headers: dict[str, str] | None = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _send_json(self, status: int, body: dict,
                       headers: dict[str, str] | None = None) -> None:
            self._send(
                status, json.dumps(body).encode("ascii"),
                "application/json", headers,
            )

        def do_GET(self) -> None:  # noqa: N802 — stdlib casing
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/readyz":
                if coordinator.ready:
                    self._send_json(200, {"status": "ready"})
                else:
                    self._send_json(
                        503,
                        {"status": "draining" if coordinator._draining
                         else "no-workers"},
                        headers={"Retry-After": "1"},
                    )
            elif self.path == "/stats":
                self._send_json(200, coordinator.stats())
            elif self.path == "/metrics":
                self._send(
                    200, coordinator.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(
                    404,
                    {"ok": False, "error": {
                        "code": "not-found",
                        "message": f"no such path {self.path!r}"}},
                )

        def do_POST(self) -> None:  # noqa: N802 — stdlib casing
            if self.path != "/minimize":
                self._send_json(
                    404,
                    {"ok": False, "error": {
                        "code": "not-found",
                        "message": f"no such path {self.path!r}"}},
                )
                return
            if coordinator._draining:
                self._send(
                    429, _error_body("overloaded", "cluster is draining"),
                    "application/json", {"Retry-After": "1"},
                )
                return
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b"{}"
            status, headers, data = coordinator.handle_minimize(body)
            self._send(status, data, "application/json", headers)

    return Handler
