"""The cluster coordinator: shard-routing HTTP front-end over N workers.

One coordinator process accepts the existing ``serve`` API and routes
every ``POST /minimize`` over a consistent-hash ring
(:mod:`repro.cluster.ring`) keyed by the **job content hash** to one of
N supervised worker subprocesses (:mod:`repro.cluster.worker`).  Equal
jobs always land on the same worker, so each worker's in-memory LRU
becomes a clean shard of one logical cache; the shared on-disk tier
under ``cache_dir`` (lockfile-guarded, see :mod:`repro.engine.cache`)
makes a result computed by *any* worker a disk hit for every worker
after ring movement or a restart.

Failure handling, in order of escalation (policies from
:mod:`repro.cluster.resilience`):

* a proxy attempt that cannot reach its worker **fails over** to the
  ring successor (jobs are idempotent and content-hashed, so a retry
  is at worst a cache hit) and nudges the health checker;
* a request outstanding longer than the **adaptive hedge delay** —
  ~p95 of recently observed latency, tracked per worker with decay,
  on by default — is **hedged**: duplicated to the successor, first
  response wins;
* every failover and hedge spends from the target worker's **retry
  budget** (a token bucket fed by its primary traffic), so brownout
  recovery cannot amplify into a retry storm;
* an ``X-Repro-Deadline`` header pins an **end-to-end deadline**: it
  is re-derived (decremented) before every hop and retry, a request
  that can no longer finish is shed (503) instead of computed, and
  the remainder lands in the worker's request budget;
* the health loop probes ``/healthz`` continuously; a worker that
  misses ``health_misses`` probes in a row — or whose process has
  exited — is removed from the ring, killed, and restarted with
  capped exponential backoff + deterministic per-worker jitter, then
  **re-admitted** once it answers probes again;
* with ``max_workers > workers``, an **autoscaler** watches the
  aggregate admission-queue depth and shed deltas and spawns extra
  ring workers under pressure, reaping them after a sustained idle
  window;
* only when *no* ring worker is reachable (or the retry budget is
  spent) does the client see a structured 503 — never a torn
  response.

The proxy path carries seeded network fault sites for chaos testing
(``cluster.proxy.stall`` ``.drop`` ``.black_hole`` ``.slow_worker`` —
see :mod:`repro.faults`); ``.slow_worker`` SIGSTOPs the target worker,
the exact failure hedging exists to absorb.

Routing cost is kept off the hot path with a body-bytes → routing-key
memo (an LRU): warm traffic repeats identical request bodies, so the
coordinator usually routes without even parsing the JSON.

Endpoints: ``POST /minimize`` (proxied), ``GET /healthz`` ``/readyz``
``/stats`` ``/metrics`` (answered by the coordinator; ``/metrics`` also
scrapes and re-exports per-worker counters as Prometheus text).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import http.client
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import faults
from repro.cluster.resilience import (
    DEADLINE_HEADER,
    AdaptiveHedge,
    AutoscalePolicy,
    RetryBudget,
    format_deadline,
    parse_deadline,
    restart_delay,
)
from repro.cluster.ring import HashRing
from repro.cluster.worker import WorkerProcess, free_port
from repro.errors import UsageError
from repro.serve.metrics import LatencyHistogram, Metric, render_metrics
from repro.serve.server import jobs_from_payload

__all__ = ["ClusterConfig", "ClusterCoordinator"]


@dataclass
class ClusterConfig:
    """Knobs of one coordinator (all exposed as CLI flags)."""

    host: str = "127.0.0.1"
    port: int = 8350
    workers: int = 4
    replicas: int = 64               # ring points per worker
    failover_attempts: int = 2       # distinct workers tried per request
    # Hedging is ON by default with an adaptive delay (~p95 of recent
    # per-worker latency, decayed); hedge_after pins a static delay
    # instead, and hedge=False disables duplication entirely.
    hedge: bool = True
    hedge_after: float | None = None  # static override (seconds)
    hedge_min: float = 0.05          # adaptive delay clamp (seconds)
    hedge_max: float = 5.0
    hedge_initial: float = 1.0       # delay before enough samples exist
    hedge_multiplier: float = 1.0    # delay = multiplier x p95
    # Retry/hedge amplification cap per worker (token bucket).
    retry_budget_ratio: float = 0.2  # tokens deposited per primary attempt
    retry_budget_cap: float = 10.0   # bucket size (also the initial burst)
    proxy_timeout: float = 300.0
    route_cache_size: int = 4096     # body-bytes -> routing-key memo
    health_interval: float = 0.5
    health_timeout: float = 2.0
    health_misses: int = 2           # consecutive failures before eviction
    restart_backoff: float = 0.5     # base of the exponential backoff
    restart_backoff_cap: float = 15.0
    # Queue-driven autoscaling: spawn up to max_workers under admission
    # pressure, reap back toward `workers` after a sustained idle
    # window.  max_workers=None (or == workers) disables scaling.
    max_workers: int | None = None
    autoscale_interval: float = 1.0
    autoscale_queue_high: float = 1.0   # waiting requests per worker
    autoscale_idle_after: float = 10.0  # calm seconds before a reap
    worker_start_timeout: float = 60.0
    drain_grace: float = 10.0
    # Pass-through configuration for every worker's MinimizeService:
    worker_threads: int = 4
    worker_queue_capacity: int = 8
    default_timeout: float = 5.0
    default_budget: float = 30.0
    cache_entries: int = 1024
    cache_dir: str | None = None     # the *shared* disk tier
    max_disk_entries: int | None = None
    audit_rate: int = 16             # workers' verify-on-read sampling
    shadow_rate: int = 8             # workers' shadow-verification sampling
    extra_serve_args: list[str] = field(default_factory=list)


class _WorkerState:
    """Supervision bookkeeping for one worker (owned by the coordinator)."""

    __slots__ = (
        "proc", "status", "misses", "down_since", "requests", "errors",
        "failovers", "restart_attempts", "retry_budget", "autoscaled",
    )

    def __init__(
        self, proc: WorkerProcess, retry_budget: RetryBudget | None = None
    ) -> None:
        self.proc = proc
        self.status = "starting"   # starting | up | restarting
        self.misses = 0
        self.down_since = 0.0
        self.requests = 0
        self.errors = 0
        self.failovers = 0  # times a request failed over *away* from it
        self.restart_attempts = 0  # consecutive respawns this outage
        self.retry_budget = retry_budget or RetryBudget()
        self.autoscaled = False    # spawned by the autoscaler (reapable)


class ClusterCoordinator:
    """Consistent-hash router + supervisor over serve worker processes."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        if cfg.workers < 1:
            raise ValueError("need at least one worker")
        if cfg.max_workers is not None and cfg.max_workers < cfg.workers:
            raise ValueError("max_workers must be >= workers")
        self.ring = HashRing(replicas=cfg.replicas)
        self.latency = LatencyHistogram()
        self.hedge = AdaptiveHedge(
            multiplier=cfg.hedge_multiplier,
            min_delay=cfg.hedge_min,
            max_delay=cfg.hedge_max,
            initial=cfg.hedge_initial,
        )
        max_workers = cfg.max_workers if cfg.max_workers is not None else cfg.workers
        self.autoscale: AutoscalePolicy | None = None
        if max_workers > cfg.workers:
            self.autoscale = AutoscalePolicy(
                min_workers=cfg.workers,
                max_workers=max_workers,
                queue_high=cfg.autoscale_queue_high,
                idle_after=cfg.autoscale_idle_after,
            )
        self._workers: dict[str, _WorkerState] = {}
        self._workers_lock = threading.Lock()
        self._next_worker_index = 0
        self._route_memo: OrderedDict[bytes, str] = OrderedDict()
        self._route_lock = threading.Lock()
        self._pool: dict[str, list[http.client.HTTPConnection]] = {}
        self._pool_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "proxied": 0,
            "failovers": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "unavailable": 0,
            "bad_requests": 0,
            "route_memo_hits": 0,
            "upstream_attempts": 0,
            "retry_budget_exhausted": 0,
            "deadline_shed": 0,
            "proxy_faults": 0,
            "autoscale_up": 0,
            "autoscale_down": 0,
        }
        self._counters_lock = threading.Lock()
        self._autoscale_last = 0.0
        self._shed_seen: dict[str, float] = {}
        self._worker_aggregate: dict[str, Any] = {}
        self._probe_now = threading.Event()
        self._stop = threading.Event()
        self._drained = threading.Event()
        self._draining = False
        self._health_thread: threading.Thread | None = None
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._hedge_pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._started_at = time.monotonic()

    # -- worker construction -------------------------------------------

    def _serve_args(self) -> list[str]:
        cfg = self.config
        args = [
            "--threads", str(cfg.worker_threads),
            "--queue-capacity", str(cfg.worker_queue_capacity),
            "--default-timeout", str(cfg.default_timeout),
            "--default-budget", str(cfg.default_budget),
            "--cache-entries", str(cfg.cache_entries),
            "--audit-rate", str(cfg.audit_rate),
            "--shadow-rate", str(cfg.shadow_rate),
        ]
        if cfg.cache_dir is not None:
            args += ["--cache-dir", str(cfg.cache_dir)]
        if cfg.max_disk_entries is not None:
            args += ["--max-disk-entries", str(cfg.max_disk_entries)]
        return args + list(cfg.extra_serve_args)

    def _new_worker(self, name: str, *, autoscaled: bool = False) -> _WorkerState:
        """Construct (but do not start) one supervised worker."""
        cfg = self.config
        proc = WorkerProcess(
            name,
            free_port(cfg.host),
            host=cfg.host,
            serve_args=self._serve_args(),
            start_timeout=cfg.worker_start_timeout,
        )
        state = _WorkerState(
            proc,
            RetryBudget(
                ratio=cfg.retry_budget_ratio, cap=cfg.retry_budget_cap
            ),
        )
        state.autoscaled = autoscaled
        return state

    def start(self) -> tuple[str, int]:
        """Spawn the workers, join them to the ring, bind the listener."""
        cfg = self.config
        for _ in range(cfg.workers):
            name = f"w{self._next_worker_index}"
            self._next_worker_index += 1
            state = self._new_worker(name)
            self._workers[name] = state
            state.proc.start(wait=False)  # overlap the N interpreter start-ups
        deadline = time.monotonic() + cfg.worker_start_timeout
        for name, state in self._workers.items():
            remaining = max(deadline - time.monotonic(), 1.0)
            if not state.proc.wait_healthy(remaining):
                self.stop_workers()
                raise RuntimeError(f"worker {name} never became healthy")
            state.status = "up"
            self.ring.add(name)
        if cfg.hedge or cfg.hedge_after is not None:
            # Sized for the wedged-worker pile-up: every hedged request
            # leaves its primary thread parked until the worker answers
            # or times out, and those must not starve new hedges (the
            # retry budget bounds true amplification, not this pool).
            max_workers = cfg.max_workers or cfg.workers
            self._hedge_pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=max(64, max_workers * 8),
                thread_name_prefix="repro-hedge",
            )
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-cluster-health", daemon=True
        )
        self._health_thread.start()
        self._server = ThreadingHTTPServer(
            (cfg.host, cfg.port), _make_handler(self)
        )
        self._server.daemon_threads = True
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-cluster-listener",
            daemon=True,
        )
        self._server_thread.start()
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    # -- routing -------------------------------------------------------

    def routing_key(self, body: bytes) -> str:
        """Job-content-hash routing key for a raw request body.

        Memoized on the exact body bytes: repeated (warm) traffic
        routes via one dict probe instead of re-parsing and re-hashing
        the function.  Raises :class:`UsageError` on bodies the workers
        would reject anyway.

        Delta-form requests (``{"base": ..., "delta": ...}``) are keyed
        by their **base** jobs (``routing=True`` below): every
        near-duplicate of a function hashes to the same ring position,
        so consistent-hash affinity lands it on the worker whose
        :class:`~repro.delta.DeltaIndex` holds the base context.
        """
        with self._route_lock:
            key = self._route_memo.get(body)
            if key is not None:
                self._route_memo.move_to_end(body)
                self._bump("route_memo_hits")
                return key
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            raise UsageError("request body is not valid JSON") from exc
        jobs = jobs_from_payload(payload, routing=True)
        if len(jobs) == 1:
            key = jobs[0].content_hash
        else:  # multi-output request: one stable key over all its jobs
            digest = hashlib.sha256()
            for job in jobs:
                digest.update(job.content_hash.encode("ascii"))
            key = digest.hexdigest()
        with self._route_lock:
            self._route_memo[body] = key
            while len(self._route_memo) > self.config.route_cache_size:
                self._route_memo.popitem(last=False)
        return key

    def plan_for(self, key: str) -> list[str]:
        """Failover-ordered worker names for a routing key."""
        plan: list[str] = []
        for name in self.ring.successors(key):
            plan.append(name)
            if len(plan) >= self.config.failover_attempts:
                break
        return plan

    # -- proxying ------------------------------------------------------

    def handle_minimize(
        self, body: bytes, deadline: float | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one request; returns (status, extra headers, body bytes).

        ``deadline`` is the client's remaining end-to-end budget in
        seconds (from ``X-Repro-Deadline``).  It is pinned to an
        absolute instant here and re-derived before every attempt and
        hop, so retries and hedges never stretch the total.
        """
        started = time.monotonic()
        deadline_at = started + deadline if deadline is not None else None
        self._bump("requests")
        if deadline_at is not None and deadline <= 0:
            return self._deadline_response()
        try:
            key = self.routing_key(body)
        except UsageError as exc:
            self._bump("bad_requests")
            return 400, {}, _error_body(exc.code, str(exc))
        plan = self.plan_for(key)
        response = None
        expired = False
        for attempt, name in enumerate(plan):
            if deadline_at is not None and time.monotonic() >= deadline_at:
                expired = True
                break
            if attempt > 0:
                # A failover re-sends work a worker already saw (or
                # should have): it spends from the *new* target's retry
                # budget so brownouts cannot amplify into retry storms.
                if not self._try_spend(name):
                    self._bump("retry_budget_exhausted")
                    break
                self._bump("failovers")
                with self._workers_lock:
                    state = self._workers.get(plan[attempt - 1])
                    if state is not None:
                        state.failovers += 1
            else:
                self._deposit(name)
            hedge_to = plan[attempt + 1] if attempt + 1 < len(plan) else None
            response = self._attempt(name, body, hedge_to, deadline_at)
            if response is not None:
                break
        if response is None:
            if expired or (
                deadline_at is not None and time.monotonic() >= deadline_at
            ):
                return self._deadline_response()
            self._bump("unavailable")
            self._probe_now.set()
            return (
                503,
                {"Retry-After": "1"},
                _error_body(
                    "unavailable",
                    f"no reachable worker among {plan or ['(empty ring)']}",
                ),
            )
        status, headers, data = response
        self.latency.observe(time.monotonic() - started)
        self._bump("proxied")
        return status, headers, data

    def _deadline_response(self) -> tuple[int, dict[str, str], bytes]:
        """503 for a request whose end-to-end deadline already passed."""
        self._bump("deadline_shed")
        return (
            503,
            {"Retry-After": "1"},
            _error_body(
                "deadline-exceeded",
                "end-to-end deadline expired before a worker could answer",
            ),
        )

    def _try_spend(self, name: str) -> bool:
        """Spend one retry-budget token of worker ``name`` (False = broke)."""
        with self._workers_lock:
            state = self._workers.get(name)
        return state is not None and state.retry_budget.try_spend()

    def _deposit(self, name: str) -> None:
        """Primary traffic to ``name`` refills its retry budget."""
        with self._workers_lock:
            state = self._workers.get(name)
        if state is not None:
            state.retry_budget.deposit()

    def _hedge_delay(self, name: str) -> float | None:
        """Seconds to wait before hedging a request to ``name``.

        A static ``hedge_after`` wins when configured; otherwise the
        adaptive tracker answers with ~p95 of this worker's recent
        latency.  None disables hedging for this attempt.
        """
        cfg = self.config
        if cfg.hedge_after is not None:
            return cfg.hedge_after
        if cfg.hedge:
            return self.hedge.delay(name)
        return None

    def _attempt(
        self,
        name: str,
        body: bytes,
        hedge_to: str | None = None,
        deadline_at: float | None = None,
    ) -> tuple[int, dict[str, str], bytes] | None:
        """One (possibly hedged) attempt against one worker."""
        hedge_after = self._hedge_delay(name)
        if hedge_after is None or self._hedge_pool is None or hedge_to is None:
            return self._proxy(name, body, deadline_at)
        primary = self._hedge_pool.submit(self._proxy, name, body, deadline_at)
        try:
            return primary.result(timeout=hedge_after)
        except concurrent.futures.TimeoutError:
            pass
        # Primary is slow: duplicate to the ring successor (jobs are
        # idempotent and content-hashed; the duplicate is at worst a
        # cache hit there).  First non-None response wins; the loser
        # finishes in the background and is discarded.  The duplicate
        # spends from the backup target's retry budget: hedging is a
        # retry that starts early, and it amplifies load the same way.
        if not self._try_spend(hedge_to):
            self._bump("retry_budget_exhausted")
            try:
                return primary.result(timeout=self.config.proxy_timeout)
            except concurrent.futures.TimeoutError:
                return None
        self._bump("hedges")
        backup = self._hedge_pool.submit(self._proxy, hedge_to, body, deadline_at)
        pending = {primary, backup}
        wait_until = time.monotonic() + self.config.proxy_timeout
        if deadline_at is not None:
            wait_until = min(wait_until, deadline_at)
        while pending:
            done, pending = concurrent.futures.wait(
                pending,
                timeout=max(wait_until - time.monotonic(), 0.01),
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if not done:  # overall proxy deadline expired
                break
            for future in done:
                result = future.result()
                if result is not None:
                    if future is backup:
                        self._bump("hedge_wins")
                    return result
        return None

    def _proxy(
        self,
        name: str,
        body: bytes,
        deadline_at: float | None = None,
    ) -> tuple[int, dict[str, str], bytes] | None:
        """Forward ``body`` to worker ``name``; None when unreachable.

        Tries a pooled (kept-alive) connection first and retries once
        on a fresh connection, so a stale socket from before a worker
        restart is indistinguishable from a clean exchange.  The
        remaining end-to-end deadline rides along as
        ``X-Repro-Deadline`` so the worker can shed what it cannot
        finish; chaos fault sites (stall / drop / black-hole /
        slow-worker) fire here, on the network path they simulate.
        """
        remaining = None
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                return None
        rule = faults.check("cluster.proxy.drop", worker=name)
        if rule is not None:
            # A dropped exchange: the bytes never arrive, the caller
            # sees the same None a refused connection would produce.
            self._bump("proxy_faults")
            return None
        rule = faults.check("cluster.proxy.black_hole", worker=name)
        if rule is not None:
            # A black hole eats the request *and* the caller's time:
            # sleep out the budget, then fail like a silent peer.
            self._bump("proxy_faults")
            budget = rule.arg if rule.arg is not None else 1.0
            if remaining is not None:
                budget = min(budget, remaining)
            time.sleep(max(budget, 0.0))
            return None
        rule = faults.check("cluster.proxy.slow_worker", worker=name)
        if rule is not None:
            # SIGSTOP the worker for arg seconds: sockets stay open,
            # nothing answers — the failure hedging exists to absorb.
            self._bump("proxy_faults")
            self._suspend_worker(name, rule.arg if rule.arg is not None else 1.0)
        faults.maybe_fire("cluster.proxy.stall", worker=name)
        with self._workers_lock:
            state = self._workers.get(name)
        if state is None:
            return None
        timeout = self.config.proxy_timeout
        if remaining is not None:
            # Give the worker its full remaining budget plus slack for
            # its own structured budget-exceeded answer to travel back.
            timeout = min(timeout, remaining + 1.0)
        headers = {"Content-Type": "application/json"}
        if remaining is not None:
            headers[DEADLINE_HEADER] = format_deadline(remaining)
        self._bump("upstream_attempts")
        started = time.monotonic()
        for fresh in (False, True):
            conn = None if fresh else self._pool_get(name)
            if conn is None:
                if not state.proc.alive:
                    return None
                conn = http.client.HTTPConnection(
                    state.proc.host, state.proc.port, timeout=timeout,
                )
            elif conn.sock is not None:
                conn.sock.settimeout(timeout)
            try:
                conn.request("POST", "/minimize", body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                out_headers = {}
                retry_after = response.getheader("Retry-After")
                if retry_after is not None:
                    out_headers["Retry-After"] = retry_after
                # Integrity travels end to end: the worker's certificate
                # level reaches the client unchanged.
                verified = response.getheader("X-Repro-Verified")
                if verified is not None:
                    out_headers["X-Repro-Verified"] = verified
                with self._workers_lock:
                    state.requests += 1
                self._pool_put(name, conn)
                self.hedge.observe(name, time.monotonic() - started)
                return response.status, out_headers, data
            except (OSError, http.client.HTTPException):
                conn.close()
                if fresh:
                    with self._workers_lock:
                        state.errors += 1
                    self._probe_now.set()  # let the health loop confirm
                    return None
        return None  # pragma: no cover — loop always returns

    def _suspend_worker(self, name: str, duration: float) -> None:
        """Chaos helper: SIGSTOP worker ``name``, SIGCONT after duration."""
        with self._workers_lock:
            state = self._workers.get(name)
        if state is None or not state.proc.suspend():
            return
        timer = threading.Timer(max(duration, 0.0), state.proc.resume)
        timer.daemon = True
        timer.start()

    # -- connection pool -----------------------------------------------

    def _pool_get(self, name: str) -> http.client.HTTPConnection | None:
        with self._pool_lock:
            conns = self._pool.get(name)
            if conns:
                return conns.pop()
        return None

    def _pool_put(self, name: str, conn: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            self._pool.setdefault(name, [])
            if len(self._pool[name]) < 8:
                self._pool[name].append(conn)
                return
        conn.close()

    def _pool_drop(self, name: str) -> None:
        with self._pool_lock:
            conns = self._pool.pop(name, [])
        for conn in conns:
            conn.close()

    # -- health / supervision ------------------------------------------

    def _health_loop(self) -> None:
        cfg = self.config
        while not self._stop.is_set():
            self._probe_now.wait(timeout=cfg.health_interval)
            self._probe_now.clear()
            if self._stop.is_set():
                return
            with self._workers_lock:
                items = list(self._workers.items())
            for name, state in items:
                if state.status == "up":
                    if not state.proc.alive:
                        self._evict(name, state, reason="process exited")
                    elif state.proc.healthy(timeout=cfg.health_timeout):
                        state.misses = 0
                    else:
                        state.misses += 1
                        if state.misses >= cfg.health_misses:
                            self._evict(name, state, reason="unresponsive")
                else:  # starting (autoscaled spawn) or restarting
                    if state.proc.alive and state.proc.healthy(
                        timeout=cfg.health_timeout
                    ):
                        # Re-admission: probes answer again, the worker
                        # rejoins the ring and its outage streak resets.
                        state.status = "up"
                        state.misses = 0
                        state.restart_attempts = 0
                        self.ring.add(name)
                    elif not state.proc.alive:
                        # Respawn only after the capped exponential
                        # backoff for this outage streak has elapsed —
                        # a crash-looping worker must not peg a core,
                        # and the jitter de-synchronizes a fleet that
                        # died together (shared bad input, OOM sweep).
                        delay = restart_delay(
                            state.restart_attempts,
                            base=cfg.restart_backoff,
                            cap=cfg.restart_backoff_cap,
                            key=name,
                        )
                        if time.monotonic() - state.down_since >= delay:
                            state.down_since = time.monotonic()
                            state.restart_attempts += 1
                            try:
                                state.proc.restart(wait=False)
                            except OSError:  # pragma: no cover — spawn failed
                                pass
                    elif (
                        time.monotonic() - state.down_since
                        >= cfg.worker_start_timeout
                    ):
                        # Alive but never healthy (wedged mid-boot):
                        # kill this generation, the branch above
                        # respawns it after backoff.
                        state.down_since = time.monotonic()
                        state.restart_attempts += 1
                        state.proc.kill()
            self._autoscale_tick()

    def _evict(self, name: str, state: _WorkerState, *, reason: str) -> None:
        """Pull a sick worker out of the ring; the health loop respawns
        it after this outage's backoff delay."""
        self.ring.remove(name)
        self._pool_drop(name)
        state.status = "restarting"
        state.misses = 0
        state.down_since = time.monotonic()
        state.proc.kill()

    # -- autoscaling ----------------------------------------------------

    def _autoscale_tick(self) -> None:
        """One autoscaler step: scrape admission pressure, act on it.

        Runs on the health thread at most every ``autoscale_interval``
        seconds.  Pressure is the aggregate worker view — requests
        waiting in admission queues and shed deltas since the previous
        tick — not coordinator-side guesses.
        """
        now = time.monotonic()
        if now - self._autoscale_last < self.config.autoscale_interval:
            return
        self._autoscale_last = now
        aggregate = self._scrape_workers()
        if self.autoscale is None:
            return
        up = aggregate["up_workers"]
        if up == 0:
            return
        decision = self.autoscale.decide(
            now=now,
            workers=up,
            waiting=aggregate["waiting"],
            shed_delta=aggregate["shed_delta"],
        )
        if decision > 0:
            self._spawn_extra()
        elif decision < 0:
            self._reap_extra()

    def _scrape_workers(self) -> dict[str, Any]:
        """Aggregate every up worker's ``/stats`` admission view."""
        with self._workers_lock:
            items = list(self._workers.items())
        waiting = active = admitted = 0
        shed_total = 0
        shed_delta = 0.0
        retry_after = 0.0
        up_workers = 0
        per_worker: dict[str, Any] = {}
        for name, state in items:
            if state.status != "up":
                continue
            stats = state.proc.stats(timeout=1.0)
            if stats is None:
                continue
            up_workers += 1
            admission = stats.get("admission", {})
            waiting += int(admission.get("waiting", 0))
            active += int(admission.get("active", 0))
            admitted += int(admission.get("admitted", 0))
            shed = float(admission.get("shed", 0))
            shed_total += int(shed)
            seen = self._shed_seen.get(name, shed)
            shed_delta += max(0.0, shed - seen)
            self._shed_seen[name] = shed
            retry_after = max(
                retry_after, float(admission.get("retry_after", 0.0))
            )
            per_worker[name] = {
                "waiting": int(admission.get("waiting", 0)),
                "active": int(admission.get("active", 0)),
                "shed": int(shed),
                "admitted": int(admission.get("admitted", 0)),
                "retry_after": float(admission.get("retry_after", 0.0)),
            }
        aggregate = {
            "up_workers": up_workers,
            "waiting": waiting,
            "active": active,
            "admitted": admitted,
            "shed": shed_total,
            "shed_delta": shed_delta,
            "retry_after": retry_after,
            "per_worker": per_worker,
        }
        self._worker_aggregate = aggregate
        return aggregate

    def _spawn_extra(self) -> None:
        """Scale up: add one autoscaled worker (joins the ring when
        its first health probe answers)."""
        with self._workers_lock:
            for state in self._workers.values():
                if state.status == "starting":
                    return  # one boot in flight at a time
            name = f"w{self._next_worker_index}"
            self._next_worker_index += 1
            state = self._new_worker(name, autoscaled=True)
            state.down_since = time.monotonic()
            self._workers[name] = state
        try:
            state.proc.start(wait=False)
        except OSError:  # pragma: no cover — spawn failed
            with self._workers_lock:
                self._workers.pop(name, None)
            return
        self._bump("autoscale_up")

    def _reap_extra(self) -> None:
        """Scale down: retire the newest autoscaled worker."""
        with self._workers_lock:
            candidates = [
                name
                for name, state in self._workers.items()
                if state.autoscaled and state.status == "up"
            ]
            if not candidates:
                return
            name = max(
                candidates, key=lambda n: int(n[1:]) if n[1:].isdigit() else 0
            )
            state = self._workers.pop(name)
        self.ring.remove(name)
        self._pool_drop(name)
        self._shed_seen.pop(name, None)
        self._bump("autoscale_down")
        # Drain off-thread: the health loop must not block on the grace
        # period of a worker that is merely surplus.
        threading.Thread(
            target=state.proc.stop,
            kwargs={"grace": self.config.drain_grace},
            name=f"repro-cluster-reap-{name}",
            daemon=True,
        ).start()

    # -- introspection -------------------------------------------------

    @property
    def ready(self) -> bool:
        return len(self.ring) > 0 and not self._draining

    def _bump(self, key: str, by: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += by

    def stats(self) -> dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        workers = {}
        with self._workers_lock:
            items = list(self._workers.items())
        for name, state in items:
            workers[name] = {
                "port": state.proc.port,
                "pid": state.proc.pid,
                "alive": state.proc.alive,
                "status": state.status,
                "in_ring": name in self.ring,
                "restarts": state.proc.restarts,
                "requests": state.requests,
                "errors": state.errors,
                "failovers": state.failovers,
                "autoscaled": state.autoscaled,
                "retry_budget": state.retry_budget.snapshot(),
            }
        cfg = self.config
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "draining": self._draining,
            "counters": counters,
            "latency": self.latency.snapshot(),
            "ring": sorted(self.ring.nodes),
            "workers": workers,
            "hedging": {
                "enabled": cfg.hedge or cfg.hedge_after is not None,
                "static_after": cfg.hedge_after,
                "delays": {
                    name: self.hedge.delay(name) for name in sorted(workers)
                },
                "tracker": self.hedge.tracker.snapshot(),
            },
            "autoscale": {
                "enabled": self.autoscale is not None,
                "min_workers": cfg.workers,
                "max_workers": cfg.max_workers or cfg.workers,
            },
            # The aggregated per-worker admission view (queue depth,
            # shed counts, Retry-After) from the latest autoscale
            # scrape — the satellite view operators alert on.
            "workers_aggregate": dict(self._worker_aggregate),
        }

    def metrics_text(self) -> str:
        """Coordinator + per-worker counters as Prometheus text.

        Worker metrics are scraped live from each worker's ``/stats``
        (short timeout; a dead worker simply contributes nothing this
        scrape) and re-exported under a ``worker`` label.
        """
        with self._counters_lock:
            counters = dict(self._counters)
        metrics = [
            Metric(
                "repro_cluster_uptime_seconds", "Seconds since cluster start."
            ).add(time.monotonic() - self._started_at),
            Metric(
                "repro_cluster_ring_size", "Workers currently in the ring."
            ).add(len(self.ring)),
        ]
        events = Metric(
            "repro_cluster_events_total",
            "Coordinator events by kind (routing, failover, hedging).",
            "counter",
        )
        for key, value in sorted(counters.items()):
            events.add(value, kind=key)
        metrics.append(events)
        per_worker = Metric(
            "repro_cluster_worker_info",
            "Worker liveness (1 = in ring) with pid/port labels.",
        )
        proxied = Metric(
            "repro_cluster_worker_requests_total",
            "Requests proxied to each worker by the coordinator.",
            "counter",
        )
        restarts = Metric(
            "repro_cluster_worker_restarts_total",
            "Times each worker was restarted by the supervisor.",
            "counter",
        )
        hedge_delay = Metric(
            "repro_cluster_hedge_delay_seconds",
            "Adaptive hedge delay per worker (~p95 of recent latency).",
        )
        budget_tokens = Metric(
            "repro_cluster_retry_budget_tokens",
            "Retry-budget tokens currently available per worker.",
        )
        with self._workers_lock:
            items = list(self._workers.items())
        for name, state in items:
            per_worker.add(
                1 if name in self.ring else 0,
                worker=name, port=str(state.proc.port),
                pid=str(state.proc.pid or 0),
            )
            proxied.add(state.requests, worker=name)
            restarts.add(state.proc.restarts, worker=name)
            hedge_delay.add(self.hedge.delay(name), worker=name)
            budget_tokens.add(state.retry_budget.balance, worker=name)
        metrics += [per_worker, proxied, restarts, hedge_delay, budget_tokens]
        worker_requests = Metric(
            "repro_worker_requests_total",
            "Per-worker terminal request outcomes (scraped from /stats).",
            "counter",
        )
        worker_cache = Metric(
            "repro_worker_cache_events_total",
            "Per-worker result-cache events (scraped from /stats).",
            "counter",
        )
        worker_breaker = Metric(
            "repro_worker_breaker_skips_total",
            "Per-worker ladder rungs skipped by open breakers.",
            "counter",
        )
        worker_latency = Metric(
            "repro_worker_latency_seconds",
            "Per-worker latency quantiles (scraped from /stats).",
        )
        for name, state in items:
            stats = state.proc.stats(timeout=2.0) if state.status == "up" else None
            if stats is None:
                continue
            for key, value in sorted(stats.get("counters", {}).items()):
                if key != "requests":
                    worker_requests.add(value, worker=name, status=key)
            shed = stats.get("admission", {}).get("shed")
            if shed is not None:
                worker_requests.add(shed, worker=name, status="shed")
            for key, value in sorted(
                stats.get("cache", {}).get("counters", {}).items()
            ):
                worker_cache.add(value, worker=name, kind=key)
            worker_breaker.add(
                stats.get("breaker", {}).get("skips", 0), worker=name
            )
            latency = stats.get("latency", {})
            for q_key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                if latency.get(q_key) is not None:
                    worker_latency.add(latency[q_key], worker=name, quantile=q)
        metrics += [worker_requests, worker_cache, worker_breaker, worker_latency]
        metrics.append(
            Metric.from_histogram(
                "repro_cluster_request_seconds",
                "End-to-end latency through the coordinator.",
                self.latency,
            )
        )
        return render_metrics(metrics)

    # -- lifecycle -----------------------------------------------------

    def stop_workers(self, grace: float | None = None) -> None:
        grace = self.config.drain_grace if grace is None else grace
        with self._workers_lock:
            items = list(self._workers.values())
        for state in items:
            state.proc.terminate()  # signal first, so the drains overlap
        for state in items:
            state.proc.stop(grace=grace)

    def drain(self, grace: float | None = None) -> None:
        """Stop admitting, stop the health loop, drain every worker."""
        if self._draining:
            self._drained.wait()
            return
        self._draining = True
        self._stop.set()
        self._probe_now.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False)
        self.stop_workers(grace)
        for name in list(self._pool):
            self._pool_drop(name)
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → drain on a helper thread (main thread only)."""
        import signal

        def _on_signal(signum, frame):
            threading.Thread(
                target=self.drain, name="repro-cluster-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._drained.wait(timeout)


def _error_body(code: str, message: str) -> bytes:
    return json.dumps(
        {"ok": False, "error": {"code": code, "message": message}}
    ).encode("ascii")


def _make_handler(coordinator: ClusterCoordinator):
    """An ``http.server`` handler class bound to one coordinator."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-cluster"
        # See the serve handler: avoid the Nagle/delayed-ACK 40ms stall
        # on the headers-then-body response writes.
        disable_nagle_algorithm = True

        def log_message(self, format, *args):  # noqa: A002 — stdlib name
            pass

        def _send(self, status: int, data: bytes, content_type: str,
                  headers: dict[str, str] | None = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _send_json(self, status: int, body: dict,
                       headers: dict[str, str] | None = None) -> None:
            self._send(
                status, json.dumps(body).encode("ascii"),
                "application/json", headers,
            )

        def do_GET(self) -> None:  # noqa: N802 — stdlib casing
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/readyz":
                if coordinator.ready:
                    self._send_json(200, {"status": "ready"})
                else:
                    self._send_json(
                        503,
                        {"status": "draining" if coordinator._draining
                         else "no-workers"},
                        headers={"Retry-After": "1"},
                    )
            elif self.path == "/stats":
                self._send_json(200, coordinator.stats())
            elif self.path == "/metrics":
                self._send(
                    200, coordinator.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(
                    404,
                    {"ok": False, "error": {
                        "code": "not-found",
                        "message": f"no such path {self.path!r}"}},
                )

        def do_POST(self) -> None:  # noqa: N802 — stdlib casing
            if self.path != "/minimize":
                self._send_json(
                    404,
                    {"ok": False, "error": {
                        "code": "not-found",
                        "message": f"no such path {self.path!r}"}},
                )
                return
            if coordinator._draining:
                self._send(
                    429, _error_body("overloaded", "cluster is draining"),
                    "application/json", {"Retry-After": "1"},
                )
                return
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b"{}"
            deadline = parse_deadline(self.headers.get(DEADLINE_HEADER))
            status, headers, data = coordinator.handle_minimize(body, deadline)
            self._send(status, data, "application/json", headers)

    return Handler
