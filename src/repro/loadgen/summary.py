"""Cross-run statistics over repeated loadtest reports.

One loadtest is one draw from a noisy distribution — thread scheduling,
cache state and CPU contention easily move a p99 by 2x between runs —
so performance claims need *repeats*.  This module takes N
``repro-loadtest/1`` JSON documents from identical runs and reports,
per run name and stage, the **mean and 95% confidence interval** of
each headline statistic (p50/p95/p99 latency, ok throughput, shed
rate), using the Student-t interval over the run-level values (runs
are the independent unit here; per-request samples within a run are
correlated, so pooling them would fake precision).

Pure stdlib: the t critical values are a small table (two-sided 95%,
df 1..30) falling back to the normal 1.96 beyond it — loadtests with
more than 30 repeats have outgrown this tool.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["mean_ci", "summarize", "render_summary_markdown"]

# Two-sided 95% Student-t critical values, degrees of freedom 1..30.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def _t_critical(df: int) -> float:
    if df < 1:
        raise ValueError("need at least two samples for an interval")
    return _T_95[df - 1] if df <= len(_T_95) else 1.96


def mean_ci(values: list[float]) -> dict[str, float | int | None]:
    """Mean and 95% CI half-width of ``values`` (t-interval).

    With one value the CI is None — an honest "we cannot say" —
    rather than a zero-width interval.
    """
    n = len(values)
    if n == 0:
        return {"n": 0, "mean": None, "ci95": None}
    mean = sum(values) / n
    if n == 1:
        return {"n": 1, "mean": mean, "ci95": None}
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _t_critical(n - 1) * math.sqrt(variance / n)
    return {"n": n, "mean": mean, "ci95": half}


_STAGE_STATS = ("throughput_rps", "shed_rate")
_LATENCY_STATS = ("p50", "p95", "p99")


def _iter_runs(doc: dict[str, Any]):
    """Yield ``(run_name, run_dict)`` from either report shape.

    ``write_report`` wraps runs in a ``{"runs": {name: ...}}`` envelope;
    a bare ``LoadResult.as_dict()`` document is treated as one unnamed
    run, so both ``spp-minimize loadtest --json`` outputs summarize.
    """
    if "runs" in doc and isinstance(doc["runs"], dict):
        yield from doc["runs"].items()
    elif "stages" in doc:
        yield "run", doc


def summarize(docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate repeated ``repro-loadtest/1`` documents.

    Returns ``{run_name: {"stages": [{stat: mean_ci...}]}}`` keyed the
    way the source reports are; stages are matched by index, so the
    documents must come from the same loadtest configuration (the stage
    spec of the first document is carried through for labeling, and a
    mismatched stage count raises).
    """
    collected: dict[str, list[list[dict[str, Any]]]] = {}
    specs: dict[str, list[dict[str, Any]]] = {}
    for doc in docs:
        for name, run in _iter_runs(doc):
            stages = run.get("stages", [])
            if name in specs and len(stages) != len(specs[name]):
                raise ValueError(
                    f"run {name!r} has {len(stages)} stages in one document "
                    f"and {len(specs[name])} in another — not repeats of "
                    "the same loadtest"
                )
            specs.setdefault(name, [s.get("stage", {}) for s in stages])
            collected.setdefault(name, [[] for _ in stages])
            for index, stage in enumerate(stages):
                collected[name][index].append(stage)
    out: dict[str, Any] = {"schema": "repro-loadtest-summary/1", "runs": {}}
    for name, per_stage in collected.items():
        stage_rows = []
        for index, repeats in enumerate(per_stage):
            row: dict[str, Any] = {
                "stage": specs[name][index],
                "repeats": len(repeats),
            }
            for stat in _STAGE_STATS:
                values = [
                    float(r[stat]) for r in repeats
                    if isinstance(r.get(stat), (int, float))
                ]
                row[stat] = mean_ci(values)
            for stat in _LATENCY_STATS:
                values = [
                    float(r["latency"][stat]) for r in repeats
                    if isinstance(r.get("latency", {}).get(stat), (int, float))
                ]
                row[stat] = mean_ci(values)
            stage_rows.append(row)
        out["runs"][name] = {"stages": stage_rows}
    return out


def _fmt_ms(cell: dict[str, Any]) -> str:
    if cell["mean"] is None:
        return "—"
    if cell["ci95"] is None:
        return f"{cell['mean'] * 1e3:.1f}"
    return f"{cell['mean'] * 1e3:.1f} ± {cell['ci95'] * 1e3:.1f}"


def _fmt(cell: dict[str, Any], scale: float = 1.0, suffix: str = "") -> str:
    if cell["mean"] is None:
        return "—"
    if cell["ci95"] is None:
        return f"{cell['mean'] * scale:.1f}{suffix}"
    return (
        f"{cell['mean'] * scale:.1f} ± {cell['ci95'] * scale:.1f}{suffix}"
    )


def render_summary_markdown(summary: dict[str, Any]) -> str:
    """The summary as a markdown document (mirrors the report tables)."""
    lines = ["# Loadtest summary (mean ± 95% CI across repeats)", ""]
    for name, run in summary.get("runs", {}).items():
        lines += [
            f"## {name}",
            "",
            "| stage | load | repeats | ok rps | p50 ms | p95 ms "
            "| p99 ms | shed % |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for index, row in enumerate(run["stages"]):
            spec = row["stage"]
            load = (
                f"{spec['rate']:g} rps open" if spec.get("rate")
                else f"{spec.get('clients', '?')} clients closed"
            )
            lines.append(
                f"| {index + 1} | {load} × {spec.get('duration', 0):g}s "
                f"| {row['repeats']} "
                f"| {_fmt(row['throughput_rps'])} "
                f"| {_fmt_ms(row['p50'])} | {_fmt_ms(row['p95'])} "
                f"| {_fmt_ms(row['p99'])} "
                f"| {_fmt(row['shed_rate'], scale=100.0)} |"
            )
        lines.append("")
    return "\n".join(lines)
