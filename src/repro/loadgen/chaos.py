"""Scheduled chaos during a load run: timed process-level faults.

The network faults (:mod:`repro.faults` sites ``cluster.proxy.*``) are
probabilistic — *this* module is the timeline: "SIGSTOP worker w0 two
seconds into the stage, for 2.5 seconds" — so a chaos loadtest can
pin exactly when the cluster is degraded and compare the latency
distribution inside and outside that window.

:class:`ChaosScenario` runs a list of :class:`ChaosAction`\\ s on a
background thread against any objects exposing the
:class:`~repro.cluster.worker.WorkerProcess` ``suspend``/``resume``/
``kill`` surface (duck-typed: the loadgen package keeps its
stdlib-only promise and never imports the cluster).  ``sigstop``
actions always SIGCONT their worker on scenario stop, so an aborted
run cannot leak a stopped process.

:func:`proxy_stall_plan` builds the matching seeded network-fault
plan for the coordinator's proxy path, for chaos runs that want both
timed process faults and probabilistic wire faults.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

__all__ = ["ChaosAction", "ChaosScenario", "proxy_stall_plan"]

_KINDS = ("sigstop", "kill")


@dataclass(frozen=True)
class ChaosAction:
    """One timed fault: ``kind`` against ``worker`` at ``at`` seconds.

    ``duration`` only applies to ``sigstop`` (seconds until SIGCONT);
    a ``kill`` is instantaneous and the cluster's supervisor owns the
    recovery.
    """

    at: float
    kind: str
    worker: str
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if self.at < 0 or self.duration < 0:
            raise ValueError("chaos times must be non-negative")

    @classmethod
    def parse(cls, spec: str, kind: str = "sigstop") -> "ChaosAction":
        """Parse the CLI shape ``WORKER@AT[:DURATION]``, e.g. ``w0@2:2.5``."""
        try:
            worker, _, when = spec.partition("@")
            if not worker or not when:
                raise ValueError
            at_text, _, dur_text = when.partition(":")
            at = float(at_text)
            duration = float(dur_text) if dur_text else 0.0
        except ValueError:
            raise ValueError(
                f"chaos spec {spec!r} is not WORKER@AT[:DURATION]"
            ) from None
        return cls(at=at, kind=kind, worker=worker, duration=duration)


class ChaosScenario:
    """Run actions against named workers on a background timeline."""

    def __init__(
        self, workers: dict[str, Any], actions: list[ChaosAction]
    ) -> None:
        for action in actions:
            if action.worker not in workers:
                raise ValueError(f"chaos targets unknown worker {action.worker!r}")
        self.workers = workers
        self.actions = sorted(actions, key=lambda a: a.at)
        self.fired: list[ChaosAction] = []
        self._stop = threading.Event()
        self._suspended: set[str] = set()
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-chaos", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        origin = time.monotonic()
        for action in self.actions:
            delay = action.at - (time.monotonic() - origin)
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            self._fire(action)

    def _fire(self, action: ChaosAction) -> None:
        proc = self.workers[action.worker]
        if action.kind == "sigstop":
            if not proc.suspend():
                return
            with self._lock:
                self._suspended.add(action.worker)

            def _resume() -> None:
                with self._lock:
                    self._suspended.discard(action.worker)
                proc.resume()

            timer = threading.Timer(action.duration, _resume)
            timer.daemon = True
            timer.start()
        else:  # kill
            proc.kill()
        self.fired.append(action)

    def stop(self) -> None:
        """End the timeline and SIGCONT anything still suspended."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            suspended = list(self._suspended)
            self._suspended.clear()
        for name in suspended:
            self.workers[name].resume()

    def __enter__(self) -> "ChaosScenario":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def proxy_stall_plan(p: float, seconds: float, seed: int = 0):
    """A seeded fault plan stalling ``p`` of proxy exchanges ``seconds``.

    Installed into the *coordinator* process (the ``cluster.proxy.stall``
    site lives on its proxy path); returns the plan for
    ``repro.faults.install``.
    """
    from repro.faults import FaultPlan, FaultRule

    return FaultPlan(
        rules=[
            FaultRule(
                site="cluster.proxy.stall", kind="slow",
                p=p, times=None, arg=seconds,
            )
        ],
        seed=seed,
    )
