"""Experiment reports for loadtest runs: JSON + rendered markdown.

Follows the repo's ``BENCH_*.json`` precedent: the JSON document
(schema ``repro-loadtest/1``) is the machine-readable record a later
PR can diff against, the markdown is the human summary committed under
``results/`` so the perf story is reviewable in the diff.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any

from repro.loadgen.driver import LoadResult

__all__ = ["environment_fingerprint", "write_report", "render_markdown"]


def environment_fingerprint() -> dict[str, Any]:
    import os

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def _ms(seconds: float | None) -> str:
    return "—" if seconds is None else f"{seconds * 1e3:.1f}"


def render_markdown(
    title: str,
    results: dict[str, LoadResult],
    notes: list[str] | None = None,
) -> str:
    """One markdown document over named runs (e.g. single vs cluster)."""
    env = environment_fingerprint()
    lines = [
        f"# {title}",
        "",
        f"Environment: Python {env['python']} ({env['implementation']}) on "
        f"{env['platform']}, {env['cpus']} CPU(s).",
        "",
    ]
    for name, result in results.items():
        lines += [
            f"## {name}",
            "",
            f"Target `{result.target}` — {result.mode}-loop workload "
            f"(pool: {result.workload['small_pool']} small + "
            f"{result.workload['large_pool']} large, "
            f"{result.workload['large_fraction']:.0%} large draws, "
            f"seed {result.workload['seed']}); "
            f"{result.warmup_requests} warm-up requests primed the caches "
            f"before measurement.",
            "",
            "| stage | load | ok rps | p50 ms | p95 ms | p99 ms "
            "| shed | rejected | failed | transport |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for index, stage in enumerate(result.stages):
            spec = stage.stage
            load = (
                f"{spec['rate']:g} rps open" if spec["rate"]
                else f"{spec['clients']} clients closed"
            )
            lines.append(
                f"| {index + 1} | {load} × {spec['duration']:g}s "
                f"| {stage.throughput_rps:.1f} "
                f"| {_ms(stage.p50)} | {_ms(stage.p95)} | {_ms(stage.p99)} "
                f"| {stage.shed_rate:.1%} | {stage.rejected} "
                f"| {stage.failed} | {stage.transport_errors} |"
            )
        lines.append("")
        cache = _cache_line(result)
        if cache:
            lines += [cache, ""]
    if notes:
        lines += ["## Notes", ""]
        lines += [f"- {note}" for note in notes]
        lines.append("")
    return "\n".join(lines)


def _cache_line(result: LoadResult) -> str:
    """Summarize server-side cache movement across the whole run."""
    before = result.server_stats_before
    after = result.server_stats_after
    paths = (
        ("cache", "counters", "hits"),
        ("cache", "counters", "disk_hits"),
        ("cache", "counters", "misses"),
    )

    def leaf(doc: dict, path: tuple) -> float | None:
        node: Any = doc
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return node if isinstance(node, (int, float)) else None

    parts = []
    for path in paths:
        b, a = leaf(before, path), leaf(after, path)
        if b is not None and a is not None:
            parts.append(f"{path[-1]} +{a - b:g}")
    if not parts:
        return ""
    return f"Server cache movement during the run: {', '.join(parts)}."


def write_report(
    out_dir: str | Path,
    name: str,
    title: str,
    results: dict[str, LoadResult],
    notes: list[str] | None = None,
) -> tuple[Path, Path]:
    """Write ``<name>.json`` + ``<name>.md`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": "repro-loadtest/1",
        "title": title,
        "environment": environment_fingerprint(),
        "runs": {key: value.as_dict() for key, value in results.items()},
        "notes": list(notes or []),
    }
    json_path = out / f"{name}.json"
    json_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    md_path = out / f"{name}.md"
    md_path.write_text(render_markdown(title, results, notes))
    return json_path, md_path
