"""repro.loadgen — a closed/open-loop load harness for the service.

Proves the serving stack under traffic, muBench/Locust-style:

* :mod:`repro.loadgen.workload` — seeded mixed small/large request
  pools whose finite size makes cache-warm measurement reproducible;
* :mod:`repro.loadgen.driver` — staged closed-loop (virtual clients)
  and open-loop (fixed arrival rate) ramps with exact p50/p95/p99,
  shed-rate and server-``/stats``-delta tracking per stage;
* :mod:`repro.loadgen.report` — ``repro-loadtest/1`` JSON + markdown
  experiment reports for ``results/``.

Run one with ``spp-minimize loadtest`` (see ``docs/SERVING.md``).
"""

from repro.loadgen.driver import LoadDriver, LoadResult, Sample, Stage, StageReport
from repro.loadgen.report import render_markdown, write_report
from repro.loadgen.workload import Workload

__all__ = [
    "LoadDriver",
    "LoadResult",
    "Sample",
    "Stage",
    "StageReport",
    "Workload",
    "render_markdown",
    "write_report",
]
