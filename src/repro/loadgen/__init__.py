"""repro.loadgen — a closed/open-loop load harness for the service.

Proves the serving stack under traffic, muBench/Locust-style:

* :mod:`repro.loadgen.workload` — seeded mixed small/large request
  pools whose finite size makes cache-warm measurement reproducible;
* :mod:`repro.loadgen.driver` — staged closed-loop (virtual clients)
  and open-loop (fixed arrival rate) ramps with exact p50/p95/p99,
  shed-rate and server-``/stats``-delta tracking per stage;
* :mod:`repro.loadgen.report` — ``repro-loadtest/1`` JSON + markdown
  experiment reports for ``results/``;
* :mod:`repro.loadgen.chaos` — timed process-level faults (SIGSTOP /
  kill on a schedule) to run *during* a staged load;
* :mod:`repro.loadgen.summary` — mean ± 95% CI over repeated runs
  (``spp-minimize loadtest --summarize``).

Run one with ``spp-minimize loadtest`` (see ``docs/SERVING.md``).
"""

from repro.loadgen.chaos import ChaosAction, ChaosScenario, proxy_stall_plan
from repro.loadgen.driver import LoadDriver, LoadResult, Sample, Stage, StageReport
from repro.loadgen.report import render_markdown, write_report
from repro.loadgen.summary import mean_ci, render_summary_markdown, summarize
from repro.loadgen.workload import Workload

__all__ = [
    "ChaosAction",
    "ChaosScenario",
    "LoadDriver",
    "LoadResult",
    "Sample",
    "Stage",
    "StageReport",
    "Workload",
    "mean_ci",
    "proxy_stall_plan",
    "render_markdown",
    "render_summary_markdown",
    "summarize",
    "write_report",
]
