"""Workload synthesis for the load generator.

A deployment of the minimization service sees *mixed, near-duplicate*
traffic: many small ad-hoc functions plus a heavier tail of benchmark
-sized ones, with the same function resubmitted over and over (CAD
loops, retries, shared subcircuits).  :class:`Workload` reproduces that
shape deterministically:

* a finite **pool** of distinct request payloads — ``small_pool``
  random PLA instances over few variables and ``large_pool`` named
  benchmark requests (capped rungs so one request never dominates a
  load stage);
* draws from the pool with a seeded RNG, large requests appearing with
  probability ``large_fraction``;
* because the pool is finite, a warm-up pass over ``distinct()``
  makes every subsequent draw a **cache-warm** request — which is the
  regime the cluster's shard-per-worker LRU is designed for.

Everything derives from one integer seed, so a loadtest re-run is the
same byte-for-byte request sequence.
"""

from __future__ import annotations

import json
import random
from typing import Any

from repro.bench.suite import BENCHMARKS
from repro.boolfunc.pla import parse_pla

__all__ = ["Workload", "DEFAULT_LARGE_BENCHMARKS"]

# Benchmark-sized requests for the "large" side of the mix.  Chosen to
# be real paper functions that still minimize in well under a second at
# the heuristic rung (the loadtest caps the ladder with ``max_rung`` so
# a stage is never dominated by one exact solve).
DEFAULT_LARGE_BENCHMARKS = ("adr2", "life", "csa2", "adr3")


def _random_pla(rng: random.Random, n: int) -> str:
    """A random n-input single-output PLA with a non-empty on-set."""
    points = rng.sample(range(1 << n), rng.randint(2, max(3, (1 << n) // 3)))
    lines = [f".i {n}", ".o 1"]
    for p in points:
        bits = format(p, f"0{n}b")
        # Sprinkle don't-care positions for cube-shaped (realistic) rows.
        row = "".join(
            "-" if rng.random() < 0.15 else bit for bit in bits
        )
        lines.append(f"{row} 1")
    lines.append(".e")
    return "\n".join(lines) + "\n"


class Workload:
    """A seeded, finite-pool generator of ``/minimize`` request bodies."""

    def __init__(
        self,
        *,
        seed: int = 0,
        small_pool: int = 24,
        large_pool: int = 4,
        large_fraction: float = 0.25,
        small_inputs: tuple[int, int] = (3, 5),
        large_benchmarks: tuple[str, ...] = DEFAULT_LARGE_BENCHMARKS,
        max_rung: str | None = "heuristic",
        timeout: float = 5.0,
        budget_seconds: float = 20.0,
        dup_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= large_fraction <= 1.0:
            raise ValueError("large_fraction must be within [0, 1]")
        if not 0.0 <= dup_rate <= 1.0:
            raise ValueError("dup_rate must be within [0, 1]")
        self.seed = seed
        self.large_fraction = large_fraction
        self.dup_rate = dup_rate
        rng = random.Random(seed)
        common: dict[str, Any] = {
            "timeout": timeout,
            "budget_seconds": budget_seconds,
        }
        if max_rung is not None:
            common["max_rung"] = max_rung
        self._small: list[bytes] = []
        lo, hi = small_inputs
        for i in range(small_pool):
            payload = dict(common)
            payload["pla"] = _random_pla(rng, rng.randint(lo, hi))
            payload["label"] = f"small-{i}"
            self._small.append(json.dumps(payload, sort_keys=True).encode())
        self._large: list[bytes] = []
        for i in range(large_pool):
            payload = dict(common)
            bench = large_benchmarks[i % len(large_benchmarks)]
            payload["benchmark"] = bench
            # One output per request keeps large requests bounded; cycle
            # through each benchmark's real outputs so the pool spans
            # distinct jobs.
            payload["output"] = (
                i // len(large_benchmarks)
            ) % BENCHMARKS[bench].n_outputs
            self._large.append(json.dumps(payload, sort_keys=True).encode())
        # Near-duplicate traffic: delta-form bodies editing small-pool
        # functions.  Each base gets a few toggle variants, so variants
        # of the same base are near-duplicates of *each other* and the
        # service's DeltaIndex can serve later ones warm.  No max_rung
        # cap — the warm path lives on the exact rung, and these
        # functions are small enough that exact is cheap.
        self._dups: list[bytes] = []
        if dup_rate > 0:
            drng = random.Random(seed + 2)
            for body in self._small:
                payload = json.loads(body)
                on = sorted(parse_pla(payload["pla"], name="w")[0].on_set)
                if len(on) < 3:
                    continue
                for _ in range(3):
                    dup = {
                        "timeout": timeout,
                        "budget_seconds": budget_seconds,
                        "base": {"pla": payload["pla"], "label": payload["label"]},
                        "delta": {"toggles": drng.sample(on, drng.randint(1, 2))},
                    }
                    self._dups.append(json.dumps(dup, sort_keys=True).encode())
        self._rng = random.Random(seed + 1)

    # ------------------------------------------------------------------

    def distinct(self) -> list[bytes]:
        """Every distinct request body once (the cache warm-up set)."""
        return list(self._small) + list(self._large)

    def next_body(self, rng: random.Random | None = None) -> bytes:
        """Draw one request body from the mix."""
        rng = rng or self._rng
        if self._dups and rng.random() < self.dup_rate:
            return rng.choice(self._dups)
        if self._large and rng.random() < self.large_fraction:
            return rng.choice(self._large)
        return rng.choice(self._small)

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "small_pool": len(self._small),
            "large_pool": len(self._large),
            "large_fraction": self.large_fraction,
            "dup_rate": self.dup_rate,
            "dup_pool": len(self._dups),
        }
