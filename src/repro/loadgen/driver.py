"""Closed/open-loop load driver for ``serve`` and ``cluster`` targets.

The muBench/Locust-style methodology the ROADMAP calls for:

* **closed loop** — N virtual clients, each issuing the next request
  the moment the previous answer lands; offered load adapts to the
  service (the classic saturation probe);
* **open loop** — a fixed arrival rate with requests fired on
  schedule regardless of completions; the honest way to measure
  latency under a *given* load, since closed loops hide queueing by
  slowing the clients down (coordinated omission).

A run is a list of :class:`Stage` ramps (e.g. 4 → 8 → 16 clients,
fixed duration each).  Every request is recorded as a :class:`Sample`
(wall time, latency, HTTP status, outcome code) and the stage summary
reports throughput, p50/p95/p99 exact percentiles over the samples,
shed rate (429s), failure and transport-error counts, plus the
server-side ``/stats`` delta (breaker trips, cache counters) captured
around the stage.  Nothing here imports outside the stdlib.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.loadgen.workload import Workload
from repro.serve.deadline import DEADLINE_HEADER

__all__ = ["Stage", "Sample", "StageReport", "LoadResult", "LoadDriver"]


@dataclass(frozen=True)
class Stage:
    """One ramp step: ``clients`` virtual users (closed loop) or
    ``rate`` requests/second (open loop) held for ``duration``s."""

    duration: float
    clients: int = 1
    rate: float | None = None  # set → open loop at this arrival rate

    @property
    def mode(self) -> str:
        return "open" if self.rate is not None else "closed"


@dataclass
class Sample:
    """One request's outcome."""

    at: float          # seconds since stage start
    latency: float     # seconds, request → full response
    status: int        # HTTP status; 0 = transport error
    code: str = ""     # structured error code when not 200


def _percentile(sorted_values: list[float], q: float) -> float | None:
    """Exact (nearest-rank, interpolated) percentile of sorted data."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


@dataclass
class StageReport:
    """Aggregates of one stage's samples."""

    stage: dict[str, Any]
    seconds: float
    requests: int
    ok: int
    shed: int
    rejected: int      # 503s: deadline-exceeded / no reachable worker
    failed: int
    transport_errors: int
    throughput_rps: float
    p50: float | None
    p95: float | None
    p99: float | None
    mean: float | None
    max_latency: float | None
    server_delta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_samples(
        cls,
        stage: Stage,
        samples: list[Sample],
        seconds: float,
        server_delta: dict[str, Any] | None = None,
    ) -> "StageReport":
        latencies = sorted(s.latency for s in samples if s.status != 0)
        ok = sum(1 for s in samples if 200 <= s.status < 300)
        shed = sum(1 for s in samples if s.status == 429)
        rejected = sum(1 for s in samples if s.status == 503)
        transport = sum(1 for s in samples if s.status == 0)
        failed = len(samples) - ok - shed - rejected - transport
        return cls(
            stage={"mode": stage.mode, "duration": stage.duration,
                   "clients": stage.clients, "rate": stage.rate},
            seconds=seconds,
            requests=len(samples),
            ok=ok,
            shed=shed,
            rejected=rejected,
            failed=failed,
            transport_errors=transport,
            throughput_rps=(ok / seconds) if seconds > 0 else 0.0,
            p50=_percentile(latencies, 0.50),
            p95=_percentile(latencies, 0.95),
            p99=_percentile(latencies, 0.99),
            mean=(sum(latencies) / len(latencies)) if latencies else None,
            max_latency=latencies[-1] if latencies else None,
            server_delta=dict(server_delta or {}),
        )

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "rejected": self.rejected,
            "failed": self.failed,
            "transport_errors": self.transport_errors,
            "throughput_rps": self.throughput_rps,
            "latency": {
                "p50": self.p50, "p95": self.p95, "p99": self.p99,
                "mean": self.mean, "max": self.max_latency,
            },
            "server_delta": self.server_delta,
        }


@dataclass
class LoadResult:
    """Everything one driver run produced."""

    target: str
    mode: str
    workload: dict[str, Any]
    warmup_requests: int
    stages: list[StageReport]
    started_unix: float
    total_seconds: float
    server_stats_before: dict[str, Any] = field(default_factory=dict)
    server_stats_after: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-loadtest/1",
            "target": self.target,
            "mode": self.mode,
            "workload": self.workload,
            "warmup_requests": self.warmup_requests,
            "started_unix": self.started_unix,
            "total_seconds": self.total_seconds,
            "stages": [s.as_dict() for s in self.stages],
            "server_stats_before": self.server_stats_before,
            "server_stats_after": self.server_stats_after,
        }

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self.stages)

    @property
    def peak_throughput_rps(self) -> float:
        return max((s.throughput_rps for s in self.stages), default=0.0)


class LoadDriver:
    """Drive one HTTP target through staged closed/open-loop load."""

    def __init__(
        self,
        host: str,
        port: int,
        workload: Workload,
        *,
        request_timeout: float = 60.0,
        deadline: float | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.workload = workload
        self.request_timeout = request_timeout
        # End-to-end budget stamped on every request as the
        # X-Repro-Deadline header; the service decrements it per hop
        # and sheds (503) what it can no longer finish in time.
        self.deadline = deadline
        self.progress = progress or (lambda line: None)

    # -- plumbing ------------------------------------------------------

    def _one_request(
        self, conn: http.client.HTTPConnection | None, body: bytes
    ) -> tuple[Sample, http.client.HTTPConnection | None]:
        """Fire one request, reusing ``conn`` when possible."""
        started = time.monotonic()
        headers = {}
        if self.deadline is not None:
            headers[DEADLINE_HEADER] = f"{self.deadline:.6f}"
        for fresh in (False, True):
            if fresh or conn is None:
                if conn is not None:
                    conn.close()
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.request_timeout
                )
            try:
                conn.request("POST", "/minimize", body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                latency = time.monotonic() - started
                code = ""
                if response.status != 200:
                    try:
                        code = json.loads(data)["error"]["code"]
                    except (ValueError, KeyError, TypeError):
                        code = ""
                return Sample(0.0, latency, response.status, code), conn
            except (OSError, http.client.HTTPException):
                if fresh:
                    conn.close()
                    latency = time.monotonic() - started
                    return Sample(0.0, latency, 0, "transport"), None
                continue
        raise AssertionError("unreachable")  # pragma: no cover

    def fetch_stats(self) -> dict[str, Any]:
        try:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=10)
            try:
                conn.request("GET", "/stats")
                response = conn.getresponse()
                return json.loads(response.read())
            finally:
                conn.close()
        except (OSError, ValueError):
            return {}

    # -- phases --------------------------------------------------------

    def warmup(self, repeats: int = 1) -> int:
        """Prime every cache tier: each distinct request, serially.

        Returns the number of warm-up requests issued (excluded from
        all reported samples).
        """
        count = 0
        conn: http.client.HTTPConnection | None = None
        for _ in range(max(repeats, 1)):
            for body in self.workload.distinct():
                _, conn = self._one_request(conn, body)
                count += 1
        if conn is not None:
            conn.close()
        return count

    def _run_closed(self, stage: Stage) -> list[Sample]:
        """Closed loop: ``stage.clients`` threads in think-time-free loops."""
        samples: list[Sample] = []
        lock = threading.Lock()
        stop = threading.Event()
        start = time.monotonic()

        def client(index: int) -> None:
            rng = random.Random(f"{self.workload.seed}/{stage.clients}/{index}")
            conn: http.client.HTTPConnection | None = None
            while not stop.is_set():
                body = self.workload.next_body(rng)
                sample, conn = self._one_request(conn, body)
                sample.at = time.monotonic() - start
                with lock:
                    samples.append(sample)
            if conn is not None:
                conn.close()

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(stage.clients)
        ]
        for thread in threads:
            thread.start()
        time.sleep(stage.duration)
        stop.set()
        for thread in threads:
            thread.join(timeout=self.request_timeout + 5.0)
        return samples

    def _run_open(self, stage: Stage) -> list[Sample]:
        """Open loop: Poisson-less fixed-interval arrivals at ``rate``/s.

        Arrivals stay on schedule even when responses lag (each request
        runs on its own thread), which is what exposes queueing delay
        honestly.  ``stage.clients`` caps the in-flight count as a
        safety valve; arrivals past the cap are recorded as local
        sheds (status 0, code ``"local-cap"``) rather than silently
        skipped.
        """
        samples: list[Sample] = []
        lock = threading.Lock()
        inflight = threading.Semaphore(max(stage.clients, 1) * 4)
        threads: list[threading.Thread] = []
        start = time.monotonic()
        interval = 1.0 / stage.rate
        rng = random.Random(f"{self.workload.seed}/open/{stage.rate}")

        def fire(body: bytes, at: float) -> None:
            sample, conn = self._one_request(None, body)
            if conn is not None:
                conn.close()
            sample.at = at
            with lock:
                samples.append(sample)
            inflight.release()

        next_at = 0.0
        while next_at < stage.duration:
            now = time.monotonic() - start
            if now < next_at:
                time.sleep(next_at - now)
            body = self.workload.next_body(rng)
            if inflight.acquire(blocking=False):
                thread = threading.Thread(
                    target=fire, args=(body, next_at), daemon=True
                )
                thread.start()
                threads.append(thread)
            else:
                with lock:
                    samples.append(Sample(next_at, 0.0, 0, "local-cap"))
            next_at += interval
        for thread in threads:
            thread.join(timeout=self.request_timeout + 5.0)
        return samples

    # -- entry point ---------------------------------------------------

    def run(
        self,
        stages: list[Stage],
        *,
        target: str = "",
        warmup_repeats: int = 1,
    ) -> LoadResult:
        started_unix = time.time()
        run_start = time.monotonic()
        warmed = self.warmup(warmup_repeats) if warmup_repeats else 0
        self.progress(f"warmup: {warmed} requests (cache primed)")
        stats_before = self.fetch_stats()
        reports: list[StageReport] = []
        mode = stages[0].mode if stages else "closed"
        for index, stage in enumerate(stages):
            before = self.fetch_stats()
            stage_start = time.monotonic()
            if stage.mode == "open":
                samples = self._run_open(stage)
            else:
                samples = self._run_closed(stage)
            seconds = time.monotonic() - stage_start
            after = self.fetch_stats()
            report = StageReport.from_samples(
                stage, samples, seconds,
                server_delta=_stats_delta(before, after),
            )
            reports.append(report)
            self.progress(
                f"stage {index + 1}/{len(stages)} "
                f"[{stage.mode} {stage.rate or stage.clients}"
                f"{'rps' if stage.rate else ' clients'} "
                f"x {stage.duration:.0f}s]: "
                f"{report.throughput_rps:.1f} rps ok, "
                f"p50 {_ms(report.p50)} p95 {_ms(report.p95)} "
                f"p99 {_ms(report.p99)}, shed {report.shed_rate:.1%}"
            )
        stats_after = self.fetch_stats()
        return LoadResult(
            target=target or f"http://{self.host}:{self.port}",
            mode=mode,
            workload=self.workload.describe(),
            warmup_requests=warmed,
            stages=reports,
            started_unix=started_unix,
            total_seconds=time.monotonic() - run_start,
            server_stats_before=stats_before,
            server_stats_after=stats_after,
        )


def _ms(seconds: float | None) -> str:
    return "n/a" if seconds is None else f"{seconds * 1e3:.1f}ms"


def _numeric_leaves(prefix: str, node: Any, out: dict[str, float]) -> None:
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        out[prefix] = float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            _numeric_leaves(f"{prefix}.{key}" if prefix else str(key),
                            value, out)


def _stats_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Numeric counter movement between two ``/stats`` documents.

    Flattens both documents to dotted numeric leaves and keeps the
    leaves that changed — which is how breaker trips, shed counts and
    cache-tier activity during a stage get attributed to that stage.
    """
    flat_before: dict[str, float] = {}
    flat_after: dict[str, float] = {}
    _numeric_leaves("", before, flat_before)
    _numeric_leaves("", after, flat_after)
    delta = {}
    for key, value in flat_after.items():
        moved = value - flat_before.get(key, 0.0)
        if moved and not key.startswith(("uptime", "latency")):
            delta[key] = round(moved, 6)
    return delta
