"""Boolean functions, truth tables and PLA I/O."""

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.boolfunc.pla import PlaError, parse_pla, parse_pla_file, write_pla

__all__ = [
    "BoolFunc",
    "MultiBoolFunc",
    "PlaError",
    "parse_pla",
    "parse_pla_file",
    "write_pla",
]
