"""Function-level operators and constructions.

These complement the dunder algebra on :class:`BoolFunc` with named
n-ary operations and the standard constructions used by the benchmark
generators (variables, constants, XOR chains, majority, ...).
"""

from __future__ import annotations

from functools import reduce

from repro.boolfunc.function import BoolFunc

__all__ = [
    "variable",
    "constant",
    "conjunction",
    "disjunction",
    "exor",
    "majority",
    "restrict",
]


def variable(n: int, i: int) -> BoolFunc:
    """The projection function ``f = x_i``."""
    if not 0 <= i < n:
        raise ValueError("variable index out of range")
    bit = 1 << i
    return BoolFunc(n, frozenset(p for p in range(1 << n) if p & bit))


def constant(n: int, value: int) -> BoolFunc:
    """The constant 0 or 1 function."""
    if value:
        return BoolFunc(n, frozenset(range(1 << n)))
    return BoolFunc(n, frozenset())


def conjunction(funcs: list[BoolFunc]) -> BoolFunc:
    """AND of one or more functions."""
    return reduce(lambda a, b: a & b, funcs)


def disjunction(funcs: list[BoolFunc]) -> BoolFunc:
    """OR of one or more functions."""
    return reduce(lambda a, b: a | b, funcs)


def exor(funcs: list[BoolFunc]) -> BoolFunc:
    """EXOR of one or more functions."""
    return reduce(lambda a, b: a ^ b, funcs)


def majority(n: int, indices: list[int]) -> BoolFunc:
    """Majority of an odd number of input variables."""
    if len(indices) % 2 == 0:
        raise ValueError("majority needs an odd number of inputs")
    half = len(indices) // 2
    return BoolFunc.from_lambda(
        n, lambda p: sum((p >> i) & 1 for i in indices) > half
    )


def restrict(func: BoolFunc, assignment: dict[int, int]) -> BoolFunc:
    """Simultaneous cofactor w.r.t. a partial assignment."""
    result = func
    for variable_index, value in assignment.items():
        result = result.cofactor(variable_index, value)
    return result
