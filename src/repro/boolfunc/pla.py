"""ESPRESSO-format PLA reader/writer.

The paper's benchmarks come from the ESPRESSO suite [10], distributed as
``.pla`` files.  This module parses the subset of the format those files
use — ``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type`` (``f``,
``fd``, ``fr``), input cubes over ``{0,1,-}`` and output parts over
``{0,1,-,~,2,4}`` — and converts to :class:`MultiBoolFunc` semantics:

* type ``fd`` (the default): output ``1`` adds the minterms to the
  on-set, ``-``/``2`` to the dc-set, ``0``/``~`` says nothing;
* type ``fr``: ``1`` on-set, ``0`` off-set, everything else unspecified
  — points never mentioned are **don't care**;
* type ``f``: ``1`` on-set; everything else is off.

Malformed input raises :class:`PlaError` — a structured
:class:`repro.errors.ParseError` carrying the offending file and line,
so the CLI can print ``circuit.pla:12: …`` instead of a traceback.

The writer emits minterm-exact ``fr`` PLAs, so a round trip preserves
function semantics exactly.
"""

from __future__ import annotations

import io
from collections.abc import Iterator
from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.errors import ParseError

__all__ = ["parse_pla", "parse_pla_file", "write_pla", "PlaError"]


class PlaError(ParseError):
    """Malformed PLA input (with file/line context when known)."""


@dataclass
class _PlaBody:
    n_inputs: int
    n_outputs: int
    pla_type: str
    rows: list[tuple[int, str, str]]  # (line number, input part, output part)
    name: str
    output_names: tuple[str, ...]


def _tokenize(text: str) -> Iterator[tuple[int, list[str]]]:
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield lineno, line.split()


def _directive_int(tokens: list[str], lineno: int, file: str | None) -> int:
    if len(tokens) < 2:
        raise PlaError(
            f"directive {tokens[0]!r} needs a value", file=file, line=lineno
        )
    try:
        value = int(tokens[1])
    except ValueError:
        raise PlaError(
            f"directive {tokens[0]!r} needs an integer, got {tokens[1]!r}",
            file=file, line=lineno,
        ) from None
    if value < 0:
        raise PlaError(
            f"directive {tokens[0]!r} must be non-negative, got {value}",
            file=file, line=lineno,
        )
    return value


def _parse_header(text: str, file: str | None) -> _PlaBody:
    n_inputs = n_outputs = -1
    pla_type = "fd"
    rows: list[tuple[int, str, str]] = []
    name = ""
    output_names: tuple[str, ...] = ()
    for lineno, tokens in _tokenize(text):
        key = tokens[0]
        if key == ".i":
            n_inputs = _directive_int(tokens, lineno, file)
        elif key == ".o":
            n_outputs = _directive_int(tokens, lineno, file)
        elif key == ".type":
            if len(tokens) < 2:
                raise PlaError(".type needs a value", file=file, line=lineno)
            pla_type = tokens[1]
        elif key == ".ilb":
            pass  # input labels: accepted, not needed
        elif key == ".ob":
            output_names = tuple(tokens[1:])
        elif key in (".p", ".phase", ".pair", ".symbolic"):
            pass
        elif key == ".e" or key == ".end":
            break
        elif key.startswith("."):
            raise PlaError(
                f"unsupported PLA directive {key!r}", file=file, line=lineno
            )
        else:
            if n_inputs < 0 or n_outputs < 0:
                raise PlaError(
                    "cube line before .i/.o headers", file=file, line=lineno
                )
            if len(tokens) == 2:
                in_part, out_part = tokens
            elif len(tokens) == 1 and n_outputs == 0:
                in_part, out_part = tokens[0], ""
            else:
                in_part = tokens[0]
                out_part = "".join(tokens[1:])
            if len(in_part) != n_inputs:
                raise PlaError(
                    f"input part {in_part!r} has wrong width "
                    f"(expected {n_inputs})",
                    file=file, line=lineno,
                )
            if len(out_part) != n_outputs:
                raise PlaError(
                    f"output part {out_part!r} has wrong width "
                    f"(expected {n_outputs})",
                    file=file, line=lineno,
                )
            rows.append((lineno, in_part, out_part))
    if n_inputs < 0 or n_outputs < 0:
        raise PlaError("missing .i/.o headers", file=file)
    if pla_type not in ("f", "fd", "fr", "fdr"):
        raise PlaError(f"unsupported .type {pla_type!r}", file=file)
    return _PlaBody(n_inputs, n_outputs, pla_type, rows, name, output_names)


def _expand_cube(in_part: str, lineno: int, file: str | None) -> Iterator[int]:
    """All minterms matched by an input cube over {0,1,-}."""
    fixed = 0
    free_positions = []
    for i, ch in enumerate(in_part):
        if ch == "1":
            fixed |= 1 << i
        elif ch == "-":
            free_positions.append(i)
        elif ch != "0":
            raise PlaError(
                f"invalid input character {ch!r}", file=file, line=lineno
            )
    for combo in range(1 << len(free_positions)):
        point = fixed
        for j, pos in enumerate(free_positions):
            if (combo >> j) & 1:
                point |= 1 << pos
        yield point


def parse_pla(text: str, name: str = "", file: str | None = None) -> MultiBoolFunc:
    """Parse PLA text into a multi-output function.

    ``file`` (defaulting to ``name`` when that looks like a path) is
    attached to any :class:`PlaError` for ``file:line:`` messages.
    """
    if file is None and name:
        file = name
    body = _parse_header(text, file)
    n, m = body.n_inputs, body.n_outputs
    on: list[set[int]] = [set() for _ in range(m)]
    off: list[set[int]] = [set() for _ in range(m)]
    dc: list[set[int]] = [set() for _ in range(m)]
    for lineno, in_part, out_part in body.rows:
        points = list(_expand_cube(in_part, lineno, file))
        for o, ch in enumerate(out_part):
            if ch == "1" or ch == "4":
                on[o].update(points)
            elif ch in ("-", "2", "~") and body.pla_type in ("fd", "fdr", "f"):
                if ch != "~":
                    dc[o].update(points)
            elif ch == "0":
                if body.pla_type in ("fr", "fdr"):
                    off[o].update(points)
            elif ch in ("-", "2", "~"):
                pass  # fr: unspecified
            else:
                raise PlaError(
                    f"invalid output character {ch!r}", file=file, line=lineno
                )
    outputs = []
    for o in range(m):
        if body.pla_type in ("fr", "fdr"):
            # Points not mentioned at all are don't-care in fr PLAs.
            mentioned = on[o] | off[o]
            dc_set = frozenset(p for p in range(1 << n) if p not in mentioned)
        else:
            dc_set = frozenset(dc[o] - on[o])
        outputs.append(BoolFunc(n, frozenset(on[o]), dc_set))
    return MultiBoolFunc(
        n, tuple(outputs), name=name, output_names=body.output_names
    )


def parse_pla_file(path: str, name: str = "") -> MultiBoolFunc:
    try:
        with open(path, encoding="ascii") as handle:
            text = handle.read()
    except OSError as exc:
        raise PlaError(f"cannot read PLA file: {exc.strerror}", file=path) from exc
    except UnicodeDecodeError as exc:
        raise PlaError(f"PLA file is not ASCII text: {exc}", file=path) from exc
    return parse_pla(text, name=name or path, file=path)


def write_pla(func: MultiBoolFunc) -> str:
    """Serialize as a minterm-exact ``fr`` PLA (round-trip safe)."""
    out = io.StringIO()
    out.write(f".i {func.n}\n.o {func.num_outputs}\n.type fr\n")
    if func.output_names:
        out.write(".ob " + " ".join(func.output_names) + "\n")
    for point in range(1 << func.n):
        chars = []
        interesting = False
        for f in func.outputs:
            value = f.evaluate(point)
            if value == 1:
                chars.append("1")
                interesting = True
            elif value == 0:
                chars.append("0")
                interesting = True
            else:
                chars.append("-")
        if interesting:
            bits = "".join(str((point >> i) & 1) for i in range(func.n))
            out.write(f"{bits} {''.join(chars)}\n")
    out.write(".e\n")
    return out.getvalue()
