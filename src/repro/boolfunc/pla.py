"""ESPRESSO-format PLA reader/writer.

The paper's benchmarks come from the ESPRESSO suite [10], distributed as
``.pla`` files.  This module parses the subset of the format those files
use — ``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type`` (``f``,
``fd``, ``fr``), input cubes over ``{0,1,-}`` and output parts over
``{0,1,-,~,2,4}`` — and converts to :class:`MultiBoolFunc` semantics:

* type ``fd`` (the default): output ``1`` adds the minterms to the
  on-set, ``-``/``2`` to the dc-set, ``0``/``~`` says nothing;
* type ``fr``: ``1`` on-set, ``0`` off-set, everything else unspecified
  — points never mentioned are **don't care**;
* type ``f``: ``1`` on-set; everything else is off.

The writer emits minterm-exact ``fr`` PLAs, so a round trip preserves
function semantics exactly.
"""

from __future__ import annotations

import io
from collections.abc import Iterator
from dataclasses import dataclass

from repro.boolfunc.function import BoolFunc, MultiBoolFunc

__all__ = ["parse_pla", "parse_pla_file", "write_pla", "PlaError"]


class PlaError(ValueError):
    """Malformed PLA input."""


@dataclass
class _PlaBody:
    n_inputs: int
    n_outputs: int
    pla_type: str
    rows: list[tuple[str, str]]
    name: str
    output_names: tuple[str, ...]


def _tokenize(text: str) -> Iterator[list[str]]:
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            yield line.split()


def _parse_header(text: str) -> _PlaBody:
    n_inputs = n_outputs = -1
    pla_type = "fd"
    rows: list[tuple[str, str]] = []
    name = ""
    output_names: tuple[str, ...] = ()
    for tokens in _tokenize(text):
        key = tokens[0]
        if key == ".i":
            n_inputs = int(tokens[1])
        elif key == ".o":
            n_outputs = int(tokens[1])
        elif key == ".type":
            pla_type = tokens[1]
        elif key == ".ilb":
            pass  # input labels: accepted, not needed
        elif key == ".ob":
            output_names = tuple(tokens[1:])
        elif key in (".p", ".phase", ".pair", ".symbolic"):
            pass
        elif key == ".e" or key == ".end":
            break
        elif key.startswith("."):
            raise PlaError(f"unsupported PLA directive {key!r}")
        else:
            if n_inputs < 0 or n_outputs < 0:
                raise PlaError("cube line before .i/.o headers")
            if len(tokens) == 2:
                in_part, out_part = tokens
            elif len(tokens) == 1 and n_outputs == 0:
                in_part, out_part = tokens[0], ""
            else:
                in_part = tokens[0]
                out_part = "".join(tokens[1:])
            if len(in_part) != n_inputs:
                raise PlaError(f"input part {in_part!r} has wrong width")
            if len(out_part) != n_outputs:
                raise PlaError(f"output part {out_part!r} has wrong width")
            rows.append((in_part, out_part))
    if n_inputs < 0 or n_outputs < 0:
        raise PlaError("missing .i/.o headers")
    if pla_type not in ("f", "fd", "fr", "fdr"):
        raise PlaError(f"unsupported .type {pla_type!r}")
    return _PlaBody(n_inputs, n_outputs, pla_type, rows, name, output_names)


def _expand_cube(in_part: str) -> Iterator[int]:
    """All minterms matched by an input cube over {0,1,-}."""
    fixed = 0
    free_positions = []
    for i, ch in enumerate(in_part):
        if ch == "1":
            fixed |= 1 << i
        elif ch == "-":
            free_positions.append(i)
        elif ch != "0":
            raise PlaError(f"invalid input character {ch!r}")
    for combo in range(1 << len(free_positions)):
        point = fixed
        for j, pos in enumerate(free_positions):
            if (combo >> j) & 1:
                point |= 1 << pos
        yield point


def parse_pla(text: str, name: str = "") -> MultiBoolFunc:
    """Parse PLA text into a multi-output function."""
    body = _parse_header(text)
    n, m = body.n_inputs, body.n_outputs
    on: list[set[int]] = [set() for _ in range(m)]
    off: list[set[int]] = [set() for _ in range(m)]
    dc: list[set[int]] = [set() for _ in range(m)]
    for in_part, out_part in body.rows:
        points = list(_expand_cube(in_part))
        for o, ch in enumerate(out_part):
            if ch == "1" or ch == "4":
                on[o].update(points)
            elif ch in ("-", "2", "~") and body.pla_type in ("fd", "fdr", "f"):
                if ch != "~":
                    dc[o].update(points)
            elif ch == "0":
                if body.pla_type in ("fr", "fdr"):
                    off[o].update(points)
            elif ch in ("-", "2", "~"):
                pass  # fr: unspecified
            else:
                raise PlaError(f"invalid output character {ch!r}")
    outputs = []
    for o in range(m):
        if body.pla_type in ("fr", "fdr"):
            # Points not mentioned at all are don't-care in fr PLAs.
            mentioned = on[o] | off[o]
            dc_set = frozenset(p for p in range(1 << n) if p not in mentioned)
        else:
            dc_set = frozenset(dc[o] - on[o])
        outputs.append(BoolFunc(n, frozenset(on[o]), dc_set))
    return MultiBoolFunc(
        n, tuple(outputs), name=name, output_names=body.output_names
    )


def parse_pla_file(path: str, name: str = "") -> MultiBoolFunc:
    with open(path, encoding="ascii") as handle:
        return parse_pla(handle.read(), name=name or path)


def write_pla(func: MultiBoolFunc) -> str:
    """Serialize as a minterm-exact ``fr`` PLA (round-trip safe)."""
    out = io.StringIO()
    out.write(f".i {func.n}\n.o {func.num_outputs}\n.type fr\n")
    if func.output_names:
        out.write(".ob " + " ".join(func.output_names) + "\n")
    for point in range(1 << func.n):
        chars = []
        interesting = False
        for f in func.outputs:
            value = f.evaluate(point)
            if value == 1:
                chars.append("1")
                interesting = True
            elif value == 0:
                chars.append("0")
                interesting = True
            else:
                chars.append("-")
        if interesting:
            bits = "".join(str((point >> i) & 1) for i in range(func.n))
            out.write(f"{bits} {''.join(chars)}\n")
    out.write(".e\n")
    return out.getvalue()
