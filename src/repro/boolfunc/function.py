"""Boolean functions as point sets of ``B^n``.

The paper treats Boolean functions as sets of points; a
:class:`BoolFunc` is an (on-set, dc-set) pair over ``B^n`` —
*incompletely specified* functions are first-class because the ESPRESSO
benchmark PLAs carry don't-care information, and the minimizers can
exploit it (a pseudoproduct may cover dc-points; only on-points must be
covered).

:class:`MultiBoolFunc` bundles the outputs of a multi-output benchmark;
following the paper, "the different outputs of each function have been
minimized separately" — the minimizers take a single :class:`BoolFunc`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from functools import cached_property

__all__ = ["BoolFunc", "MultiBoolFunc"]


@dataclass(frozen=True)
class BoolFunc:
    """A single-output, possibly incompletely specified Boolean function."""

    n: int
    on_set: frozenset[int]
    dc_set: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        space = 1 << self.n
        if any(not 0 <= p < space for p in self.on_set):
            raise ValueError("on-set point outside B^n")
        if any(not 0 <= p < space for p in self.dc_set):
            raise ValueError("dc-set point outside B^n")
        if self.on_set & self.dc_set:
            raise ValueError("on-set and dc-set overlap")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_on_set(cls, n: int, on: Iterable[int], dc: Iterable[int] = ()) -> "BoolFunc":
        return cls(n, frozenset(on), frozenset(dc))

    @classmethod
    def from_lambda(cls, n: int, fn: Callable[[int], object]) -> "BoolFunc":
        """Build a completely specified function by evaluating ``fn`` on
        every point (``fn`` returns a truthy value for on-points)."""
        return cls(n, frozenset(p for p in range(1 << n) if fn(p)))

    @classmethod
    def from_truth_table(cls, bits: str) -> "BoolFunc":
        """Truth table as a string of ``0``/``1``/``-`` with the point
        ``p`` at position ``p`` (so ``bits[0]`` is ``f(0…0)``)."""
        size = len(bits)
        n = size.bit_length() - 1
        if size == 0 or (1 << n) != size:
            raise ValueError("truth table length must be a power of two")
        on = frozenset(i for i, b in enumerate(bits) if b == "1")
        dc = frozenset(i for i, b in enumerate(bits) if b == "-")
        if len(on) + len(dc) + bits.count("0") != size:
            raise ValueError("truth table may only contain 0, 1, -")
        return cls(n, on, dc)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @cached_property
    def off_set(self) -> frozenset[int]:
        size = 1 << self.n
        return frozenset(
            p for p in range(size) if p not in self.on_set and p not in self.dc_set
        )

    @property
    def care_set(self) -> frozenset[int]:
        """Points where a cover is *allowed*: on-set ∪ dc-set."""
        return self.on_set | self.dc_set

    def evaluate(self, point: int) -> int | None:
        """1 / 0 / None (don't care)."""
        if point in self.on_set:
            return 1
        if point in self.dc_set:
            return None
        return 0

    def __call__(self, point: int) -> int | None:
        return self.evaluate(point)

    @property
    def is_completely_specified(self) -> bool:
        return not self.dc_set

    @property
    def is_constant_zero(self) -> bool:
        return not self.on_set

    def __len__(self) -> int:
        return len(self.on_set)

    # ------------------------------------------------------------------
    # Algebra (pointwise; don't-cares propagate pessimistically)
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "BoolFunc") -> None:
        if self.n != other.n:
            raise ValueError("functions over different spaces")

    def __invert__(self) -> "BoolFunc":
        return BoolFunc(self.n, self.off_set, self.dc_set)

    def __and__(self, other: "BoolFunc") -> "BoolFunc":
        self._check_compatible(other)
        on = self.on_set & other.on_set
        dc = (self.care_set & other.care_set) - on - (self.off_set | other.off_set)
        return BoolFunc(self.n, on, dc)

    def __or__(self, other: "BoolFunc") -> "BoolFunc":
        self._check_compatible(other)
        on = self.on_set | other.on_set
        dc = (self.dc_set | other.dc_set) - on
        return BoolFunc(self.n, on, dc)

    def __xor__(self, other: "BoolFunc") -> "BoolFunc":
        self._check_compatible(other)
        if self.dc_set or other.dc_set:
            dc = self.dc_set | other.dc_set
            on = frozenset(
                p
                for p in (self.care_set | other.care_set) - dc
                if (p in self.on_set) != (p in other.on_set)
            )
            return BoolFunc(self.n, on, dc)
        on = self.on_set ^ other.on_set
        return BoolFunc(self.n, on)

    def cofactor(self, variable: int, value: int) -> "BoolFunc":
        """Shannon cofactor: restrict ``x_variable`` to ``value``; the
        result still ranges over ``B^n`` (the variable becomes
        redundant), keeping point encodings stable."""
        if not 0 <= variable < self.n:
            raise ValueError("variable index out of range")
        bit = 1 << variable
        want = bit if value else 0

        def restrict(points: frozenset[int]) -> frozenset[int]:
            kept = {p for p in points if (p & bit) == want}
            return frozenset(q for p in kept for q in (p, p ^ bit))

        return BoolFunc(self.n, restrict(self.on_set), restrict(self.dc_set) - restrict(self.on_set))


@dataclass(frozen=True)
class MultiBoolFunc:
    """A multi-output function: shared inputs, one BoolFunc per output."""

    n: int
    outputs: tuple[BoolFunc, ...]
    name: str = ""
    output_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if any(f.n != self.n for f in self.outputs):
            raise ValueError("output over wrong input space")
        if self.output_names and len(self.output_names) != len(self.outputs):
            raise ValueError("output_names length mismatch")

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def __getitem__(self, i: int) -> BoolFunc:
        return self.outputs[i]

    def __iter__(self):
        return iter(self.outputs)

    @classmethod
    def from_lambda(
        cls, n: int, num_outputs: int, fn: Callable[[int], int], name: str = ""
    ) -> "MultiBoolFunc":
        """Build from ``fn: point -> output word`` (bit ``o`` of the word
        is output ``o``)."""
        on_sets: list[set[int]] = [set() for _ in range(num_outputs)]
        for p in range(1 << n):
            word = fn(p)
            for o in range(num_outputs):
                if (word >> o) & 1:
                    on_sets[o].add(p)
        outputs = tuple(BoolFunc(n, frozenset(s)) for s in on_sets)
        return cls(n, outputs, name=name)
