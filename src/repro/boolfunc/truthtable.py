"""Truth-table views of Boolean functions."""

from __future__ import annotations

from repro.boolfunc.function import BoolFunc

__all__ = ["truth_table", "minterms", "maxterms", "density"]


def truth_table(func: BoolFunc) -> str:
    """The function as a ``0``/``1``/``-`` string, point ``p`` at index
    ``p`` (inverse of :meth:`BoolFunc.from_truth_table`)."""
    chars = []
    for p in range(1 << func.n):
        value = func.evaluate(p)
        chars.append("-" if value is None else str(value))
    return "".join(chars)


def minterms(func: BoolFunc) -> list[int]:
    """The on-set as a sorted list."""
    return sorted(func.on_set)


def maxterms(func: BoolFunc) -> list[int]:
    """The off-set as a sorted list."""
    return sorted(func.off_set)


def density(func: BoolFunc) -> float:
    """Fraction of the space in the on-set."""
    return len(func.on_set) / (1 << func.n)
