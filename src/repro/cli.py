"""Command-line interface.

::

    spp-minimize minimize circuit.pla --method exact
    spp-minimize minimize circuit.pla --method heuristic -k 2 --output 3
    spp-minimize benchmarks --list
    spp-minimize benchmarks --dump adr4 > adr4.pla
    spp-minimize tables table1 --quick

(`python -m repro ...` is equivalent.)
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import harness
from repro.bench.paper_data import TABLE1
from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.boolfunc.function import BoolFunc, MultiBoolFunc
from repro.boolfunc.pla import parse_pla_file, write_pla
from repro.core.cex import cex_of
from repro.minimize.bounded import minimize_spp_bounded
from repro.minimize.exact import SppResult, minimize_spp
from repro.minimize.heuristic import minimize_spp_k
from repro.minimize.sp import minimize_sp
from repro.verify import verify_form

__all__ = ["main"]


def _minimize_one(fo: BoolFunc, label: str, args: argparse.Namespace):
    if args.method == "aox":
        from repro.minimize.aox import minimize_aox

        aox = minimize_aox(fo, covering=args.covering)
        print(f"{label}: AOX {aox.num_literals} literals "
              f"({aox.tried} corrections tried, {aox.seconds:.2f}s)")
        report = verify_form(aox.form, fo)
        if not report:
            print(f"{label}: VERIFICATION FAILED", file=sys.stderr)
            raise SystemExit(2)
        if args.show:
            print("   ", aox.form)
        return None  # AOX forms are not exportable SPP forms
    if args.method == "sp":
        sp = minimize_sp(fo, covering=args.covering)
        print(f"{label}: SP  {sp.num_literals} literals, {sp.num_products} products, "
              f"{sp.num_primes} primes, {sp.seconds:.2f}s")
        form = sp.form
    else:
        if args.method == "exact":
            result: SppResult = minimize_spp(
                fo,
                backend=args.backend,
                covering=args.covering,
                max_pseudoproducts=args.max_pseudoproducts,
                on_limit="stop",
            )
        elif args.method == "heuristic":
            result = minimize_spp_k(
                fo, args.k, backend=args.backend, covering=args.covering
            )
        else:  # bounded
            result = minimize_spp_bounded(
                fo, args.bound, backend=args.backend, covering=args.covering
            )
        print(
            f"{label}: SPP {result.num_literals} literals, "
            f"{result.num_pseudoproducts} pseudoproducts, "
            f"{result.num_candidates} candidates, {result.seconds:.2f}s"
        )
        form = result.form
    report = verify_form(form, fo)
    if not report:
        print(f"{label}: VERIFICATION FAILED: {report}", file=sys.stderr)
        raise SystemExit(2)
    if args.show:
        for pc in form.pseudoproducts:
            print("   ", cex_of(pc))
    return form


def _cmd_minimize(args: argparse.Namespace) -> None:
    if args.file in BENCHMARKS:
        func: MultiBoolFunc = get_benchmark(args.file)
    else:
        func = parse_pla_file(args.file)
    if args.method == "multi":
        _minimize_multi(func, args)
        return
    forms: dict[str, object] = {}
    outputs = [args.output] if args.output is not None else range(func.num_outputs)
    for o in outputs:
        fo = func[o]
        if not fo.on_set:
            print(f"output {o}: constant 0, skipped")
            continue
        form = _minimize_one(fo, f"output {o}", args)
        if form is not None:
            forms[f"f{o}"] = form
    _export(forms, args)


def _minimize_multi(func: MultiBoolFunc, args: argparse.Namespace) -> None:
    from repro.minimize.multi import minimize_spp_multi

    result = minimize_spp_multi(
        func,
        backend=args.backend,
        covering=args.covering,
        max_pseudoproducts=args.max_pseudoproducts,
    )
    print(
        f"joint: {result.shared_literals} shared literals over "
        f"{len(result.shared_pseudoproducts)} pseudoproducts "
        f"({result.total_output_literals} if each output paid separately), "
        f"{result.seconds:.2f}s"
    )
    forms = {}
    for o, (form, fo) in enumerate(zip(result.forms, func.outputs)):
        report = verify_form(form, fo)
        if not report:
            print(f"output {o}: VERIFICATION FAILED", file=sys.stderr)
            raise SystemExit(2)
        forms[f"f{o}"] = form
        if args.show:
            print(f"output {o}:")
            for pc in form.pseudoproducts:
                print("   ", cex_of(pc))
    _export(forms, args)


def _export(forms: dict[str, object], args: argparse.Namespace) -> None:
    if not forms:
        return
    if args.verilog:
        from repro.export.verilog import spp_to_verilog

        with open(args.verilog, "w", encoding="ascii") as handle:
            handle.write(spp_to_verilog(forms, module=args.module))
        print(f"wrote Verilog to {args.verilog}")
    if args.blif:
        from repro.export.blif import spp_to_blif

        with open(args.blif, "w", encoding="ascii") as handle:
            for name, form in forms.items():
                handle.write(spp_to_blif(form, model=name, output_name=name))
        print(f"wrote BLIF to {args.blif}")


def _cmd_benchmarks(args: argparse.Namespace) -> None:
    if args.dump:
        print(write_pla(get_benchmark(args.dump)), end="")
        return
    print(f"{'name':<10} {'in':>3} {'out':>4}  surrogate  notes")
    for name in sorted(BENCHMARKS):
        spec = BENCHMARKS[name]
        flag = "yes" if spec.surrogate else "no"
        print(f"{name:<10} {spec.n_inputs:>3} {spec.n_outputs:>4}  {flag:<9}  {spec.notes}")


def _cmd_tables(args: argparse.Namespace) -> None:
    if args.table == "table1":
        if args.quick:
            names = harness.QUICK_TABLE1
        else:
            names = [row.function for row in TABLE1]
        cap = 200_000 if args.quick else None
        rows = [harness.run_table1_row(n, max_pseudoproducts=cap) for n in names]
        print(harness.render_table1(rows))
    elif args.table == "table2":
        pairs = harness.QUICK_TABLE2
        rows = [harness.run_table2_row(n, o) for n, o in pairs]
        print(harness.render_table2(rows))
    elif args.table == "table3":
        names = harness.QUICK_TABLE3
        rows3 = [harness.run_table3_row(n) for n in names]
        print(harness.render_table3(rows3))
    else:  # fig34
        points = []
        for name in harness.QUICK_FIG34:
            points.extend(harness.run_spp_k_sweep(name))
        print(harness.render_fig34(points))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spp-minimize",
        description="SPP (Sum of Pseudoproducts) logic minimization — "
        "reproduction of Ciriani, DAC 2001.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_min = sub.add_parser("minimize", help="minimize a PLA file or named benchmark")
    p_min.add_argument("file", help="PLA path or registered benchmark name")
    p_min.add_argument("--output", type=int, default=None, help="single output index")
    p_min.add_argument(
        "--method",
        choices=["exact", "heuristic", "sp", "bounded", "multi", "aox"],
        default="exact",
    )
    p_min.add_argument("-k", type=int, default=0, help="heuristic descent depth")
    p_min.add_argument("--bound", type=int, default=2, help="factor width bound")
    p_min.add_argument("--covering", choices=["greedy", "exact", "auto"], default="greedy")
    p_min.add_argument("--backend", choices=["index", "trie"], default="index")
    p_min.add_argument("--max-pseudoproducts", type=int, default=None)
    p_min.add_argument("--show", action="store_true", help="print the expressions")
    p_min.add_argument("--verilog", metavar="FILE", help="export a Verilog module")
    p_min.add_argument("--blif", metavar="FILE", help="export BLIF models")
    p_min.add_argument("--module", default="spp", help="Verilog module name")
    p_min.set_defaults(handler=_cmd_minimize)

    p_bench = sub.add_parser("benchmarks", help="list or dump benchmark functions")
    p_bench.add_argument("--dump", metavar="NAME", help="write a benchmark as PLA")
    p_bench.set_defaults(handler=_cmd_benchmarks)

    p_tab = sub.add_parser("tables", help="regenerate a paper table/figure")
    p_tab.add_argument("table", choices=["table1", "table2", "table3", "fig34"])
    p_tab.add_argument("--quick", action="store_true", default=True)
    p_tab.set_defaults(handler=_cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.handler(args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
